/**
 * @file
 * Parallel multi-QPU reconstruction with noise compensation, pipeline
 * overlap, and eager timeout (paper Section 5).
 *
 * Scenario: a user wants the landscape *as QPU-1 sees it* (to study
 * QPU-1's noise), but QPU-1 alone would take too long, so half the
 * samples run on the noisier QPU-2. Without compensation the blended
 * reconstruction is an artificial mixture of the two devices'
 * landscapes; the NCM (trained on 1% of the grid executed on both
 * devices) maps QPU-2 values onto QPU-1's noise profile. An eager
 * timeout drops straggler jobs, trading a sliver of accuracy for a
 * large makespan cut.
 *
 * The study also demonstrates the engine's asynchronous submission
 * API: the streaming pipeline shards the execution batch, runs FISTA
 * warm-ups on finished shards while later shards are still in flight,
 * and reports the prefix-cache traffic it observed -- same samples,
 * same answer, less wall-clock on a multi-core host.
 */

#include <chrono>
#include <cstdio>
#include <memory>

#include "src/ansatz/qaoa.h"
#include "src/backend/analytic_qaoa.h"
#include "src/backend/statevector_backend.h"
#include "src/core/oscar.h"
#include "src/graph/generators.h"
#include "src/hamiltonian/maxcut.h"
#include "src/landscape/metrics.h"
#include "src/parallel/eager.h"

int
main()
{
    using namespace oscar;

    Rng rng(12);
    const Graph graph = random3RegularGraph(16, rng);
    const GridSpec grid = GridSpec::qaoaP1();

    auto make_devices = [&] {
        std::vector<QpuDevice> devices;
        QpuDevice d1;
        d1.name = "qpu-1 (target)";
        d1.noise = NoiseModel::depolarizing(0.001, 0.005);
        d1.cost = std::make_shared<AnalyticQaoaCost>(graph, d1.noise);
        d1.latency = {0.0, 1.0, 1.2};
        devices.push_back(std::move(d1));
        QpuDevice d2;
        d2.name = "qpu-2 (noisier helper)";
        d2.noise = NoiseModel::depolarizing(0.003, 0.007);
        d2.cost = std::make_shared<AnalyticQaoaCost>(graph, d2.noise);
        d2.latency = {0.0, 1.0, 1.2};
        devices.push_back(std::move(d2));
        return devices;
    };

    // One batched engine for every execution in this study.
    ExecutionEngine engine(0);

    // The landscape QPU-1 would produce by itself (the target).
    AnalyticQaoaCost target_cost(graph,
                                 NoiseModel::depolarizing(0.001, 0.005));
    const Landscape target =
        Landscape::gridSearch(grid, target_cost, &engine);

    OscarOptions options;
    options.samplingFraction = 0.10;

    std::printf("Mixed-device reconstruction of QPU-1's landscape "
                "(50/50 sample split, 10%% of 50x100 grid)\n\n");
    for (bool use_ncm : {false, true}) {
        auto devices = make_devices();
        Rng run_rng(99);
        const auto result = Oscar::reconstructParallel(
            grid, devices, {0.5, 0.5}, use_ncm, 0.01, run_rng, options,
            &engine);
        std::printf("  %-22s NRMSE vs QPU-1 landscape: %.4f\n",
                    use_ncm ? "with NCM" : "uncompensated",
                    nrmse(target.values(),
                          result.reconstructed.values()));
    }

    // Eager reconstruction under heavy-tailed latency.
    std::printf("\nEager timeout study (heavy-tailed per-job latency, "
                "p99/median ~ 10-30x):\n");
    auto devices = make_devices();
    Rng sched_rng(7);
    const auto indices =
        chooseSampleIndices(grid.numPoints(), 0.10, sched_rng);
    const auto run =
        runParallelSampling(grid, devices, indices, sched_rng,
                            Assignment::RoundRobin, {}, &engine);
    for (double q : {1.0, 0.95, 0.85}) {
        const auto outcome = eagerCutoffQuantile(run, q);
        const Landscape recon =
            Oscar::reconstructFromSamples(grid, outcome.retained);
        std::printf("  keep %3.0f%%: finish at t=%7.1f (full makespan "
                    "%7.1f), NRMSE %.4f\n", 100.0 * q, outcome.deadline,
                    outcome.fullMakespan,
                    nrmse(target.values(), recon.values()));
    }
    std::printf("\nDropping the straggler tail cuts wall-clock time "
                "with almost no accuracy cost -- the flat error-vs-"
                "fraction curve of Fig. 4 at work.\n");

    // ------------------------------------------------------------
    // Execution/reconstruction overlap via the async submission API.
    // ------------------------------------------------------------
    std::printf("\nStreaming pipeline (statevector backend, 14 qubits, "
                "30x60 grid, 10%% samples):\n");
    {
        Rng g_rng(5);
        const Graph sv_graph = random3RegularGraph(14, g_rng);
        const GridSpec sv_grid = GridSpec::qaoaP1(30, 60);
        auto make_cost = [&] {
            return StatevectorCost(qaoaCircuit(sv_graph, 1),
                                   maxcutHamiltonian(sv_graph));
        };
        auto seconds = [](auto fn) {
            const auto start = std::chrono::steady_clock::now();
            fn();
            return std::chrono::duration<double>(
                       std::chrono::steady_clock::now() - start)
                .count();
        };

        OscarOptions barrier;
        barrier.samplingFraction = 0.10;
        OscarOptions streaming = barrier;
        streaming.streaming.shards = 6;
        streaming.streaming.warmupIterations = 10;

        OscarResult sync_result, overlap_result;
        const double sync_s = seconds([&] {
            StatevectorCost cost = make_cost();
            sync_result = Oscar::reconstruct(sv_grid, cost, barrier);
        });
        const double overlap_s = seconds([&] {
            StatevectorCost cost = make_cost();
            overlap_result = Oscar::reconstruct(sv_grid, cost, streaming);
        });

        const bool same_samples =
            sync_result.samples.values == overlap_result.samples.values;
        std::printf("  synchronous barrier: %6.2f s\n", sync_s);
        std::printf("  streaming overlap:   %6.2f s (%zu shards, "
                    "same samples: %s)\n",
                    overlap_s, streaming.streaming.shards,
                    same_samples ? "yes" : "NO");
        std::printf("  execution stats: %zu points, prefix cache "
                    "%zu/%zu hits, %zu evictions\n",
                    overlap_result.execution.pointsCompleted,
                    overlap_result.execution.kernel.cacheHits,
                    overlap_result.execution.kernel.cacheLookups,
                    overlap_result.execution.kernel.cacheEvictions);
        std::printf("  While shards execute on the worker pool, the "
                    "reconstructor is already iterating on finished "
                    "samples -- the barrier between Fig. 3's phases "
                    "is gone.\n");
    }
    return 0;
}
