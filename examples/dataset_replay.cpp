/**
 * @file
 * Dataset replay (paper Section 4.3): reconstruct a landscape that was
 * measured elsewhere and shipped as a file.
 *
 * The example generates a hardware-like 50x50 landscape (the Sycamore
 * dataset substitute), saves it in the library's portable text format
 * plus a PGM heat map, then -- playing the role of a second user who
 * only has the file -- reloads it, reconstructs from a 40% sample, and
 * compares. Artifacts land in the current directory:
 *     replay_truth.txt / replay_truth.pgm / replay_recon.pgm
 */

#include <cstdio>

#include "src/backend/hardware_dataset.h"
#include "src/core/oscar.h"
#include "src/graph/generators.h"
#include "src/landscape/export.h"
#include "src/landscape/io.h"
#include "src/common/stats.h"
#include "src/landscape/metrics.h"

int
main()
{
    using namespace oscar;

    // --- Producer: measure and publish a landscape. ---
    Rng rng(8);
    const Graph graph = random3RegularGraph(20, rng);
    const GridSpec grid = GridSpec::qaoaP1(50, 50);
    HardwareDatasetOptions hw;
    hw.seed = 4;
    const Landscape measured =
        syntheticHardwareLandscape(graph, grid, hw);
    saveLandscape(measured, "replay_truth.txt");
    writePgm(measured, "replay_truth.pgm");
    std::printf("published replay_truth.txt (%zu points) and "
                "replay_truth.pgm\n", measured.numPoints());

    // --- Consumer: load the file and run OSCAR on it. ---
    const Landscape truth = loadLandscape("replay_truth.txt");
    OscarOptions options;
    options.samplingFraction = 0.40;
    const auto result = Oscar::reconstructFromLandscape(truth, options);
    writePgm(result.reconstructed, "replay_recon.pgm");

    std::printf("reconstructed from %zu samples (%.0f%% of the grid)\n",
                result.queriesUsed,
                100.0 * static_cast<double>(result.queriesUsed) /
                    static_cast<double>(truth.numPoints()));
    std::printf("NRMSE vs file: %.4f  (correlation %.4f)\n",
                nrmse(truth.values(), result.reconstructed.values()),
                stats::pearson(truth.values().flat(),
                               result.reconstructed.values().flat()));
    std::printf("wrote replay_recon.pgm -- compare the two heat maps\n");

    std::printf("\ntruth (ASCII):\n%s",
                renderAscii(truth, 12, 40).c_str());
    std::printf("reconstruction (ASCII):\n%s",
                renderAscii(result.reconstructed, 12, 40).c_str());
    return 0;
}
