/**
 * @file
 * VQE on the H2 molecule with OSCAR-assisted initialization.
 *
 * The paper's molecular workloads (Tables 2-4) are VQE problems:
 * minimize <psi(theta)|H|psi(theta)> for a molecular Hamiltonian.
 * This example runs the full flow on H2 (2 qubits, exact FCI energy
 * -1.8573 Ha at 0.735 A):
 *
 *   1. brute VQE: Nelder-Mead from a random start on the UCCSD ansatz;
 *   2. OSCAR-assisted VQE: reconstruct a 2-parameter slice of the
 *      landscape from 25% of a 40x40 grid, warm-start from the
 *      reconstruction's minimizer, finish with Nelder-Mead.
 *
 * Both reach chemical-accuracy neighborhood; the OSCAR path shows how
 * landscape reconstruction plugs into a chemistry workflow.
 */

#include <algorithm>
#include <cstdio>

#include "src/ansatz/uccsd.h"
#include "src/backend/statevector_backend.h"
#include "src/core/oscar.h"
#include "src/hamiltonian/molecules.h"
#include "src/interp/bicubic.h"
#include "src/landscape/metrics.h"
#include "src/optimize/nelder_mead.h"

int
main()
{
    using namespace oscar;

    const PauliSum h2 = h2Hamiltonian();
    const Circuit ansatz = uccsdCircuit(2); // 3 parameters
    StatevectorCost cost(ansatz, h2);
    const double fci = -1.8573;

    std::printf("VQE for H2 (UCCSD, %d parameters), FCI reference "
                "%.4f Ha\n\n", ansatz.numParams(), fci);

    // --- 1. Plain VQE from a random start. ---
    NelderMead nm;
    const auto plain = nm.minimize(cost, {0.8, -0.9, 0.7});
    std::printf("plain VQE:  E = %.5f Ha after %zu queries\n",
                plain.bestValue, plain.numQueries);

    // --- 2. OSCAR-assisted: reconstruct a (p0, p2) slice at p1 = 0,
    //        warm-start from its minimizer. ---
    const GridSpec grid({{-1.0, 1.0, 40}, {-1.0, 1.0, 40}});
    LambdaCost slice(2, [&](const std::vector<double>& p) {
        return cost.evaluate({p[0], 0.0, p[1]});
    });
    cost.resetQueries();
    OscarOptions options;
    options.samplingFraction = 0.25;
    const auto recon = Oscar::reconstruct(grid, slice, options);
    std::printf("\nOSCAR slice reconstruction: %zu samples (speedup "
                "%.1fx over the %zu-point grid)\n", recon.queriesUsed,
                recon.querySpeedup, grid.numPoints());

    InterpolatedLandscapeCost interp(recon.reconstructed);
    NelderMead suggester;
    const auto on_recon = suggester.minimize(interp, {0.1, 0.1});
    // The interpolant clamps to the grid box; clamp the suggested
    // point the same way before handing it to the real workflow.
    auto clamp_axis = [&](double v, std::size_t d) {
        return std::clamp(v, grid.axis(d).lo, grid.axis(d).hi);
    };
    const std::vector<double> warm{
        clamp_axis(on_recon.bestParams[0], 0), 0.0,
        clamp_axis(on_recon.bestParams[1], 1)};
    std::printf("reconstruction minimizer: (%.3f, 0, %.3f) with "
                "interpolated E = %.5f\n", warm[0], warm[2],
                on_recon.bestValue);

    cost.resetQueries();
    const auto assisted = nm.minimize(cost, warm);
    std::printf("warm VQE:   E = %.5f Ha after %zu queries\n",
                assisted.bestValue, assisted.numQueries);

    std::printf("\nboth runs vs FCI: plain %.2f mHa, assisted %.2f "
                "mHa\n", 1e3 * (plain.bestValue - fci),
                1e3 * (assisted.bestValue - fci));
    return 0;
}
