/**
 * @file
 * Tests for the optimizer suite: convergence on standard objectives,
 * path recording, and query accounting.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "src/optimize/adam.h"
#include "src/optimize/cobyla.h"
#include "src/optimize/gradient_descent.h"
#include "src/optimize/nelder_mead.h"
#include "src/optimize/spsa.h"

namespace oscar {
namespace {

std::unique_ptr<LambdaCost>
quadraticBowl()
{
    return std::make_unique<LambdaCost>(
        2, [](const std::vector<double>& p) {
            return (p[0] - 0.4) * (p[0] - 0.4) +
                   2.0 * (p[1] + 0.7) * (p[1] + 0.7) + 1.0;
        });
}

std::unique_ptr<Optimizer>
makeOptimizer(const std::string& name)
{
    if (name == "adam") {
        AdamOptions o;
        o.maxIterations = 400;
        return std::make_unique<Adam>(o);
    }
    if (name == "gd") {
        GradientDescentOptions o;
        o.maxIterations = 600;
        return std::make_unique<GradientDescent>(o);
    }
    if (name == "spsa") {
        SpsaOptions o;
        o.maxIterations = 1200;
        return std::make_unique<Spsa>(o);
    }
    if (name == "nelder-mead")
        return std::make_unique<NelderMead>();
    return std::make_unique<Cobyla>();
}

class OptimizerConvergence
    : public ::testing::TestWithParam<std::string>
{
};

TEST_P(OptimizerConvergence, FindsQuadraticMinimum)
{
    auto cost = quadraticBowl();
    auto opt = makeOptimizer(GetParam());
    const auto result = opt->minimize(*cost, {0.0, 0.0});
    EXPECT_NEAR(result.bestParams[0], 0.4, 0.05) << GetParam();
    EXPECT_NEAR(result.bestParams[1], -0.7, 0.05) << GetParam();
    EXPECT_NEAR(result.bestValue, 1.0, 0.01) << GetParam();
}

TEST_P(OptimizerConvergence, RecordsPathStartingAtInitialPoint)
{
    auto cost = quadraticBowl();
    auto opt = makeOptimizer(GetParam());
    const auto result = opt->minimize(*cost, {0.1, 0.2});
    ASSERT_GE(result.path.size(), 2u);
    EXPECT_DOUBLE_EQ(result.path.front()[0], 0.1);
    EXPECT_DOUBLE_EQ(result.path.front()[1], 0.2);
}

TEST_P(OptimizerConvergence, CountsQueries)
{
    auto cost = quadraticBowl();
    auto opt = makeOptimizer(GetParam());
    const auto result = opt->minimize(*cost, {0.0, 0.0});
    EXPECT_EQ(result.numQueries, cost->numQueries());
    EXPECT_GT(result.numQueries, 0u);
}

INSTANTIATE_TEST_SUITE_P(All, OptimizerConvergence,
                         ::testing::Values("adam", "gd", "spsa",
                                           "nelder-mead", "cobyla"));

TEST(Adam, ConvergesOnCosineValley)
{
    // Periodic landscape akin to QAOA: f = -cos(x)cos(y).
    LambdaCost cost(2, [](const std::vector<double>& p) {
        return -std::cos(p[0]) * std::cos(p[1]);
    });
    Adam adam;
    const auto result = adam.minimize(cost, {0.5, -0.6});
    EXPECT_NEAR(result.bestValue, -1.0, 1e-3);
}

TEST(Cobyla, UsesFewQueriesOnSmoothProblem)
{
    // The gradient-free trust-region method should converge in tens of
    // queries (cf. COBYLA's ~40 in the paper's Table 6).
    auto cost = quadraticBowl();
    Cobyla cobyla;
    const auto result = cobyla.minimize(*cost, {0.0, 0.0});
    EXPECT_LT(result.numQueries, 200u);
    EXPECT_NEAR(result.bestValue, 1.0, 1e-3);
}

TEST(Adam, QueriesScaleWithGradientEvaluations)
{
    // Each iteration costs 2*dim (gradient) + 1 (value) queries.
    auto cost = quadraticBowl();
    AdamOptions o;
    o.maxIterations = 10;
    o.gradientTolerance = 0.0; // never converge early
    Adam adam(o);
    const auto result = adam.minimize(*cost, {0.0, 0.0});
    EXPECT_EQ(result.numQueries, 1u + 10u * (2u * 2u + 1u));
}

TEST(NelderMead, HandlesRosenbrock)
{
    LambdaCost cost(2, [](const std::vector<double>& p) {
        const double a = 1.0 - p[0];
        const double b = p[1] - p[0] * p[0];
        return a * a + 100.0 * b * b;
    });
    NelderMeadOptions o;
    o.maxIterations = 2000;
    NelderMead nm(o);
    const auto result = nm.minimize(cost, {-0.5, 0.5});
    EXPECT_NEAR(result.bestParams[0], 1.0, 0.05);
    EXPECT_NEAR(result.bestParams[1], 1.0, 0.1);
}

TEST(Spsa, ToleratesNoisyObjective)
{
    // SPSA is built for stochastic objectives.
    Rng noise_rng(17);
    LambdaCost cost(2, [&noise_rng](const std::vector<double>& p) {
        return p[0] * p[0] + p[1] * p[1] +
               noise_rng.normal(0.0, 0.01);
    });
    SpsaOptions o;
    o.maxIterations = 2000;
    Spsa spsa(o);
    const auto result = spsa.minimize(cost, {0.8, -0.9});
    EXPECT_LT(result.bestParams[0] * result.bestParams[0] +
                  result.bestParams[1] * result.bestParams[1],
              0.05);
}

TEST(ParamDistance, Euclidean)
{
    EXPECT_DOUBLE_EQ(paramDistance({0, 0}, {3, 4}), 5.0);
    EXPECT_DOUBLE_EQ(paramDistance({1, 1}, {1, 1}), 0.0);
}

} // namespace
} // namespace oscar
