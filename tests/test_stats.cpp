/**
 * @file
 * Tests for descriptive statistics (quartiles drive the paper's NRMSE).
 */

#include <gtest/gtest.h>

#include <cmath>

#include "src/common/stats.h"

namespace oscar {
namespace {

TEST(Stats, Mean)
{
    EXPECT_DOUBLE_EQ(stats::mean({1, 2, 3, 4}), 2.5);
}

TEST(Stats, VarianceOfConstantIsZero)
{
    EXPECT_DOUBLE_EQ(stats::variance({5, 5, 5}), 0.0);
}

TEST(Stats, VarianceKnownValue)
{
    // Population variance of {1,2,3,4} = 1.25.
    EXPECT_DOUBLE_EQ(stats::variance({1, 2, 3, 4}), 1.25);
}

TEST(Stats, StddevIsSqrtVariance)
{
    EXPECT_DOUBLE_EQ(stats::stddev({1, 2, 3, 4}), std::sqrt(1.25));
}

TEST(Stats, QuantileEndpoints)
{
    const std::vector<double> v{3, 1, 2};
    EXPECT_DOUBLE_EQ(stats::quantile(v, 0.0), 1.0);
    EXPECT_DOUBLE_EQ(stats::quantile(v, 1.0), 3.0);
}

TEST(Stats, QuantileLinearInterpolation)
{
    // numpy.quantile([0, 10], 0.25) == 2.5
    EXPECT_DOUBLE_EQ(stats::quantile({0, 10}, 0.25), 2.5);
}

TEST(Stats, MedianOddEven)
{
    EXPECT_DOUBLE_EQ(stats::median({5, 1, 3}), 3.0);
    EXPECT_DOUBLE_EQ(stats::median({1, 2, 3, 4}), 2.5);
}

TEST(Stats, IqrMatchesNumpy)
{
    // numpy: q1(1..8)=2.75, q3=6.25 -> iqr 3.5
    const std::vector<double> v{1, 2, 3, 4, 5, 6, 7, 8};
    EXPECT_DOUBLE_EQ(stats::iqr(v), 3.5);
}

TEST(Stats, RmseZeroForIdentical)
{
    EXPECT_DOUBLE_EQ(stats::rmse({1, 2, 3}, {1, 2, 3}), 0.0);
}

TEST(Stats, RmseKnownValue)
{
    EXPECT_DOUBLE_EQ(stats::rmse({0, 0}, {3, 4}),
                     std::sqrt((9.0 + 16.0) / 2.0));
}

TEST(Stats, PearsonPerfectCorrelation)
{
    EXPECT_NEAR(stats::pearson({1, 2, 3}, {2, 4, 6}), 1.0, 1e-12);
    EXPECT_NEAR(stats::pearson({1, 2, 3}, {-2, -4, -6}), -1.0, 1e-12);
}

TEST(Stats, PearsonZeroForConstant)
{
    EXPECT_DOUBLE_EQ(stats::pearson({1, 2, 3}, {5, 5, 5}), 0.0);
}

} // namespace
} // namespace oscar
