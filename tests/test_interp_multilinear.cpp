/**
 * @file
 * Tests for N-dimensional multilinear interpolation and the landscape
 * export utilities.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "src/interp/multilinear.h"
#include "src/landscape/export.h"

namespace {

using namespace oscar;

Landscape
linearLandscape4d()
{
    const GridSpec grid({{0.0, 1.0, 3},
                         {0.0, 1.0, 4},
                         {0.0, 1.0, 3},
                         {0.0, 1.0, 5}});
    NdArray values(grid.shape());
    for (std::size_t i = 0; i < values.size(); ++i) {
        const auto p = grid.pointAt(i);
        values[i] = 1.0 + 2.0 * p[0] - 3.0 * p[1] + 0.5 * p[2] + p[3];
    }
    return Landscape(grid, std::move(values));
}

TEST(Multilinear, ExactAtGridPoints)
{
    const Landscape ls = linearLandscape4d();
    const MultilinearInterpolator interp(ls);
    for (std::size_t i = 0; i < ls.numPoints(); i += 7) {
        const auto p = ls.grid().pointAt(i);
        EXPECT_NEAR(interp(p), ls.value(i), 1e-12);
    }
}

TEST(Multilinear, ReproducesLinearFunctionsExactly)
{
    const Landscape ls = linearLandscape4d();
    const MultilinearInterpolator interp(ls);
    const std::vector<double> p{0.37, 0.81, 0.12, 0.66};
    EXPECT_NEAR(interp(p),
                1.0 + 2.0 * p[0] - 3.0 * p[1] + 0.5 * p[2] + p[3],
                1e-12);
}

TEST(Multilinear, ClampsOutsideTheBox)
{
    const Landscape ls = linearLandscape4d();
    const MultilinearInterpolator interp(ls);
    EXPECT_NEAR(interp({-5.0, 0.0, 0.0, 0.0}), interp({0.0, 0.0, 0.0,
                                                       0.0}),
                1e-12);
    EXPECT_NEAR(interp({2.0, 1.0, 1.0, 1.0}),
                interp({1.0, 1.0, 1.0, 1.0}), 1e-12);
}

TEST(Multilinear, CostAdapterCountsQueries)
{
    MultilinearLandscapeCost cost(linearLandscape4d());
    EXPECT_EQ(cost.numParams(), 4);
    cost.evaluate({0.1, 0.2, 0.3, 0.4});
    EXPECT_EQ(cost.numQueries(), 1u);
}

TEST(Multilinear, Rank2AgreesWithValuesMidCell)
{
    const GridSpec grid({{0.0, 1.0, 2}, {0.0, 1.0, 2}});
    NdArray values(grid.shape(), {0.0, 1.0, 2.0, 3.0});
    const MultilinearInterpolator interp(Landscape(grid, values));
    EXPECT_NEAR(interp({0.5, 0.5}), 1.5, 1e-12);
}

TEST(Export, PgmFileHasCorrectHeaderAndSize)
{
    const GridSpec grid({{0.0, 1.0, 5}, {0.0, 1.0, 7}});
    NdArray values(grid.shape());
    for (std::size_t i = 0; i < values.size(); ++i)
        values[i] = static_cast<double>(i);
    const Landscape ls(grid, std::move(values));

    const std::string path = "/tmp/oscar_test_landscape.pgm";
    writePgm(ls, path, 3);

    std::ifstream in(path, std::ios::binary);
    ASSERT_TRUE(in.good());
    std::string magic;
    std::size_t width = 0, height = 0;
    int maxval = 0;
    in >> magic >> width >> height >> maxval;
    EXPECT_EQ(magic, "P5");
    EXPECT_EQ(width, 21u);
    EXPECT_EQ(height, 15u);
    EXPECT_EQ(maxval, 255);
    in.get(); // single whitespace after header
    std::vector<char> pixels(width * height);
    in.read(pixels.data(), static_cast<std::streamsize>(pixels.size()));
    EXPECT_EQ(static_cast<std::size_t>(in.gcount()), width * height);
    std::remove(path.c_str());
}

TEST(Export, AsciiHasRequestedShape)
{
    const GridSpec grid({{0.0, 1.0, 10}, {0.0, 1.0, 10}});
    NdArray values(grid.shape());
    for (std::size_t i = 0; i < values.size(); ++i)
        values[i] = static_cast<double>(i % 10);
    const Landscape ls(grid, std::move(values));
    const std::string art = renderAscii(ls, 5, 12);
    // 5 lines of "|" + 12 chars + "|\n".
    EXPECT_EQ(art.size(), 5u * (12u + 3u));
    EXPECT_EQ(std::count(art.begin(), art.end(), '\n'), 5);
}

TEST(Export, RejectsNonRank2)
{
    const GridSpec grid(
        {{0.0, 1.0, 2}, {0.0, 1.0, 2}, {0.0, 1.0, 2}, {0.0, 1.0, 2}});
    const Landscape ls(grid, NdArray(grid.shape()));
    EXPECT_THROW(renderAscii(ls), std::invalid_argument);
    EXPECT_THROW(writePgm(ls, "/tmp/x.pgm"), std::invalid_argument);
}

} // namespace
