/**
 * @file
 * Wire-format tests for the distributed execution subsystem:
 *
 *  - round-trip property tests over randomized task specs, tasks, and
 *    result frames (circuits with every gate kind, random Pauli sums,
 *    random kernel options/stats, random point shards);
 *  - framing robustness: every truncation of a valid frame yields "no
 *    frame yet" (never a bogus message), and corruption -- flipped
 *    payload bytes, bad magic, wrong version, unknown type, oversized
 *    length, CRC damage, trailing payload bytes -- is rejected with
 *    WireError;
 *  - streamed decode: frames split at arbitrary byte boundaries
 *    reassemble exactly;
 *  - v6 observability frames: Telemetry (spans + cumulative metrics
 *    snapshot) and MetricsRequest / MetricsResponse round-trip, and
 *    the telemetry decoder rejects implausible span counts, unknown
 *    categories, and oversized span names.
 */

#include <gtest/gtest.h>

#include <cstring>

#include "src/common/crc32.h"
#include "src/common/rng.h"
#include "src/dist/wire.h"

namespace oscar {
namespace dist {
namespace {

Circuit
randomCircuit(Rng& rng, int num_qubits, int num_params)
{
    Circuit circuit(num_qubits, num_params);
    const int num_gates = 5 + static_cast<int>(rng.uniformInt(40));
    for (int i = 0; i < num_gates; ++i) {
        const int kind_index = static_cast<int>(rng.uniformInt(
            static_cast<std::uint64_t>(GateKind::RZZ) + 1));
        const auto kind = static_cast<GateKind>(kind_index);
        const int q0 = static_cast<int>(
            rng.uniformInt(static_cast<std::uint64_t>(num_qubits)));
        int q1 = q0;
        while (q1 == q0)
            q1 = static_cast<int>(rng.uniformInt(
                static_cast<std::uint64_t>(num_qubits)));
        Gate g;
        g.kind = kind;
        g.qubits[0] = q0;
        g.qubits[1] = gateArity(kind) == 2 ? q1 : -1;
        if (gateIsParameterized(kind)) {
            g.angle = rng.uniform(-3.0, 3.0);
            if (num_params > 0 && rng.uniform() < 0.7) {
                g.paramIndex = static_cast<int>(rng.uniformInt(
                    static_cast<std::uint64_t>(num_params)));
                g.coeff = rng.uniform(-2.0, 2.0);
            }
        }
        circuit.append(g);
    }
    return circuit;
}

PauliSum
randomPauliSum(Rng& rng, int num_qubits)
{
    PauliSum sum(num_qubits);
    const int num_terms = 1 + static_cast<int>(rng.uniformInt(10));
    for (int t = 0; t < num_terms; ++t) {
        PauliString pauli(num_qubits);
        for (int q = 0; q < num_qubits; ++q)
            pauli.setOp(q,
                        static_cast<PauliOp>(rng.uniformInt(4)));
        sum.add(rng.uniform(-2.0, 2.0), pauli);
    }
    return sum;
}

KernelOptions
randomKernelOptions(Rng& rng)
{
    KernelOptions options;
    options.prefixCache = rng.uniform() < 0.5;
    options.prefixCacheBudgetBytes = rng.uniformInt(1u << 28);
    const kernels::KernelIsa isas[] = {kernels::KernelIsa::Scalar,
                                       kernels::KernelIsa::Avx2,
                                       kernels::KernelIsa::Avx512};
    options.isa = isas[rng.uniformInt(3)];
    options.blockWindow = static_cast<int>(rng.uniformInt(12)) - 1;
    options.batchedExpectation = rng.uniform() < 0.5;
    options.fuseWindow = static_cast<int>(rng.uniformInt(8));
    return options;
}

KernelStats
randomKernelStats(Rng& rng)
{
    KernelStats stats;
    stats.cacheHits = rng.uniformInt(1000);
    stats.cacheLookups = stats.cacheHits + rng.uniformInt(1000);
    stats.cacheEvictions = rng.uniformInt(100);
    const kernels::KernelIsa isas[] = {kernels::KernelIsa::Scalar,
                                       kernels::KernelIsa::Avx2,
                                       kernels::KernelIsa::Avx512};
    stats.isa = isas[rng.uniformInt(3)];
    stats.blockedGroupRuns = rng.uniformInt(500);
    stats.blockedOpsApplied = rng.uniformInt(5000);
    stats.batchedExpectationPoints = rng.uniformInt(500);
    stats.fusedSuperKernels = rng.uniformInt(500);
    stats.fusedOpsCollapsed = rng.uniformInt(5000);
    stats.batchedPauliPoints = rng.uniformInt(500);
    return stats;
}

void
expectCircuitsEqual(const Circuit& a, const Circuit& b)
{
    ASSERT_EQ(a.numQubits(), b.numQubits());
    ASSERT_EQ(a.numParams(), b.numParams());
    ASSERT_EQ(a.numGates(), b.numGates());
    for (std::size_t i = 0; i < a.numGates(); ++i) {
        const Gate& ga = a.gates()[i];
        const Gate& gb = b.gates()[i];
        EXPECT_EQ(ga.kind, gb.kind);
        EXPECT_EQ(ga.qubits, gb.qubits);
        EXPECT_EQ(ga.angle, gb.angle); // bitwise: wire is bit-exact
        EXPECT_EQ(ga.paramIndex, gb.paramIndex);
        EXPECT_EQ(ga.coeff, gb.coeff);
    }
}

void
expectPauliSumsEqual(const PauliSum& a, const PauliSum& b)
{
    ASSERT_EQ(a.numQubits(), b.numQubits());
    ASSERT_EQ(a.numTerms(), b.numTerms());
    for (std::size_t t = 0; t < a.numTerms(); ++t) {
        EXPECT_EQ(a.terms()[t].coeff, b.terms()[t].coeff);
        EXPECT_EQ(a.terms()[t].pauli, b.terms()[t].pauli);
    }
}

TEST(WireTest, CostSpecRoundTripRandomized)
{
    Rng rng(123);
    for (int rep = 0; rep < 50; ++rep) {
        const int num_qubits = 2 + static_cast<int>(rng.uniformInt(10));
        const int num_params = static_cast<int>(rng.uniformInt(6));
        CostSpec spec;
        spec.circuit = randomCircuit(rng, num_qubits, num_params);
        spec.hamiltonian = randomPauliSum(rng, num_qubits);
        spec.kernel = randomKernelOptions(rng);

        const std::vector<std::uint8_t> payload = encodeCostSpec(spec);
        EXPECT_NE(spec.costId, 0u);
        const CostSpec back = decodeCostSpec(payload);

        EXPECT_EQ(back.costId, spec.costId);
        expectCircuitsEqual(back.circuit, spec.circuit);
        expectPauliSumsEqual(back.hamiltonian, spec.hamiltonian);
        EXPECT_EQ(back.kernel.prefixCache, spec.kernel.prefixCache);
        EXPECT_EQ(back.kernel.prefixCacheBudgetBytes,
                  spec.kernel.prefixCacheBudgetBytes);
        EXPECT_EQ(back.kernel.isa, spec.kernel.isa);
        EXPECT_EQ(back.kernel.blockWindow, spec.kernel.blockWindow);
        EXPECT_EQ(back.kernel.batchedExpectation,
                  spec.kernel.batchedExpectation);
        EXPECT_EQ(back.kernel.fuseWindow, spec.kernel.fuseWindow);
    }
}

TEST(WireTest, CostSpecIdIsContentAddressed)
{
    Rng rng(7);
    CostSpec a;
    a.circuit = randomCircuit(rng, 4, 2);
    a.hamiltonian = randomPauliSum(rng, 4);
    CostSpec b = a;
    const std::vector<std::uint8_t> pa = encodeCostSpec(a);
    const std::vector<std::uint8_t> pb = encodeCostSpec(b);
    EXPECT_EQ(a.costId, b.costId);
    EXPECT_EQ(pa, pb);

    // Any semantic change moves the id.
    b.kernel.blockWindow += 1;
    encodeCostSpec(b);
    EXPECT_NE(a.costId, b.costId);
}

TEST(WireTest, TaskRoundTripRandomized)
{
    Rng rng(321);
    for (int rep = 0; rep < 50; ++rep) {
        TaskMsg task;
        task.taskId = rng.uniformInt(1u << 30);
        task.costId = rng.uniformInt(1u << 30);
        task.baseOrdinal = rng.uniformInt(1u << 30);
        const std::size_t count = rng.uniformInt(20);
        const std::size_t dim = 1 + rng.uniformInt(6);
        for (std::size_t i = 0; i < count; ++i) {
            std::vector<double> p(dim);
            for (double& v : p)
                v = rng.uniform(-10.0, 10.0);
            task.points.push_back(std::move(p));
        }
        const TaskMsg back = decodeTask(encodeTask(task));
        EXPECT_EQ(back.taskId, task.taskId);
        EXPECT_EQ(back.costId, task.costId);
        EXPECT_EQ(back.baseOrdinal, task.baseOrdinal);
        ASSERT_EQ(back.points.size(), task.points.size());
        for (std::size_t i = 0; i < count; ++i)
            EXPECT_EQ(back.points[i], task.points[i]); // bitwise
    }
}

TEST(WireTest, ResultRoundTripRandomized)
{
    Rng rng(99);
    for (int rep = 0; rep < 50; ++rep) {
        ResultMsg msg;
        msg.taskId = rng.uniformInt(1u << 30);
        const std::size_t count = rng.uniformInt(64);
        for (std::size_t i = 0; i < count; ++i)
            msg.values.push_back(rng.uniform(-100.0, 100.0));
        msg.kernel = randomKernelStats(rng);

        const ResultMsg back = decodeResult(encodeResult(msg));
        EXPECT_EQ(back.taskId, msg.taskId);
        EXPECT_EQ(back.values, msg.values); // bitwise
        EXPECT_EQ(back.kernel.cacheHits, msg.kernel.cacheHits);
        EXPECT_EQ(back.kernel.cacheLookups, msg.kernel.cacheLookups);
        EXPECT_EQ(back.kernel.cacheEvictions, msg.kernel.cacheEvictions);
        EXPECT_EQ(back.kernel.isa, msg.kernel.isa);
        EXPECT_EQ(back.kernel.blockedGroupRuns,
                  msg.kernel.blockedGroupRuns);
        EXPECT_EQ(back.kernel.blockedOpsApplied,
                  msg.kernel.blockedOpsApplied);
        EXPECT_EQ(back.kernel.batchedExpectationPoints,
                  msg.kernel.batchedExpectationPoints);
        EXPECT_EQ(back.kernel.fusedSuperKernels,
                  msg.kernel.fusedSuperKernels);
        EXPECT_EQ(back.kernel.fusedOpsCollapsed,
                  msg.kernel.fusedOpsCollapsed);
        EXPECT_EQ(back.kernel.batchedPauliPoints,
                  msg.kernel.batchedPauliPoints);
    }
}

TEST(WireTest, TaskErrorRoundTrip)
{
    TaskErrorMsg msg;
    msg.taskId = 42;
    msg.code = kTaskErrorUnknownCost;
    msg.message = "statevector exploded";
    const TaskErrorMsg back = decodeTaskError(encodeTaskError(msg));
    EXPECT_EQ(back.taskId, msg.taskId);
    EXPECT_EQ(back.code, kTaskErrorUnknownCost);
    EXPECT_EQ(back.message, msg.message);
}

TEST(WireTest, TaskRejectsZeroDimensionalPoints)
{
    // A crafted frame claiming a huge point count with dim = 0 must
    // be rejected before any allocation is sized from the count.
    WireWriter w;
    w.u64(1);          // taskId
    w.u64(2);          // costId
    w.u64(3);          // baseOrdinal
    w.u32(0xFFFFFFFF); // count
    w.u32(0);          // dim
    EXPECT_THROW(decodeTask(w.bytes()), WireError);
}

TEST(WireTest, HelloRoundTrip)
{
    HelloMsg msg;
    msg.pid = 12345;
    msg.isa = kernels::KernelIsa::Avx2;
    msg.threads = 16; // v3: advertised hybrid capacity
    WireWriter w;
    encodeHello(w, msg);
    const HelloMsg back = decodeHello(w.bytes());
    EXPECT_EQ(back.pid, 12345);
    EXPECT_EQ(back.wireVersion, kWireVersion);
    EXPECT_EQ(back.isa, kernels::KernelIsa::Avx2);
    EXPECT_EQ(back.threads, 16);
}

TEST(WireTest, HelloWithoutCapacityDecodesAsSingleThreaded)
{
    // A v2-shaped Hello body ends after the ISA byte; it must decode
    // as a pre-hybrid single-threaded worker, not fail.
    WireWriter w;
    w.i32(777);
    w.u16(2);
    w.u8(0); // scalar ISA
    const HelloMsg back = decodeHello(w.bytes());
    EXPECT_EQ(back.pid, 777);
    EXPECT_EQ(back.wireVersion, 2);
    EXPECT_EQ(back.threads, 1);
}

TEST(WireTest, HelloWithZeroCapacityIsRejected)
{
    // Capacity is resolved worker-side before the greeting; zero can
    // only mean a corrupt or buggy peer, and the coordinator's
    // proportional dispatch divides by it.
    HelloMsg msg;
    msg.pid = 1;
    msg.threads = 0;
    WireWriter w;
    encodeHello(w, msg);
    EXPECT_THROW(decodeHello(w.bytes()), WireError);
}

TEST(WireTest, PriorVersionFramesAreRejected)
{
    // Frame-level version negotiation is all-or-nothing: a v2 frame
    // header (offset 4 holds the little-endian version) is torn down,
    // not parsed leniently -- both ends come from the same build.
    std::vector<std::uint8_t> bytes = encodeFrame(FrameType::Heartbeat, {});
    bytes[4] = 2;
    bytes[5] = 0;
    FrameDecoder decoder;
    decoder.feed(bytes.data(), bytes.size());
    EXPECT_THROW(decoder.next(), WireError);
}

// ------------------------------------------------------------ framing

std::vector<std::uint8_t>
sampleFrame()
{
    TaskErrorMsg msg;
    msg.taskId = 7;
    msg.message = "payload with some body to checksum";
    return encodeFrame(FrameType::TaskError, encodeTaskError(msg));
}

TEST(WireTest, FrameRoundTripAndStreamedReassembly)
{
    const std::vector<std::uint8_t> bytes = sampleFrame();

    // Whole frame at once.
    {
        FrameDecoder decoder;
        decoder.feed(bytes.data(), bytes.size());
        const auto frame = decoder.next();
        ASSERT_TRUE(frame.has_value());
        EXPECT_EQ(frame->type, FrameType::TaskError);
        EXPECT_EQ(decodeTaskError(frame->payload).message,
                  "payload with some body to checksum");
        EXPECT_FALSE(decoder.next().has_value());
    }

    // Byte-by-byte: exactly one frame, only after the last byte.
    {
        FrameDecoder decoder;
        for (std::size_t i = 0; i + 1 < bytes.size(); ++i) {
            decoder.feed(&bytes[i], 1);
            EXPECT_FALSE(decoder.next().has_value());
        }
        decoder.feed(&bytes.back(), 1);
        ASSERT_TRUE(decoder.next().has_value());
    }

    // Two concatenated frames split at an arbitrary boundary.
    {
        std::vector<std::uint8_t> two = bytes;
        two.insert(two.end(), bytes.begin(), bytes.end());
        FrameDecoder decoder;
        decoder.feed(two.data(), bytes.size() + 5);
        ASSERT_TRUE(decoder.next().has_value());
        EXPECT_FALSE(decoder.next().has_value());
        decoder.feed(two.data() + bytes.size() + 5,
                     two.size() - bytes.size() - 5);
        ASSERT_TRUE(decoder.next().has_value());
        EXPECT_FALSE(decoder.next().has_value());
    }
}

TEST(WireTest, TruncatedFramesNeverYieldAMessage)
{
    const std::vector<std::uint8_t> bytes = sampleFrame();
    for (std::size_t len = 0; len < bytes.size(); ++len) {
        FrameDecoder decoder;
        decoder.feed(bytes.data(), len);
        std::optional<Frame> frame;
        EXPECT_NO_THROW(frame = decoder.next()) << "prefix " << len;
        EXPECT_FALSE(frame.has_value()) << "prefix " << len;
    }
}

TEST(WireTest, CorruptFramesAreRejected)
{
    const std::vector<std::uint8_t> bytes = sampleFrame();

    // Bad magic.
    {
        std::vector<std::uint8_t> bad = bytes;
        bad[0] ^= 0xFF;
        FrameDecoder decoder;
        decoder.feed(bad.data(), bad.size());
        EXPECT_THROW(decoder.next(), WireError);
    }
    // Unsupported version.
    {
        std::vector<std::uint8_t> bad = bytes;
        bad[4] = 0xEE;
        FrameDecoder decoder;
        decoder.feed(bad.data(), bad.size());
        EXPECT_THROW(decoder.next(), WireError);
    }
    // Unknown frame type.
    {
        std::vector<std::uint8_t> bad = bytes;
        bad[6] = 0x7F;
        FrameDecoder decoder;
        decoder.feed(bad.data(), bad.size());
        EXPECT_THROW(decoder.next(), WireError);
    }
    // Absurd payload length.
    {
        std::vector<std::uint8_t> bad = bytes;
        bad[12] = 0xFF; // high byte of the u64 length
        FrameDecoder decoder;
        decoder.feed(bad.data(), bad.size());
        EXPECT_THROW(decoder.next(), WireError);
    }
    // Every single flipped payload byte must trip the CRC.
    for (std::size_t i = kFrameHeaderSize; i + 4 < bytes.size(); ++i) {
        std::vector<std::uint8_t> bad = bytes;
        bad[i] ^= 0x01;
        FrameDecoder decoder;
        decoder.feed(bad.data(), bad.size());
        EXPECT_THROW(decoder.next(), WireError) << "byte " << i;
    }
    // Damaged CRC trailer.
    {
        std::vector<std::uint8_t> bad = bytes;
        bad.back() ^= 0x10;
        FrameDecoder decoder;
        decoder.feed(bad.data(), bad.size());
        EXPECT_THROW(decoder.next(), WireError);
    }
}

TEST(WireTest, PayloadDecodersRejectTruncationAndTrailingBytes)
{
    TaskMsg task;
    task.taskId = 1;
    task.costId = 2;
    task.baseOrdinal = 3;
    task.points = {{0.5, -0.5}, {1.5, 2.5}};
    const std::vector<std::uint8_t> payload = encodeTask(task);

    for (std::size_t len = 0; len < payload.size(); ++len) {
        EXPECT_THROW(decodeTask({payload.data(), len}), WireError)
            << "prefix " << len;
    }
    std::vector<std::uint8_t> extra = payload;
    extra.push_back(0);
    EXPECT_THROW(decodeTask(extra), WireError);

    // Cost spec: a flipped body byte must break the content address.
    Rng rng(5);
    CostSpec spec;
    spec.circuit = randomCircuit(rng, 3, 2);
    spec.hamiltonian = randomPauliSum(rng, 3);
    std::vector<std::uint8_t> cost_payload = encodeCostSpec(spec);
    cost_payload[cost_payload.size() / 2] ^= 0x01;
    EXPECT_THROW(decodeCostSpec(cost_payload), WireError);
}

TEST(WireTest, Crc32KnownVector)
{
    // CRC-32("123456789") is the classic check value 0xCBF43926.
    const char* s = "123456789";
    EXPECT_EQ(crc32({reinterpret_cast<const std::uint8_t*>(s), 9}),
              0xCBF43926u);
    // The wire-layer entry point and the shared implementation the
    // landscape archive uses (src/common/crc32.h) are the same code.
    EXPECT_EQ(oscar::crc32({reinterpret_cast<const std::uint8_t*>(s), 9}),
              crc32({reinterpret_cast<const std::uint8_t*>(s), 9}));
}

TEST(WireTest, ServeFrameTypesRoundTrip)
{
    // v4 extends the frame-type range with the serving protocol's
    // Request / Response / Progress; the decoder accepts all three.
    const std::vector<std::uint8_t> payload = {1, 2, 3, 4};
    for (const FrameType type :
         {FrameType::Request, FrameType::Response, FrameType::Progress}) {
        const std::vector<std::uint8_t> bytes =
            encodeFrame(type, payload);
        FrameDecoder decoder;
        decoder.feed(bytes.data(), bytes.size());
        const std::optional<Frame> frame = decoder.next();
        ASSERT_TRUE(frame.has_value());
        EXPECT_EQ(frame->type, type);
        EXPECT_EQ(frame->payload, payload);
    }

    // The type one past the v6 range (MetricsResponse) is still
    // unknown.
    std::vector<std::uint8_t> bad =
        encodeFrame(FrameType::Progress, payload);
    bad[6] = static_cast<std::uint8_t>(
        static_cast<std::uint16_t>(FrameType::MetricsResponse) + 1);
    FrameDecoder decoder;
    decoder.feed(bad.data(), bad.size());
    EXPECT_THROW(decoder.next(), WireError);
}

TEST(WireTest, FleetFrameTypesRoundTrip)
{
    // v5 adds the elastic-fleet handshake and steal protocol frames.
    const std::vector<std::uint8_t> payload = {9, 8, 7};
    for (const FrameType type : {FrameType::Challenge,
                                 FrameType::StealRequest,
                                 FrameType::StealGrant}) {
        const std::vector<std::uint8_t> bytes =
            encodeFrame(type, payload);
        FrameDecoder decoder;
        decoder.feed(bytes.data(), bytes.size());
        const std::optional<Frame> frame = decoder.next();
        ASSERT_TRUE(frame.has_value());
        EXPECT_EQ(frame->type, type);
        EXPECT_EQ(frame->payload, payload);
        EXPECT_EQ(frame->wireBytes, bytes.size());
    }
}

TEST(WireTest, ChallengeAndStealMessagesRoundTrip)
{
    {
        ChallengeMsg msg;
        msg.nonce = 0x0123456789ABCDEFull;
        WireWriter w;
        encodeChallenge(w, msg);
        EXPECT_EQ(decodeChallenge(w.bytes()).nonce, msg.nonce);
        std::vector<std::uint8_t> extra = w.bytes();
        extra.push_back(0);
        EXPECT_THROW(decodeChallenge(extra), WireError);
    }
    {
        StealRequestMsg msg;
        msg.taskId = 42;
        WireWriter w;
        encodeStealRequest(w, msg);
        EXPECT_EQ(decodeStealRequest(w.bytes()).taskId, 42u);
    }
    {
        StealGrantMsg msg;
        msg.taskId = 43;
        msg.keep = 7;
        WireWriter w;
        encodeStealGrant(w, msg);
        const StealGrantMsg back = decodeStealGrant(w.bytes());
        EXPECT_EQ(back.taskId, 43u);
        EXPECT_EQ(back.keep, 7u);
    }
}

TEST(WireTest, ObservabilityFrameTypesRoundTrip)
{
    // v6 adds the telemetry and metrics-scrape frames.
    const std::vector<std::uint8_t> payload = {5, 6};
    for (const FrameType type : {FrameType::Telemetry,
                                 FrameType::MetricsRequest,
                                 FrameType::MetricsResponse}) {
        const std::vector<std::uint8_t> bytes =
            encodeFrame(type, payload);
        FrameDecoder decoder;
        decoder.feed(bytes.data(), bytes.size());
        const std::optional<Frame> frame = decoder.next();
        ASSERT_TRUE(frame.has_value());
        EXPECT_EQ(frame->type, type);
        EXPECT_EQ(frame->payload, payload);
    }
}

TEST(WireTest, TelemetryMessageRoundTrip)
{
    TelemetryMsg msg;
    msg.pid = 31337;
    obs::SpanRecord span;
    span.t0Ns = 123456789;
    span.durNs = 987;
    span.category = obs::SpanCategory::Dist;
    std::strcpy(span.name, "dispatch");
    span.arg0 = 7;
    span.arg1 = 48;
    span.tid = 3;
    msg.spans.push_back(span);
    span.category = obs::SpanCategory::Wire;
    std::strcpy(span.name, "fifteen-chars..");
    span.tid = 4;
    msg.spans.push_back(span);
    msg.metrics.counters["cache.hits"] = 42;
    msg.metrics.gauges["queue.depth"] = 5;
    obs::Histogram h;
    h.observe(0);
    h.observe(300);
    h.observe(~std::uint64_t{0});
    msg.metrics.histograms["latency.ns"] = h.snapshot();

    const TelemetryMsg back = decodeTelemetry(encodeTelemetry(msg));
    EXPECT_EQ(back.pid, 31337);
    ASSERT_EQ(back.spans.size(), 2u);
    EXPECT_EQ(back.spans[0].t0Ns, 123456789u);
    EXPECT_EQ(back.spans[0].durNs, 987u);
    EXPECT_EQ(back.spans[0].category, obs::SpanCategory::Dist);
    EXPECT_STREQ(back.spans[0].name, "dispatch");
    EXPECT_EQ(back.spans[0].arg0, 7u);
    EXPECT_EQ(back.spans[0].arg1, 48u);
    EXPECT_EQ(back.spans[0].tid, 3u);
    // The span's pid is stamped from the message, not the record.
    EXPECT_EQ(back.spans[0].pid, 31337);
    EXPECT_STREQ(back.spans[1].name, "fifteen-chars..");
    EXPECT_EQ(back.metrics.counters.at("cache.hits"), 42u);
    EXPECT_EQ(back.metrics.gauges.at("queue.depth"), 5u);
    const obs::HistogramSnapshot hist =
        back.metrics.histograms.at("latency.ns");
    EXPECT_EQ(hist.count, 3u);
    EXPECT_EQ(hist.sum, h.snapshot().sum);
    EXPECT_EQ(hist.buckets[0], 1u);
    EXPECT_EQ(hist.buckets[obs::histogramBucketOf(300)], 1u);
    EXPECT_EQ(hist.buckets[64], 1u);

    // An empty telemetry message survives too (heartbeat cadence
    // with nothing new to report).
    TelemetryMsg empty;
    empty.pid = 1;
    const TelemetryMsg empty_back =
        decodeTelemetry(encodeTelemetry(empty));
    EXPECT_EQ(empty_back.pid, 1);
    EXPECT_TRUE(empty_back.spans.empty());
    EXPECT_TRUE(empty_back.metrics.empty());
}

TEST(WireTest, TelemetryDecoderRejectsMalformedPayloads)
{
    TelemetryMsg msg;
    msg.pid = 7;
    obs::SpanRecord span;
    std::strcpy(span.name, "x");
    msg.spans.push_back(span);
    const std::vector<std::uint8_t> good = encodeTelemetry(msg);

    // Truncation never yields a message.
    for (std::size_t keep = 0; keep < good.size(); ++keep) {
        const std::vector<std::uint8_t> cut(good.begin(),
                                            good.begin() + keep);
        EXPECT_THROW(decodeTelemetry(cut), WireError) << keep;
    }
    // Trailing garbage is rejected (expectEnd).
    std::vector<std::uint8_t> extra = good;
    extra.push_back(0);
    EXPECT_THROW(decodeTelemetry(extra), WireError);
    // An implausible span count is rejected before allocation: bytes
    // 4..7 hold the LE span count.
    std::vector<std::uint8_t> huge = good;
    huge[4] = huge[5] = huge[6] = huge[7] = 0xFF;
    EXPECT_THROW(decodeTelemetry(huge), WireError);
    // An unknown span category is rejected. The category byte sits
    // right after pid (i32) + count (u32) + t0 (u64) + dur (u64).
    std::vector<std::uint8_t> badcat = good;
    badcat[4 + 4 + 8 + 8] = 0xEE;
    EXPECT_THROW(decodeTelemetry(badcat), WireError);
}

TEST(WireTest, MetricsRequestAndResponseRoundTrip)
{
    MetricsRequestMsg req;
    req.tag = 0xDEADBEEFCAFEF00Dull;
    EXPECT_EQ(decodeMetricsRequest(encodeMetricsRequest(req)).tag,
              req.tag);

    MetricsResponseMsg resp;
    resp.tag = 99;
    resp.text = "# TYPE oscar_serve_requests_total counter\n"
                "oscar_serve_requests_total 12\n";
    const MetricsResponseMsg back =
        decodeMetricsResponse(encodeMetricsResponse(resp));
    EXPECT_EQ(back.tag, 99u);
    EXPECT_EQ(back.text, resp.text);

    std::vector<std::uint8_t> extra = encodeMetricsRequest(req);
    extra.push_back(0);
    EXPECT_THROW(decodeMetricsRequest(extra), WireError);
}

TEST(WireTest, HelloAuthTagRoundTripAndKeying)
{
    HelloMsg msg;
    msg.pid = 4321;
    msg.isa = kernels::KernelIsa::Avx2;
    msg.threads = 8;
    msg.authTag = helloAuthTag("fleet-secret", 0xDEADBEEFull, msg);
    EXPECT_NE(msg.authTag, 0u);

    WireWriter w;
    encodeHello(w, msg);
    const HelloMsg back = decodeHello(w.bytes());
    EXPECT_EQ(back.authTag, msg.authTag);

    // The tag keys on the secret, the nonce, and every Hello field,
    // so a replay under a different challenge (or a different fleet)
    // never verifies.
    EXPECT_EQ(helloAuthTag("fleet-secret", 0xDEADBEEFull, msg),
              msg.authTag);
    EXPECT_NE(helloAuthTag("other-secret", 0xDEADBEEFull, msg),
              msg.authTag);
    EXPECT_NE(helloAuthTag("fleet-secret", 0xDEADBEEEull, msg),
              msg.authTag);
    HelloMsg tweaked = msg;
    tweaked.threads = 9;
    EXPECT_NE(helloAuthTag("fleet-secret", 0xDEADBEEFull, tweaked),
              msg.authTag);
}

TEST(WireTest, HelloWithoutAuthTagDecodesAsUntagged)
{
    // A v3-shaped Hello body ends after the capacity field; it must
    // decode with authTag 0 (socketpair workers never tag), not fail.
    WireWriter w;
    w.i32(555);
    w.u16(kWireVersion);
    w.u8(0); // scalar ISA
    w.u16(4);
    const HelloMsg back = decodeHello(w.bytes());
    EXPECT_EQ(back.pid, 555);
    EXPECT_EQ(back.threads, 4);
    EXPECT_EQ(back.authTag, 0u);
}

// ------------------------------------------------- compressed framing

/** A frame whose payload the byte-plane/PackBits codec shrinks. */
std::vector<std::uint8_t>
compressibleFrame(std::vector<std::uint8_t>* payload_out = nullptr)
{
    // A realistic compressible payload: a Task full of repeated point
    // coordinates (f64s with long runs of equal bytes).
    TaskMsg task;
    task.taskId = 11;
    task.costId = 22;
    task.baseOrdinal = 33;
    for (int i = 0; i < 32; ++i)
        task.points.push_back({0.5, 0.5, 0.25, 0.25});
    const std::vector<std::uint8_t> payload = encodeTask(task);
    if (payload_out)
        *payload_out = payload;
    return encodeFrame(FrameType::Task, payload);
}

TEST(WireTest, CompressedFrameShrinksAndRoundTrips)
{
    std::vector<std::uint8_t> payload;
    const std::vector<std::uint8_t> bytes = compressibleFrame(&payload);

    // Smaller on the wire than raw framing, and flagged as such.
    EXPECT_LT(bytes.size(), kFrameHeaderSize + payload.size() + 4);
    EXPECT_NE(bytes[24], 0u); // codec byte: not Raw

    FrameDecoder decoder;
    decoder.feed(bytes.data(), bytes.size());
    const std::optional<Frame> frame = decoder.next();
    ASSERT_TRUE(frame.has_value());
    EXPECT_EQ(frame->type, FrameType::Task);
    EXPECT_EQ(frame->payload, payload); // decompression is bit-exact
    EXPECT_EQ(frame->wireBytes, bytes.size());

    const TaskMsg back = decodeTask(frame->payload);
    EXPECT_EQ(back.points.size(), 32u);
    EXPECT_EQ(back.points[7], (std::vector<double>{0.5, 0.5, 0.25,
                                                   0.25}));
}

TEST(WireTest, CompressedFrameEveryByteFlipIsRejected)
{
    // Flipping ANY bit of a compressed frame -- header, codec byte,
    // stored payload, or CRC trailer -- must never yield a valid
    // frame: either the decoder throws, or it (safely) waits for more
    // bytes that will never arrive (a length-field flip).
    const std::vector<std::uint8_t> bytes = compressibleFrame();
    for (std::size_t i = 0; i < bytes.size(); ++i) {
        std::vector<std::uint8_t> bad = bytes;
        bad[i] ^= 0x01;
        FrameDecoder decoder;
        decoder.feed(bad.data(), bad.size());
        bool yielded = false;
        try {
            yielded = decoder.next().has_value();
        } catch (const WireError&) {
            // rejected loudly: fine
        }
        EXPECT_FALSE(yielded) << "flipped byte " << i;
    }
}

TEST(WireTest, CompressedFrameEveryTruncationIsRejected)
{
    const std::vector<std::uint8_t> bytes = compressibleFrame();
    for (std::size_t len = 0; len < bytes.size(); ++len) {
        FrameDecoder decoder;
        decoder.feed(bytes.data(), len);
        std::optional<Frame> frame;
        EXPECT_NO_THROW(frame = decoder.next()) << "prefix " << len;
        EXPECT_FALSE(frame.has_value()) << "prefix " << len;
    }
}

TEST(WireTest, IncompressiblePayloadStaysRaw)
{
    // High-entropy payloads must ride unchanged (codec byte 0) with
    // identical stored and raw lengths -- compression is smallest-of,
    // never an expansion.
    Rng rng(17);
    std::vector<std::uint8_t> payload(256);
    for (std::uint8_t& b : payload)
        b = static_cast<std::uint8_t>(rng.uniformInt(256));
    const std::vector<std::uint8_t> bytes =
        encodeFrame(FrameType::Request, payload);
    EXPECT_EQ(bytes.size(), kFrameHeaderSize + payload.size() + 4);
    EXPECT_EQ(bytes[24], 0u); // Raw
    FrameDecoder decoder;
    decoder.feed(bytes.data(), bytes.size());
    const std::optional<Frame> frame = decoder.next();
    ASSERT_TRUE(frame.has_value());
    EXPECT_EQ(frame->payload, payload);
    EXPECT_EQ(frame->wireBytes, bytes.size());
}

} // namespace
} // namespace dist
} // namespace oscar
