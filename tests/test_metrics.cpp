/**
 * @file
 * Tests for landscape metrics (NRMSE, D2, VoG, variance) and
 * frequency-domain sparsity analysis.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "src/common/rng.h"
#include "src/landscape/metrics.h"
#include "src/landscape/sparsity.h"

namespace oscar {
namespace {

NdArray
smoothLandscape(std::size_t nr, std::size_t nc)
{
    NdArray a({nr, nc});
    for (std::size_t r = 0; r < nr; ++r) {
        for (std::size_t c = 0; c < nc; ++c)
            a[r * nc + c] = std::sin(0.2 * r) * std::cos(0.15 * c);
    }
    return a;
}

TEST(Nrmse, ZeroForIdenticalLandscapes)
{
    const NdArray a = smoothLandscape(10, 12);
    EXPECT_DOUBLE_EQ(nrmse(a, a), 0.0);
}

TEST(Nrmse, ScaleInvariance)
{
    // NRMSE(k*x, k*y) == NRMSE(x, y): both RMSE and IQR scale by k.
    const NdArray truth = smoothLandscape(16, 16);
    NdArray recon = truth;
    Rng rng(1);
    for (std::size_t i = 0; i < recon.size(); ++i)
        recon[i] += rng.normal(0.0, 0.05);

    NdArray truth_scaled = truth;
    truth_scaled *= 7.0;
    NdArray recon_scaled = recon;
    recon_scaled *= 7.0;
    EXPECT_NEAR(nrmse(truth, recon),
                nrmse(truth_scaled, recon_scaled), 1e-12);
}

TEST(Nrmse, MatchesHandComputedValue)
{
    NdArray truth({1, 4}, {0, 1, 2, 3});
    NdArray recon({1, 4}, {0, 1, 2, 5});
    // rmse = sqrt(4/4) = 1; iqr(0,1,2,3) = 2.25 - 0.75 = 1.5.
    EXPECT_NEAR(nrmse(truth, recon), 1.0 / 1.5, 1e-12);
}

TEST(Nrmse, ThrowsOnDegenerateTruth)
{
    NdArray truth({1, 4}, {1, 1, 1, 1});
    NdArray recon({1, 4}, {1, 1, 1, 2});
    EXPECT_THROW(nrmse(truth, recon), std::invalid_argument);
}

TEST(SecondDerivative, ZeroForLinearRamp)
{
    NdArray a({6, 6});
    for (std::size_t r = 0; r < 6; ++r) {
        for (std::size_t c = 0; c < 6; ++c)
            a[r * 6 + c] = 2.0 * r - 3.0 * c;
    }
    EXPECT_NEAR(secondDerivativeMetric(a), 0.0, 1e-12);
}

TEST(SecondDerivative, DetectsJaggedness)
{
    // Alternating spikes have huge second differences.
    NdArray smooth = smoothLandscape(12, 12);
    NdArray jagged = smooth;
    for (std::size_t i = 0; i < jagged.size(); ++i)
        jagged[i] += (i % 2 == 0) ? 0.5 : -0.5;
    EXPECT_GT(secondDerivativeMetric(jagged),
              10.0 * secondDerivativeMetric(smooth));
}

TEST(VarianceOfGradients, ZeroForLinearRamp)
{
    NdArray a({5, 5});
    for (std::size_t r = 0; r < 5; ++r) {
        for (std::size_t c = 0; c < 5; ++c)
            a[r * 5 + c] = 1.5 * r + 0.5 * c;
    }
    EXPECT_NEAR(varianceOfGradients(a), 0.0, 1e-12);
}

TEST(VarianceOfGradients, FlatLandscapeIsSmall)
{
    // Barren-plateau probe: a nearly flat landscape has small VoG.
    NdArray flat({10, 10});
    flat.fill(2.0);
    NdArray wavy = smoothLandscape(10, 10);
    EXPECT_LT(varianceOfGradients(flat), varianceOfGradients(wavy));
}

TEST(LandscapeVariance, MatchesStats)
{
    NdArray a({2, 2}, {1, 2, 3, 4});
    EXPECT_DOUBLE_EQ(landscapeVariance(a), 1.25);
}

TEST(Sparsity, SmoothLandscapeIsSparse)
{
    const NdArray a = smoothLandscape(32, 32);
    // A smooth product signal needs very few DCT coefficients.
    EXPECT_LT(dctSparsityFraction(a, 0.99), 0.05);
}

TEST(Sparsity, WhiteNoiseIsNotSparse)
{
    Rng rng(3);
    NdArray noise({32, 32});
    for (std::size_t i = 0; i < noise.size(); ++i)
        noise[i] = rng.normal();
    // 99% of the energy of white noise needs most coefficients.
    EXPECT_GT(dctSparsityFraction(noise, 0.99), 0.5);
}

TEST(Sparsity, CoefficientCountMonotonicInShare)
{
    const NdArray a = smoothLandscape(24, 24);
    EXPECT_LE(dctCoefficientsForEnergy(a, 0.90),
              dctCoefficientsForEnergy(a, 0.99));
    EXPECT_LE(dctCoefficientsForEnergy(a, 0.99),
              dctCoefficientsForEnergy(a, 0.9999));
}

TEST(Sparsity, KeepTopKReconstructsSparseSignal)
{
    const NdArray a = smoothLandscape(20, 20);
    const std::size_t k = dctCoefficientsForEnergy(a, 0.9999);
    const NdArray approx = keepTopKDct(a, k);
    EXPECT_LT(nrmse(a, approx), 0.05);
}

TEST(Sparsity, KeepAllIsExact)
{
    const NdArray a = smoothLandscape(8, 8);
    const NdArray approx = keepTopKDct(a, a.size());
    for (std::size_t i = 0; i < a.size(); ++i)
        EXPECT_NEAR(approx[i], a[i], 1e-10);
}

TEST(Sparsity, FourDLandscapeFoldsForAnalysis)
{
    NdArray a({4, 4, 6, 6});
    for (std::size_t i = 0; i < a.size(); ++i) {
        const auto idx = a.unravel(i);
        a[i] = std::cos(0.3 * idx[0]) + std::cos(0.2 * (idx[2] + idx[3]));
    }
    EXPECT_LT(dctSparsityFraction(a, 0.99), 0.2);
}

} // namespace
} // namespace oscar
