/**
 * @file
 * Persistent landscape store tests:
 *
 *  - PackBits codec round trips (empty, runs, literals, run-length
 *    boundaries) and rejection of every malformed encoding;
 *  - archive containers: multi-stream round trips in memory and on
 *    disk, smallest-codec selection, atomic publication;
 *  - the robustness contract: a container that is truncated at ANY
 *    length, bit-flipped at ANY byte, version-stale, or half-written
 *    loads as a clean miss -- never a crash, never a wrong value;
 *  - LandscapeStore put/load bit-identity (doubles compared as
 *    IEEE-754 bit patterns, including NaN and -0.0), key validation
 *    of a renamed container, LRU eviction under the byte budget, and
 *    the stats counters;
 *  - strict OSCAR_STORE_DIR / OSCAR_STORE_BUDGET_MB parsing in the
 *    resolveThreadsPerWorker style: malformed settings throw and list
 *    the valid form instead of silently disabling persistence.
 */

#include <gtest/gtest.h>

#include <stdlib.h>

#include <bit>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <optional>
#include <string>
#include <type_traits>
#include <vector>

#include "src/common/packbits.h"
#include "src/common/rng.h"
#include "src/store/archive.h"
#include "src/store/landscape_store.h"

namespace oscar {
namespace store {
namespace {

namespace fs = std::filesystem;

/** A unique scratch directory, removed on scope exit. */
struct TempDir
{
    TempDir()
    {
        char tmpl[] = "/tmp/oscar-test-store-XXXXXX";
        if (!::mkdtemp(tmpl))
            throw std::runtime_error("mkdtemp failed");
        path = tmpl;
    }

    ~TempDir()
    {
        std::error_code ec;
        fs::remove_all(path, ec);
    }

    std::string path;
};

/** Set (or clear, value == nullptr) an env var, restoring on exit. */
struct ScopedEnv
{
    ScopedEnv(const char* name_in, const char* value) : name(name_in)
    {
        const char* old = ::getenv(name);
        hadOld = old != nullptr;
        if (hadOld)
            oldValue = old;
        if (value)
            ::setenv(name, value, 1);
        else
            ::unsetenv(name);
    }

    ~ScopedEnv()
    {
        if (hadOld)
            ::setenv(name, oldValue.c_str(), 1);
        else
            ::unsetenv(name);
    }

    const char* name;
    bool hadOld = false;
    std::string oldValue;
};

std::vector<std::uint8_t>
randomBytes(std::size_t n, std::uint64_t seed)
{
    Rng rng(seed);
    std::vector<std::uint8_t> bytes(n);
    for (std::uint8_t& b : bytes)
        b = static_cast<std::uint8_t>(rng.uniformInt(256));
    return bytes;
}

void
writeFile(const std::string& path, const std::vector<std::uint8_t>& bytes)
{
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(reinterpret_cast<const char*>(bytes.data()),
              static_cast<std::streamsize>(bytes.size()));
    ASSERT_TRUE(out.good()) << path;
}

std::vector<std::uint8_t>
readFile(const std::string& path)
{
    std::ifstream in(path, std::ios::binary);
    return std::vector<std::uint8_t>(std::istreambuf_iterator<char>(in),
                                     std::istreambuf_iterator<char>());
}

void
expectBitIdentical(const std::vector<double>& got,
                   const std::vector<double>& want)
{
    ASSERT_EQ(got.size(), want.size());
    for (std::size_t i = 0; i < got.size(); ++i)
        EXPECT_EQ(std::bit_cast<std::uint64_t>(got[i]),
                  std::bit_cast<std::uint64_t>(want[i]))
            << "value " << i;
}

/** A small but fully-populated entry (container ~1 KB). */
StoredLandscape
sampleEntry(std::uint64_t seed = 11)
{
    Rng rng(seed);
    StoredLandscape entry;
    entry.grid = GridSpec({{-0.785, 0.785, 4}, {-1.571, 1.571, 6}});
    for (std::size_t i = 0; i < 5; ++i) {
        entry.sampleIndices.push_back(rng.uniformInt(24));
        entry.sampleValues.push_back(rng.uniform(-4.0, 4.0));
    }
    entry.reconstructed.resize(entry.grid.numPoints());
    for (double& v : entry.reconstructed)
        v = rng.uniform(-4.0, 4.0);
    // The bit-identity contract covers the values doubles don't
    // round-trip through operator==: NaN and negative zero.
    entry.reconstructed[0] = std::bit_cast<double>(
        std::uint64_t{0x7FF8DEADBEEF0001ull}); // a payload-carrying NaN
    entry.reconstructed[1] = -0.0;
    entry.kernel.cacheHits = 3;
    entry.kernel.cacheLookups = 5;
    entry.samplingFraction = 0.2;
    entry.sampleSeed = seed;
    entry.queriesUsed = 5;
    entry.querySpeedup = 4.8;
    return entry;
}

StoreKey
keyFor(const StoredLandscape& entry, std::uint64_t cost_id = 0x1234)
{
    StoreKey key;
    key.costId = cost_id;
    key.gridHash = gridHash(entry.grid);
    key.cfgHash = configHash(entry.samplingFraction, entry.sampleSeed);
    return key;
}

void
expectEntriesEqual(const StoredLandscape& got, const StoredLandscape& want)
{
    ASSERT_EQ(got.grid.rank(), want.grid.rank());
    for (std::size_t d = 0; d < got.grid.rank(); ++d) {
        EXPECT_EQ(got.grid.axis(d).lo, want.grid.axis(d).lo);
        EXPECT_EQ(got.grid.axis(d).hi, want.grid.axis(d).hi);
        EXPECT_EQ(got.grid.axis(d).count, want.grid.axis(d).count);
    }
    EXPECT_EQ(got.sampleIndices, want.sampleIndices);
    expectBitIdentical(got.sampleValues, want.sampleValues);
    expectBitIdentical(got.reconstructed, want.reconstructed);
    EXPECT_EQ(got.kernel.cacheHits, want.kernel.cacheHits);
    EXPECT_EQ(got.kernel.cacheLookups, want.kernel.cacheLookups);
    EXPECT_EQ(std::bit_cast<std::uint64_t>(got.samplingFraction),
              std::bit_cast<std::uint64_t>(want.samplingFraction));
    EXPECT_EQ(got.sampleSeed, want.sampleSeed);
    EXPECT_EQ(got.queriesUsed, want.queriesUsed);
    EXPECT_EQ(std::bit_cast<std::uint64_t>(got.querySpeedup),
              std::bit_cast<std::uint64_t>(want.querySpeedup));
}

// ---------------------------------------------------------------------
// PackBits codec
// ---------------------------------------------------------------------

TEST(PackBitsTest, RoundTripsRepresentativeInputs)
{
    const std::vector<std::vector<std::uint8_t>> cases = {
        {},                                    // empty
        {42},                                  // single byte
        {1, 2, 3, 4, 5},                       // all literals
        std::vector<std::uint8_t>(3, 7),       // minimal run
        std::vector<std::uint8_t>(128, 9),     // one max-length run
        std::vector<std::uint8_t>(129, 9),     // run + remainder
        std::vector<std::uint8_t>(1000, 0),    // long run
        randomBytes(1000, 3),                  // incompressible
    };
    for (const auto& raw : cases) {
        const std::vector<std::uint8_t> packed = packBits(raw);
        EXPECT_EQ(unpackBits(packed, raw.size()), raw)
            << "input size " << raw.size();
    }
}

TEST(PackBitsTest, CompressesRuns)
{
    const std::vector<std::uint8_t> raw(4096, 0xAB);
    const std::vector<std::uint8_t> packed = packBits(raw);
    EXPECT_LT(packed.size(), raw.size() / 16);
}

TEST(PackBitsTest, RejectsMalformedEncodings)
{
    // The reserved control byte 128 is never produced and never
    // accepted.
    EXPECT_THROW(unpackBits(std::vector<std::uint8_t>{128, 1}, 1),
                 ArchiveError);
    // Literal control promising more bytes than follow.
    EXPECT_THROW(unpackBits(std::vector<std::uint8_t>{4, 1, 2}, 5),
                 ArchiveError);
    // Repeat control with no value byte.
    EXPECT_THROW(unpackBits(std::vector<std::uint8_t>{255}, 2),
                 ArchiveError);
    // Decoded size must match exactly -- short and long.
    const std::vector<std::uint8_t> packed =
        packBits(std::vector<std::uint8_t>(10, 5));
    EXPECT_THROW(unpackBits(packed, 9), ArchiveError);
    EXPECT_THROW(unpackBits(packed, 11), ArchiveError);
}

TEST(PackBitsTest, StoreCodecIsTheSharedCodec)
{
    // The store delegates to src/common/packbits.h (the codec the
    // distributed wire layer also uses for compressed framing). The
    // encodings must be byte-for-byte identical -- a divergence would
    // silently fork the on-disk and on-wire formats.
    const std::vector<std::vector<std::uint8_t>> cases = {
        {},
        {42},
        std::vector<std::uint8_t>(64, 7),
        randomBytes(512, 9),
        [] {
            std::vector<std::uint8_t> mixed(256, 0);
            for (std::size_t i = 64; i < 128; ++i)
                mixed[i] = static_cast<std::uint8_t>(i);
            return mixed;
        }(),
    };
    for (const auto& raw : cases) {
        const std::vector<std::uint8_t> via_store = packBits(raw);
        const std::vector<std::uint8_t> via_common =
            ::oscar::packbits::pack(raw);
        EXPECT_EQ(via_store, via_common) << "input size " << raw.size();
        EXPECT_EQ(unpackBits(via_common, raw.size()), raw);
        EXPECT_EQ(::oscar::packbits::unpack(via_store, raw.size()), raw);
    }
    // StreamCodec values ARE the shared codec values (on-disk bytes
    // and on-wire codec bytes agree by construction).
    static_assert(std::is_same_v<StreamCodec, ::oscar::packbits::Codec>);
    // pickSmallest never expands, and its choice decodes back exactly.
    const std::vector<std::uint8_t> zeros(1024, 0);
    const ::oscar::packbits::Encoded enc =
        ::oscar::packbits::pickSmallest(zeros);
    ASSERT_NE(enc.codec, ::oscar::packbits::Codec::Raw);
    EXPECT_LT(enc.bytes.size(), zeros.size());
    EXPECT_EQ(::oscar::packbits::decode(
                  static_cast<std::uint8_t>(enc.codec), enc.bytes,
                  zeros.size()),
              zeros);
}

// ---------------------------------------------------------------------
// Archive container
// ---------------------------------------------------------------------

TEST(ArchiveTest, MultiStreamRoundTrip)
{
    ArchiveWriter writer;
    const std::vector<std::uint8_t> a = randomBytes(300, 1);
    const std::vector<std::uint8_t> b(2000, 0); // compressible
    const std::vector<std::uint8_t> empty;
    writer.add("alpha", a);
    writer.add("beta", b);
    writer.add("empty", empty);

    const std::vector<std::uint8_t> bytes = writer.serialize();
    const Archive archive = decodeArchive(bytes);
    ASSERT_EQ(archive.streams.size(), 3u);
    EXPECT_EQ(archive.streams[0].name, "alpha");
    ASSERT_NE(archive.find("alpha"), nullptr);
    EXPECT_EQ(*archive.find("alpha"), a);
    ASSERT_NE(archive.find("beta"), nullptr);
    EXPECT_EQ(*archive.find("beta"), b);
    ASSERT_NE(archive.find("empty"), nullptr);
    EXPECT_TRUE(archive.find("empty")->empty());
    EXPECT_EQ(archive.find("missing"), nullptr);

    // The compressible stream must actually have been compressed: the
    // whole container is far smaller than its raw payload.
    EXPECT_LT(bytes.size(), a.size() + b.size());
}

TEST(ArchiveTest, FileRoundTripIsAtomic)
{
    TempDir dir;
    const std::string path = dir.path + "/container.oscar";

    ArchiveWriter writer;
    writer.add("data", randomBytes(100, 2));
    writer.write(path);

    // The temp file was renamed away; only the container remains.
    std::size_t entries = 0;
    for ([[maybe_unused]] const auto& e : fs::directory_iterator(dir.path))
        entries++;
    EXPECT_EQ(entries, 1u);

    const Archive archive = readArchive(path);
    ASSERT_EQ(archive.streams.size(), 1u);
    EXPECT_EQ(archive.streams[0].bytes, randomBytes(100, 2));
}

TEST(ArchiveTest, EveryTruncationIsRejected)
{
    ArchiveWriter writer;
    writer.add("data", randomBytes(64, 4));
    const std::vector<std::uint8_t> bytes = writer.serialize();

    for (std::size_t len = 0; len < bytes.size(); ++len) {
        EXPECT_THROW(decodeArchive({bytes.data(), len}), ArchiveError)
            << "prefix " << len;
    }
    // Trailing garbage after the footer is also a defect.
    std::vector<std::uint8_t> extra = bytes;
    extra.push_back(0);
    EXPECT_THROW(decodeArchive(extra), ArchiveError);
}

TEST(ArchiveTest, StaleVersionIsRejected)
{
    ArchiveWriter writer;
    writer.add("data", randomBytes(16, 6));
    std::vector<std::uint8_t> bytes = writer.serialize();
    bytes[4] = kArchiveVersion + 1; // version u16 LE at offset 4
    EXPECT_THROW(decodeArchive(bytes), ArchiveError);
    bytes[4] = 0;
    EXPECT_THROW(decodeArchive(bytes), ArchiveError);
}

TEST(ArchiveTest, MissingFileIsRejected)
{
    TempDir dir;
    EXPECT_THROW(readArchive(dir.path + "/absent.oscar"), ArchiveError);
}

// ---------------------------------------------------------------------
// LandscapeStore
// ---------------------------------------------------------------------

TEST(LandscapeStoreTest, PutThenLoadIsBitIdentical)
{
    TempDir dir;
    LandscapeStore store({dir.path + "/store", std::size_t{64} << 20});
    const StoredLandscape entry = sampleEntry();
    const StoreKey key = keyFor(entry);

    EXPECT_FALSE(store.load(key).has_value()); // cold miss
    store.put(key, entry);
    EXPECT_TRUE(fs::exists(store.containerPath(key)));

    const std::optional<StoredLandscape> loaded = store.load(key);
    ASSERT_TRUE(loaded.has_value());
    expectEntriesEqual(*loaded, entry);

    const StoreStats stats = store.stats();
    EXPECT_EQ(stats.hits, 1u);
    EXPECT_EQ(stats.misses, 1u);
    EXPECT_EQ(stats.corruptMisses, 0u);
    EXPECT_EQ(stats.puts, 1u);
    EXPECT_GT(store.totalBytes(), 0u);
}

TEST(LandscapeStoreTest, DistinctKeysAreIndependent)
{
    TempDir dir;
    LandscapeStore store({dir.path + "/store", std::size_t{64} << 20});
    const StoredLandscape entry = sampleEntry();

    // Same bits, three distinct addresses: cost, grid, and sampling
    // config each contribute to the key.
    const StoreKey a = keyFor(entry, 1);
    const StoreKey b = keyFor(entry, 2);
    StoreKey c = keyFor(entry, 1);
    c.cfgHash = configHash(entry.samplingFraction, entry.sampleSeed + 1);

    store.put(a, entry);
    EXPECT_TRUE(store.load(a).has_value());
    EXPECT_FALSE(store.load(b).has_value());
    EXPECT_FALSE(store.load(c).has_value());
}

TEST(LandscapeStoreTest, EveryBitFlipLoadsAsCleanMiss)
{
    TempDir dir;
    LandscapeStore store({dir.path + "/store", std::size_t{64} << 20});
    const StoredLandscape entry = sampleEntry();
    const StoreKey key = keyFor(entry);
    store.put(key, entry);
    const std::string path = store.containerPath(key);
    const std::vector<std::uint8_t> good = readFile(path);
    ASSERT_FALSE(good.empty());

    for (std::size_t i = 0; i < good.size(); ++i) {
        std::vector<std::uint8_t> bad = good;
        bad[i] ^= static_cast<std::uint8_t>(1u << (i % 8));
        writeFile(path, bad);
        std::optional<StoredLandscape> loaded;
        ASSERT_NO_THROW(loaded = store.load(key)) << "byte " << i;
        EXPECT_FALSE(loaded.has_value()) << "byte " << i;
        // The corrupt container was unlinked so the rewrite is clean.
        EXPECT_FALSE(fs::exists(path)) << "byte " << i;
    }
    EXPECT_EQ(store.stats().corruptMisses, good.size());

    // After all that damage, the store still works.
    store.put(key, entry);
    ASSERT_TRUE(store.load(key).has_value());
}

TEST(LandscapeStoreTest, EveryTruncationLoadsAsCleanMiss)
{
    TempDir dir;
    LandscapeStore store({dir.path + "/store", std::size_t{64} << 20});
    const StoredLandscape entry = sampleEntry();
    const StoreKey key = keyFor(entry);
    store.put(key, entry);
    const std::string path = store.containerPath(key);
    const std::vector<std::uint8_t> good = readFile(path);

    for (std::size_t len = 0; len < good.size(); ++len) {
        writeFile(path, {good.begin(), good.begin() +
                                           static_cast<long>(len)});
        std::optional<StoredLandscape> loaded;
        ASSERT_NO_THROW(loaded = store.load(key)) << "prefix " << len;
        EXPECT_FALSE(loaded.has_value()) << "prefix " << len;
    }
}

TEST(LandscapeStoreTest, HalfWrittenTempFileIsIgnored)
{
    TempDir dir;
    LandscapeStore store({dir.path + "/store", std::size_t{64} << 20});
    const StoredLandscape entry = sampleEntry();
    const StoreKey key = keyFor(entry);

    // A crash mid-write leaves `<container>.tmp.<pid>` behind; the
    // final path never existed, so the key is a plain miss and the
    // stray temp file must not disturb put/load/gc.
    ArchiveWriter writer;
    writer.add("partial", randomBytes(50, 8));
    std::vector<std::uint8_t> half = writer.serialize();
    half.resize(half.size() / 2);
    writeFile(store.containerPath(key) + ".tmp.9999", half);

    EXPECT_FALSE(store.load(key).has_value());
    store.put(key, entry);
    ASSERT_TRUE(store.load(key).has_value());
    EXPECT_EQ(store.gc(), 0u);
}

TEST(LandscapeStoreTest, RenamedContainerFailsKeyValidation)
{
    TempDir dir;
    LandscapeStore store({dir.path + "/store", std::size_t{64} << 20});
    const StoredLandscape entry = sampleEntry();
    const StoreKey key = keyFor(entry);
    store.put(key, entry);

    // Move the (internally consistent) container to a key addressing a
    // different sampling config: the content no longer matches the
    // address, so serving it would violate the determinism contract.
    StoreKey wrong = key;
    wrong.cfgHash = configHash(entry.samplingFraction, entry.sampleSeed + 1);
    fs::rename(store.containerPath(key), store.containerPath(wrong));

    EXPECT_FALSE(store.load(wrong).has_value());
    EXPECT_EQ(store.stats().corruptMisses, 1u);
    EXPECT_FALSE(fs::exists(store.containerPath(wrong)));
}

TEST(LandscapeStoreTest, GcEvictsLeastRecentlyUsed)
{
    TempDir dir;

    // Measure one container's size with an unbounded store first.
    std::size_t container_bytes = 0;
    {
        LandscapeStore probe(
            {dir.path + "/probe", std::size_t{64} << 20});
        const StoredLandscape entry = sampleEntry(1);
        probe.put(keyFor(entry, 1), entry);
        container_bytes = probe.totalBytes();
    }
    ASSERT_GT(container_bytes, 0u);

    // Budget for two containers (plus slack), then store three.
    LandscapeStore store(
        {dir.path + "/store", 2 * container_bytes + container_bytes / 2});
    const StoredLandscape a = sampleEntry(1);
    const StoredLandscape b = sampleEntry(2);
    const StoredLandscape c = sampleEntry(3);
    store.put(keyFor(a, 1), a);
    store.put(keyFor(b, 2), b);
    // Spread LRU recency out explicitly: mtime ties would make the
    // eviction order depend on filesystem timestamp granularity.
    using namespace std::chrono_literals;
    fs::last_write_time(store.containerPath(keyFor(a, 1)),
                        fs::file_time_type::clock::now() - 2h);
    fs::last_write_time(store.containerPath(keyFor(b, 2)),
                        fs::file_time_type::clock::now() - 1h);
    store.put(keyFor(c, 3), c); // runs gc() past the budget

    EXPECT_FALSE(fs::exists(store.containerPath(keyFor(a, 1))));
    EXPECT_TRUE(fs::exists(store.containerPath(keyFor(b, 2))));
    EXPECT_TRUE(fs::exists(store.containerPath(keyFor(c, 3))));
    EXPECT_EQ(store.stats().containersRemoved, 1u);
    EXPECT_LE(store.totalBytes(), store.budgetBytes());

    // A hit refreshes recency: touch b, add d, and now c (stale) goes.
    fs::last_write_time(store.containerPath(keyFor(c, 3)),
                        fs::file_time_type::clock::now() - 1h);
    ASSERT_TRUE(store.load(keyFor(b, 2)).has_value());
    const StoredLandscape d = sampleEntry(4);
    store.put(keyFor(d, 4), d);
    EXPECT_TRUE(fs::exists(store.containerPath(keyFor(b, 2))));
    EXPECT_FALSE(fs::exists(store.containerPath(keyFor(c, 3))));
}

// ---------------------------------------------------------------------
// Grid canonicalization
// ---------------------------------------------------------------------

TEST(LandscapeStoreTest, GridSpecRoundTripsAndHashesCanonically)
{
    const GridSpec grid({{-0.785, 0.785, 50}, {-1.571, 1.571, 100}});
    dist::WireWriter w;
    encodeGridSpec(w, grid);
    std::vector<std::uint8_t> bytes = w.take();
    dist::WireReader r(bytes);
    const GridSpec decoded = decodeGridSpec(r);
    ASSERT_EQ(decoded.rank(), grid.rank());
    EXPECT_EQ(decoded.numPoints(), grid.numPoints());
    EXPECT_EQ(gridHash(decoded), gridHash(grid));

    // Any axis change moves the hash.
    EXPECT_NE(gridHash(grid),
              gridHash(GridSpec({{-0.785, 0.785, 50},
                                 {-1.571, 1.571, 101}})));
    EXPECT_NE(gridHash(grid),
              gridHash(GridSpec({{-0.786, 0.785, 50},
                                 {-1.571, 1.571, 100}})));

    // Sampling config: fraction and seed both address.
    EXPECT_NE(configHash(0.1, 42), configHash(0.1, 43));
    EXPECT_NE(configHash(0.1, 42), configHash(0.2, 42));

    // A rank-0 grid encoding is rejected.
    dist::WireWriter bad;
    bad.u32(0);
    std::vector<std::uint8_t> bad_bytes = bad.take();
    dist::WireReader bad_reader(bad_bytes);
    EXPECT_THROW(decodeGridSpec(bad_reader), dist::WireError);
}

// ---------------------------------------------------------------------
// Environment resolvers
// ---------------------------------------------------------------------

TEST(LandscapeStoreTest, ResolveStoreDir)
{
    {
        ScopedEnv env("OSCAR_STORE_DIR", nullptr);
        EXPECT_EQ(resolveStoreDir(""), "");          // store disabled
        EXPECT_EQ(resolveStoreDir("/a/b"), "/a/b");  // explicit config
    }
    {
        ScopedEnv env("OSCAR_STORE_DIR", "/from/env");
        EXPECT_EQ(resolveStoreDir(""), "/from/env");
        EXPECT_EQ(resolveStoreDir("/explicit"), "/explicit"); // wins
    }
    {
        // Set-but-empty is malformed, not "disabled": fail loudly.
        ScopedEnv env("OSCAR_STORE_DIR", "");
        EXPECT_THROW(resolveStoreDir(""), std::runtime_error);
    }
}

TEST(LandscapeStoreTest, ResolveStoreBudgetBytes)
{
    {
        ScopedEnv env("OSCAR_STORE_BUDGET_MB", nullptr);
        EXPECT_EQ(resolveStoreBudgetBytes(-1), std::size_t{1024} << 20);
        EXPECT_EQ(resolveStoreBudgetBytes(7), std::size_t{7} << 20);
    }
    {
        ScopedEnv env("OSCAR_STORE_BUDGET_MB", "256");
        EXPECT_EQ(resolveStoreBudgetBytes(-1), std::size_t{256} << 20);
        EXPECT_EQ(resolveStoreBudgetBytes(2), std::size_t{2} << 20);
    }
    for (const char* bad : {"", "abc", "12abc", "0", "-3", "1048577"}) {
        ScopedEnv env("OSCAR_STORE_BUDGET_MB", bad);
        EXPECT_THROW(resolveStoreBudgetBytes(-1), std::runtime_error)
            << "OSCAR_STORE_BUDGET_MB=" << bad;
    }
}

} // namespace
} // namespace store
} // namespace oscar
