/**
 * @file
 * Tests for the deterministic RNG substrate.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "src/common/rng.h"

namespace oscar {
namespace {

TEST(Rng, Deterministic)
{
    Rng a(123), b(123);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiffer)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 64; ++i)
        same += (a() == b());
    EXPECT_LT(same, 2);
}

TEST(Rng, UniformInUnitInterval)
{
    Rng rng(7);
    for (int i = 0; i < 10000; ++i) {
        const double u = rng.uniform();
        EXPECT_GE(u, 0.0);
        EXPECT_LT(u, 1.0);
    }
}

TEST(Rng, UniformMeanApproximatelyHalf)
{
    Rng rng(11);
    double acc = 0.0;
    const int n = 100000;
    for (int i = 0; i < n; ++i)
        acc += rng.uniform();
    EXPECT_NEAR(acc / n, 0.5, 0.01);
}

TEST(Rng, UniformIntRange)
{
    Rng rng(3);
    std::set<std::uint64_t> seen;
    for (int i = 0; i < 1000; ++i) {
        const auto v = rng.uniformInt(10);
        EXPECT_LT(v, 10u);
        seen.insert(v);
    }
    EXPECT_EQ(seen.size(), 10u); // all values hit
}

TEST(Rng, NormalMomentsMatch)
{
    Rng rng(5);
    const int n = 200000;
    double sum = 0.0, sum2 = 0.0;
    for (int i = 0; i < n; ++i) {
        const double x = rng.normal();
        sum += x;
        sum2 += x * x;
    }
    EXPECT_NEAR(sum / n, 0.0, 0.02);
    EXPECT_NEAR(sum2 / n, 1.0, 0.03);
}

TEST(Rng, NormalScaleAndShift)
{
    Rng rng(6);
    const int n = 100000;
    double sum = 0.0;
    for (int i = 0; i < n; ++i)
        sum += rng.normal(3.0, 0.5);
    EXPECT_NEAR(sum / n, 3.0, 0.02);
}

TEST(Rng, BernoulliFrequency)
{
    Rng rng(8);
    int hits = 0;
    const int n = 100000;
    for (int i = 0; i < n; ++i)
        hits += rng.bernoulli(0.3);
    EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(Rng, SampleWithoutReplacementIsDistinct)
{
    Rng rng(9);
    const auto sample = rng.sampleWithoutReplacement(100, 40);
    EXPECT_EQ(sample.size(), 40u);
    std::set<std::size_t> uniq(sample.begin(), sample.end());
    EXPECT_EQ(uniq.size(), 40u);
    for (std::size_t v : sample)
        EXPECT_LT(v, 100u);
}

TEST(Rng, SampleWithoutReplacementFullSet)
{
    Rng rng(10);
    auto sample = rng.sampleWithoutReplacement(16, 16);
    std::sort(sample.begin(), sample.end());
    for (std::size_t i = 0; i < 16; ++i)
        EXPECT_EQ(sample[i], i);
}

TEST(Rng, SampleWithoutReplacementUniform)
{
    // Each of n items should appear in a k-subset with probability k/n.
    Rng rng(12);
    const int trials = 20000;
    std::vector<int> counts(10, 0);
    for (int t = 0; t < trials; ++t) {
        for (std::size_t idx : rng.sampleWithoutReplacement(10, 3))
            ++counts[idx];
    }
    for (int c : counts)
        EXPECT_NEAR(static_cast<double>(c) / trials, 0.3, 0.02);
}

TEST(Rng, SplitStreamsIndependent)
{
    Rng parent(42);
    Rng child = parent.split();
    int same = 0;
    for (int i = 0; i < 64; ++i)
        same += (parent() == child());
    EXPECT_LT(same, 2);
}

TEST(Rng, LognormalPositive)
{
    Rng rng(13);
    for (int i = 0; i < 1000; ++i)
        EXPECT_GT(rng.lognormal(0.0, 1.5), 0.0);
}

TEST(Rng, ShuffleIsPermutation)
{
    Rng rng(14);
    std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
    auto w = v;
    rng.shuffle(w);
    std::sort(w.begin(), w.end());
    EXPECT_EQ(v, w);
}

} // namespace
} // namespace oscar
