/**
 * @file
 * Tests for the state-vector simulator: known states, gate algebra
 * identities, and norm-preservation properties.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "src/common/rng.h"
#include "src/quantum/statevector.h"

namespace oscar {
namespace {

constexpr double kTol = 1e-12;

TEST(Statevector, InitialState)
{
    Statevector sv(3);
    EXPECT_EQ(sv.dim(), 8u);
    EXPECT_NEAR(std::abs(sv.amp(0) - cplx(1.0, 0.0)), 0.0, kTol);
    EXPECT_NEAR(sv.norm2(), 1.0, kTol);
}

TEST(Statevector, HadamardCreatesSuperposition)
{
    Statevector sv(1);
    sv.applyGate(Gate::h(0));
    const double inv_sqrt2 = 1.0 / std::sqrt(2.0);
    EXPECT_NEAR(sv.amp(0).real(), inv_sqrt2, kTol);
    EXPECT_NEAR(sv.amp(1).real(), inv_sqrt2, kTol);
}

TEST(Statevector, BellState)
{
    Statevector sv(2);
    sv.applyGate(Gate::h(0));
    sv.applyGate(Gate::cx(0, 1));
    const double inv_sqrt2 = 1.0 / std::sqrt(2.0);
    EXPECT_NEAR(std::abs(sv.amp(0)), inv_sqrt2, kTol);
    EXPECT_NEAR(std::abs(sv.amp(3)), inv_sqrt2, kTol);
    EXPECT_NEAR(std::abs(sv.amp(1)), 0.0, kTol);
    EXPECT_NEAR(std::abs(sv.amp(2)), 0.0, kTol);
    // <Z0 Z1> = 1 for a Bell state.
    EXPECT_NEAR(sv.expectation(PauliString::fromLabel("ZZ")), 1.0, kTol);
    // <X0 X1> = 1 as well.
    EXPECT_NEAR(sv.expectation(PauliString::fromLabel("XX")), 1.0, kTol);
}

TEST(Statevector, XFlipsBit)
{
    Statevector sv(2);
    sv.applyGate(Gate::x(1));
    EXPECT_NEAR(std::abs(sv.amp(2)), 1.0, kTol); // |10> little-endian q1
}

TEST(Statevector, HZHEqualsX)
{
    // Gate identity HZH = X, checked on a random-ish state.
    Statevector a(1), b(1);
    a.applyGate(Gate::ry(0, 0.7));
    b.applyGate(Gate::ry(0, 0.7));

    a.applyGate(Gate::h(0));
    a.applyGate(Gate::z(0));
    a.applyGate(Gate::h(0));
    b.applyGate(Gate::x(0));
    EXPECT_NEAR(std::abs(a.innerProduct(b)), 1.0, kTol);
}

TEST(Statevector, SSdgIsIdentity)
{
    Statevector a(1);
    a.applyGate(Gate::h(0));
    a.applyGate(Gate::s(0));
    a.applyGate(Gate::sdg(0));
    Statevector b(1);
    b.applyGate(Gate::h(0));
    EXPECT_NEAR(std::abs(a.innerProduct(b)), 1.0, kTol);
}

TEST(Statevector, RzzDiagonalPhases)
{
    // RZZ(theta) on |11> applies exp(-i theta/2).
    Statevector sv(2);
    sv.applyGate(Gate::x(0));
    sv.applyGate(Gate::x(1));
    sv.applyGate(Gate::rzz(0, 1, 0.8));
    const cplx expected = std::exp(cplx(0.0, -0.4));
    EXPECT_NEAR(std::abs(sv.amp(3) - expected), 0.0, kTol);
}

TEST(Statevector, RzzEqualsCxRzCx)
{
    // RZZ(t) = CX(0,1) RZ_1(t) CX(0,1).
    Statevector a(2), b(2);
    a.applyGate(Gate::h(0));
    a.applyGate(Gate::h(1));
    b.applyGate(Gate::h(0));
    b.applyGate(Gate::h(1));

    a.applyGate(Gate::rzz(0, 1, 1.3));
    b.applyGate(Gate::cx(0, 1));
    b.applyGate(Gate::rz(1, 1.3));
    b.applyGate(Gate::cx(0, 1));
    EXPECT_NEAR(std::abs(a.innerProduct(b)), 1.0, kTol);
}

TEST(Statevector, SwapExchangesQubits)
{
    Statevector sv(2);
    sv.applyGate(Gate::x(0)); // |01> (q0 = 1)
    sv.applyGate(Gate::swap(0, 1));
    EXPECT_NEAR(std::abs(sv.amp(2)), 1.0, kTol); // q1 = 1
}

TEST(Statevector, CzPhase)
{
    Statevector sv(2);
    sv.applyGate(Gate::h(0));
    sv.applyGate(Gate::h(1));
    sv.applyGate(Gate::cz(0, 1));
    EXPECT_NEAR(sv.amp(3).real(), -0.5, kTol);
    EXPECT_NEAR(sv.amp(0).real(), 0.5, kTol);
}

TEST(Statevector, ExpectationXOnPlusState)
{
    Statevector sv(1);
    sv.applyGate(Gate::h(0));
    EXPECT_NEAR(sv.expectation(PauliString::fromLabel("X")), 1.0, kTol);
    EXPECT_NEAR(sv.expectation(PauliString::fromLabel("Z")), 0.0, kTol);
}

TEST(Statevector, ExpectationYOnSHPlusState)
{
    // S H |0> = (|0> + i|1>)/sqrt(2), the +1 eigenstate of Y.
    Statevector sv(1);
    sv.applyGate(Gate::h(0));
    sv.applyGate(Gate::s(0));
    EXPECT_NEAR(sv.expectation(PauliString::fromLabel("Y")), 1.0, kTol);
}

TEST(Statevector, RotationExpectation)
{
    // RY(t)|0>: <Z> = cos t, <X> = sin t.
    for (double t : {0.3, 1.1, 2.5}) {
        Statevector sv(1);
        sv.applyGate(Gate::ry(0, t));
        EXPECT_NEAR(sv.expectation(PauliString::fromLabel("Z")),
                    std::cos(t), kTol);
        EXPECT_NEAR(sv.expectation(PauliString::fromLabel("X")),
                    std::sin(t), kTol);
    }
}

TEST(Statevector, ProbabilitiesSumToOne)
{
    Statevector sv(4);
    sv.applyGate(Gate::h(0));
    sv.applyGate(Gate::cx(0, 2));
    sv.applyGate(Gate::ry(3, 0.9));
    const auto p = sv.probabilities();
    double total = 0.0;
    for (double x : p)
        total += x;
    EXPECT_NEAR(total, 1.0, kTol);
}

TEST(Statevector, SampleMatchesDistribution)
{
    Statevector sv(1);
    sv.applyGate(Gate::ry(0, 2.0 * std::acos(std::sqrt(0.7))));
    // P(0) should be 0.7.
    Rng rng(5);
    const auto shots = sv.sample(20000, rng);
    std::size_t zeros = 0;
    for (auto s : shots)
        zeros += (s == 0);
    EXPECT_NEAR(static_cast<double>(zeros) / shots.size(), 0.7, 0.02);
}

/** Norm preservation across random circuits (property test). */
class StatevectorNormProperty : public ::testing::TestWithParam<int>
{
};

TEST_P(StatevectorNormProperty, RandomCircuitPreservesNorm)
{
    const int seed = GetParam();
    Rng rng(seed);
    const int n = 2 + static_cast<int>(rng.uniformInt(4));
    Statevector sv(n);
    for (int g = 0; g < 40; ++g) {
        const int kind = static_cast<int>(rng.uniformInt(6));
        const int q = static_cast<int>(rng.uniformInt(n));
        int q2 = static_cast<int>(rng.uniformInt(n));
        if (q2 == q)
            q2 = (q + 1) % n;
        const double angle = rng.uniform(-3.0, 3.0);
        switch (kind) {
          case 0: sv.applyGate(Gate::h(q)); break;
          case 1: sv.applyGate(Gate::rx(q, angle)); break;
          case 2: sv.applyGate(Gate::ry(q, angle)); break;
          case 3: sv.applyGate(Gate::rz(q, angle)); break;
          case 4: sv.applyGate(Gate::cx(q, q2)); break;
          case 5: sv.applyGate(Gate::rzz(q, q2, angle)); break;
        }
    }
    EXPECT_NEAR(sv.norm2(), 1.0, 1e-10);
}

INSTANTIATE_TEST_SUITE_P(Seeds, StatevectorNormProperty,
                         ::testing::Range(0, 12));

/** Circuit inverse property: C^dag C = identity. */
class CircuitInverseProperty : public ::testing::TestWithParam<int>
{
};

TEST_P(CircuitInverseProperty, InverseUndoesCircuit)
{
    Rng rng(GetParam() + 100);
    const int n = 3;
    Circuit c(n, 2);
    for (int g = 0; g < 15; ++g) {
        const int q = static_cast<int>(rng.uniformInt(n));
        int q2 = (q + 1) % n;
        switch (rng.uniformInt(5)) {
          case 0: c.append(Gate::h(q)); break;
          case 1: c.append(Gate::rxParam(q, 0, 1.5)); break;
          case 2: c.append(Gate::rzParam(q, 1, -0.5)); break;
          case 3: c.append(Gate::cx(q, q2)); break;
          case 4: c.append(Gate::rzz(q, q2, 0.7)); break;
        }
    }
    const std::vector<double> params{0.4, -1.2};
    Statevector sv(n);
    sv.run(c, params);
    sv.run(c.inverse(), params);
    EXPECT_NEAR(std::abs(sv.amp(0)), 1.0, 1e-10);
}

INSTANTIATE_TEST_SUITE_P(Seeds, CircuitInverseProperty,
                         ::testing::Range(0, 8));

} // namespace
} // namespace oscar
