/**
 * @file
 * Tests for landscape persistence (save/load round trips).
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <cmath>
#include <sstream>

#include "src/landscape/io.h"

namespace {

using namespace oscar;

Landscape
makeLandscape()
{
    const GridSpec grid({{-1.5, 0.5, 6}, {0.0, 3.0, 9}});
    NdArray values(grid.shape());
    for (std::size_t i = 0; i < values.size(); ++i)
        values[i] = std::sin(0.37 * static_cast<double>(i)) * 1e3 +
                    1.0 / 3.0;
    return Landscape(grid, std::move(values));
}

TEST(LandscapeIo, StreamRoundTripIsExact)
{
    const Landscape original = makeLandscape();
    std::stringstream buffer;
    saveLandscape(original, buffer);
    const Landscape loaded = loadLandscape(buffer);

    ASSERT_EQ(loaded.grid().rank(), original.grid().rank());
    for (std::size_t d = 0; d < original.grid().rank(); ++d) {
        EXPECT_DOUBLE_EQ(loaded.grid().axis(d).lo,
                         original.grid().axis(d).lo);
        EXPECT_DOUBLE_EQ(loaded.grid().axis(d).hi,
                         original.grid().axis(d).hi);
        EXPECT_EQ(loaded.grid().axis(d).count,
                  original.grid().axis(d).count);
    }
    ASSERT_EQ(loaded.numPoints(), original.numPoints());
    for (std::size_t i = 0; i < original.numPoints(); ++i)
        EXPECT_DOUBLE_EQ(loaded.value(i), original.value(i));
}

TEST(LandscapeIo, FileRoundTrip)
{
    const std::string path = "/tmp/oscar_test_landscape.txt";
    const Landscape original = makeLandscape();
    saveLandscape(original, path);
    const Landscape loaded = loadLandscape(path);
    EXPECT_EQ(loaded.numPoints(), original.numPoints());
    EXPECT_DOUBLE_EQ(loaded.value(7), original.value(7));
    std::remove(path.c_str());
}

TEST(LandscapeIo, FourDimensionalGrid)
{
    const GridSpec grid(
        {{0.0, 1.0, 3}, {0.0, 1.0, 3}, {0.0, 1.0, 4}, {0.0, 1.0, 4}});
    NdArray values(grid.shape());
    for (std::size_t i = 0; i < values.size(); ++i)
        values[i] = static_cast<double>(i);
    std::stringstream buffer;
    saveLandscape(Landscape(grid, values), buffer);
    const Landscape loaded = loadLandscape(buffer);
    EXPECT_EQ(loaded.grid().rank(), 4u);
    EXPECT_DOUBLE_EQ(loaded.value(100), 100.0);
}

TEST(LandscapeIo, RejectsMalformedInput)
{
    {
        std::stringstream bad("not-a-landscape 1\n");
        EXPECT_THROW(loadLandscape(bad), std::runtime_error);
    }
    {
        std::stringstream bad("oscar-landscape 2\naxes 2\n");
        EXPECT_THROW(loadLandscape(bad), std::runtime_error);
    }
    {
        // Value count mismatch.
        std::stringstream bad(
            "oscar-landscape 1\naxes 1\naxis 0 1 4\nvalues 3\n1\n2\n3\n");
        EXPECT_THROW(loadLandscape(bad), std::runtime_error);
    }
    {
        // Truncated values.
        std::stringstream bad(
            "oscar-landscape 1\naxes 1\naxis 0 1 2\nvalues 2\n1\n");
        EXPECT_THROW(loadLandscape(bad), std::runtime_error);
    }
}

TEST(LandscapeIo, MissingFileThrows)
{
    EXPECT_THROW(loadLandscape("/nonexistent/path/l.txt"),
                 std::runtime_error);
}

} // namespace
