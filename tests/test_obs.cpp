/**
 * @file
 * Observability subsystem tests (src/obs/):
 *
 *  - strict OSCAR_TRACE / OSCAR_METRICS / OSCAR_TRACE_BUFFER_KB
 *    resolvers: unset falls back, "0"/"1" parse, anything else
 *    throws;
 *  - log2-bucket histogram boundaries, quantiles, and snapshot
 *    arithmetic;
 *  - deterministic cross-worker metric merging: replace-per-pid
 *    semantics, order independence, and drop-on-retire;
 *  - Prometheus text exposition shape;
 *  - tracer semantics: exact drain-once shipping, remote span
 *    parking, ring wraparound dropping oldest spans only;
 *  - concurrent recorder/collector stress (the TSan leg runs this
 *    binary to prove the seqlock and relaxed-atomic contracts);
 *  - disabled-mode cost: an instrumented site performs zero heap
 *    allocations when tracing and metrics are off (verified with a
 *    counting global operator new in this TU).
 */

#include <gtest/gtest.h>

#include <unistd.h>

#include <atomic>
#include <cstdlib>
#include <new>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "src/obs/metrics.h"
#include "src/obs/trace.h"

// ---------------------------------------------------------------------
// Counting allocator: every global new/delete in this binary bumps a
// counter, so a test can assert a code region allocates nothing.
// ---------------------------------------------------------------------

namespace {
std::atomic<std::uint64_t> g_allocations{0};
}

void*
operator new(std::size_t size)
{
    g_allocations.fetch_add(1, std::memory_order_relaxed);
    if (void* p = std::malloc(size ? size : 1))
        return p;
    throw std::bad_alloc();
}

void*
operator new[](std::size_t size)
{
    return ::operator new(size);
}

void
operator delete(void* p) noexcept
{
    std::free(p);
}

void
operator delete[](void* p) noexcept
{
    std::free(p);
}

void
operator delete(void* p, std::size_t) noexcept
{
    std::free(p);
}

void
operator delete[](void* p, std::size_t) noexcept
{
    std::free(p);
}

namespace oscar {
namespace {

/** RAII: set or clear one environment variable, restore on exit. */
class ScopedEnv
{
  public:
    ScopedEnv(const char* name, const char* value) : name_(name)
    {
        const char* old = std::getenv(name);
        if (old) {
            had_ = true;
            old_ = old;
        }
        if (value)
            ::setenv(name, value, 1);
        else
            ::unsetenv(name);
    }

    ~ScopedEnv()
    {
        if (had_)
            ::setenv(name_.c_str(), old_.c_str(), 1);
        else
            ::unsetenv(name_.c_str());
    }

  private:
    std::string name_;
    bool had_ = false;
    std::string old_;
};

/** RAII tracing toggle so a test cannot leak an enabled state. */
class ScopedTracing
{
  public:
    explicit ScopedTracing(bool on) { obs::setTracing(on); }
    ~ScopedTracing() { obs::setTracing(false); }
};

// ---------------------------------------------------------------------
// Satellite: strict environment resolvers
// ---------------------------------------------------------------------

TEST(ObsEnvTest, TraceToggleResolvesStrictly)
{
    {
        ScopedEnv env("OSCAR_TRACE", nullptr);
        EXPECT_FALSE(obs::resolveTraceEnabled());
        EXPECT_TRUE(obs::resolveTraceEnabled(true));
    }
    {
        ScopedEnv env("OSCAR_TRACE", "0");
        EXPECT_FALSE(obs::resolveTraceEnabled(true));
    }
    {
        ScopedEnv env("OSCAR_TRACE", "1");
        EXPECT_TRUE(obs::resolveTraceEnabled());
    }
    for (const char* bad : {"", "2", "yes", "true", "01", " 1"}) {
        ScopedEnv env("OSCAR_TRACE", bad);
        EXPECT_THROW(obs::resolveTraceEnabled(), std::runtime_error)
            << "OSCAR_TRACE=\"" << bad << "\"";
    }
}

TEST(ObsEnvTest, MetricsToggleResolvesStrictly)
{
    {
        ScopedEnv env("OSCAR_METRICS", nullptr);
        EXPECT_FALSE(obs::resolveMetricsEnabled());
        EXPECT_TRUE(obs::resolveMetricsEnabled(true));
    }
    {
        ScopedEnv env("OSCAR_METRICS", "1");
        EXPECT_TRUE(obs::resolveMetricsEnabled());
    }
    {
        ScopedEnv env("OSCAR_METRICS", "on");
        EXPECT_THROW(obs::resolveMetricsEnabled(), std::runtime_error);
    }
}

TEST(ObsEnvTest, TraceBufferKbResolvesStrictly)
{
    {
        ScopedEnv env("OSCAR_TRACE_BUFFER_KB", nullptr);
        EXPECT_EQ(obs::resolveTraceBufferKb(), 256u);
    }
    {
        ScopedEnv env("OSCAR_TRACE_BUFFER_KB", "16");
        EXPECT_EQ(obs::resolveTraceBufferKb(), 16u);
    }
    {
        ScopedEnv env("OSCAR_TRACE_BUFFER_KB", "65536");
        EXPECT_EQ(obs::resolveTraceBufferKb(), 65536u);
    }
    for (const char* bad : {"", "15", "65537", "-1", "1e3", "256k", "abc"}) {
        ScopedEnv env("OSCAR_TRACE_BUFFER_KB", bad);
        EXPECT_THROW(obs::resolveTraceBufferKb(), std::runtime_error)
            << "OSCAR_TRACE_BUFFER_KB=\"" << bad << "\"";
    }
}

// ---------------------------------------------------------------------
// Histogram boundaries and arithmetic
// ---------------------------------------------------------------------

TEST(ObsHistogramTest, BucketBoundariesArePowerOfTwoClasses)
{
    EXPECT_EQ(obs::histogramBucketOf(0), 0u);
    EXPECT_EQ(obs::histogramBucketOf(1), 1u);
    EXPECT_EQ(obs::histogramBucketOf(2), 2u);
    EXPECT_EQ(obs::histogramBucketOf(3), 2u);
    EXPECT_EQ(obs::histogramBucketOf(4), 3u);
    EXPECT_EQ(obs::histogramBucketOf(255), 8u);
    EXPECT_EQ(obs::histogramBucketOf(256), 9u);
    EXPECT_EQ(obs::histogramBucketOf(~std::uint64_t{0}), 64u);

    EXPECT_EQ(obs::histogramBucketBound(0), 0u);
    EXPECT_EQ(obs::histogramBucketBound(1), 1u);
    EXPECT_EQ(obs::histogramBucketBound(2), 3u);
    EXPECT_EQ(obs::histogramBucketBound(9), 511u);
    EXPECT_EQ(obs::histogramBucketBound(64), ~std::uint64_t{0});

    // Every value lands in the bucket whose bound covers it and the
    // previous bucket's bound does not.
    for (std::uint64_t v : {0ull, 1ull, 2ull, 7ull, 8ull, 1000ull,
                            (1ull << 40) - 1, 1ull << 40}) {
        const std::size_t b = obs::histogramBucketOf(v);
        EXPECT_LE(v, obs::histogramBucketBound(b)) << v;
        if (b > 0) {
            EXPECT_GT(v, obs::histogramBucketBound(b - 1)) << v;
        }
    }
}

TEST(ObsHistogramTest, SnapshotCountsSumsAndQuantiles)
{
    obs::Histogram h;
    for (std::uint64_t v = 1; v <= 1000; ++v)
        h.observe(v);
    const obs::HistogramSnapshot snap = h.snapshot();
    EXPECT_EQ(snap.count, 1000u);
    EXPECT_EQ(snap.sum, 500500u);
    EXPECT_DOUBLE_EQ(snap.mean(), 500.5);
    // Log-bucket quantiles are exact only at bucket boundaries; the
    // p50 of 1..1000 (500) lives in bucket (256, 512], so the
    // interpolated estimate must land inside that bucket.
    const double p50 = snap.quantile(0.5);
    EXPECT_GE(p50, 256.0);
    EXPECT_LE(p50, 512.0);
    const double p99 = snap.quantile(0.99);
    EXPECT_GE(p99, 512.0);
    EXPECT_LE(p99, 1024.0);
    EXPECT_LE(snap.quantile(0.0), snap.quantile(1.0));
}

TEST(ObsHistogramTest, SnapshotDifferenceIsolatesAnInterval)
{
    obs::Histogram h;
    for (int i = 0; i < 10; ++i)
        h.observe(100);
    const obs::HistogramSnapshot before = h.snapshot();
    for (int i = 0; i < 5; ++i)
        h.observe(1000);
    const obs::HistogramSnapshot delta = h.snapshot() - before;
    EXPECT_EQ(delta.count, 5u);
    EXPECT_EQ(delta.sum, 5000u);
    EXPECT_EQ(delta.buckets[obs::histogramBucketOf(1000)], 5u);
    EXPECT_EQ(delta.buckets[obs::histogramBucketOf(100)], 0u);
}

// ---------------------------------------------------------------------
// Registry: deterministic cross-worker merge
// ---------------------------------------------------------------------

obs::MetricsSnapshot
workerReport(std::uint64_t hits, std::uint64_t queue_high,
             std::uint64_t latency)
{
    obs::MetricsSnapshot s;
    s.counters["cache.hits"] = hits;
    s.gauges["queue.high"] = queue_high;
    obs::Histogram h;
    h.observe(latency);
    s.histograms["latency"] = h.snapshot();
    return s;
}

TEST(ObsRegistryTest, MergeIsOrderIndependentAndReplacesPerPid)
{
    obs::Registry a;
    a.counter("cache.hits").add(5);
    a.gauge("queue.high").set(2);
    a.histogram("latency").observe(100);

    obs::Registry b;
    b.counter("cache.hits").add(5);
    b.gauge("queue.high").set(2);
    b.histogram("latency").observe(100);

    // Same reports, opposite arrival order, one stale duplicate that
    // must be *replaced* (cumulative semantics), never accumulated.
    a.setWorkerSnapshot(101, workerReport(3, 9, 200));
    a.setWorkerSnapshot(102, workerReport(1, 4, 400));
    b.setWorkerSnapshot(102, workerReport(1, 4, 400));
    b.setWorkerSnapshot(101, workerReport(2, 7, 200));
    b.setWorkerSnapshot(101, workerReport(3, 9, 200));

    const obs::MetricsSnapshot ma = a.merged();
    const obs::MetricsSnapshot mb = b.merged();
    EXPECT_EQ(ma.counters.at("cache.hits"), 9u);
    EXPECT_EQ(mb.counters.at("cache.hits"), 9u);
    EXPECT_EQ(ma.gauges.at("queue.high"), 9u); // max combinator
    EXPECT_EQ(mb.gauges.at("queue.high"), 9u);
    EXPECT_EQ(ma.histograms.at("latency").count, 3u);
    EXPECT_EQ(mb.histograms.at("latency").count, 3u);
    EXPECT_EQ(ma.histograms.at("latency").sum,
              mb.histograms.at("latency").sum);
    // Byte-identical exposition is the end-to-end determinism check.
    EXPECT_EQ(obs::renderPrometheus(ma), obs::renderPrometheus(mb));
}

TEST(ObsRegistryTest, DropWorkerSnapshotRemovesItsContribution)
{
    obs::Registry r;
    r.counter("cache.hits").add(1);
    r.setWorkerSnapshot(201, workerReport(10, 1, 100));
    r.setWorkerSnapshot(202, workerReport(20, 2, 100));
    EXPECT_EQ(r.merged().counters.at("cache.hits"), 31u);
    EXPECT_EQ(r.workerPids().size(), 2u);

    r.dropWorkerSnapshot(201);
    EXPECT_EQ(r.merged().counters.at("cache.hits"), 21u);
    EXPECT_EQ(r.workerPids(), std::vector<std::int32_t>{202});
    r.dropWorkerSnapshot(999); // unknown pid: no-op
    EXPECT_EQ(r.merged().counters.at("cache.hits"), 21u);
}

TEST(ObsRegistryTest, PrometheusExpositionShape)
{
    obs::MetricsSnapshot s;
    s.counters["serve.requests"] = 7;
    s.gauges["dist.workers"] = 3;
    obs::Histogram h;
    h.observe(100);
    h.observe(1000);
    s.histograms["batch.latency.ns"] = h.snapshot();

    const std::string text = obs::renderPrometheus(s);
    EXPECT_NE(text.find("# TYPE oscar_serve_requests_total counter"),
              std::string::npos)
        << text;
    EXPECT_NE(text.find("oscar_serve_requests_total 7"),
              std::string::npos);
    EXPECT_NE(text.find("# TYPE oscar_dist_workers gauge"),
              std::string::npos);
    EXPECT_NE(text.find("oscar_dist_workers 3"), std::string::npos);
    EXPECT_NE(text.find("# TYPE oscar_batch_latency_ns histogram"),
              std::string::npos);
    EXPECT_NE(text.find("oscar_batch_latency_ns_bucket{le=\"+Inf\"} 2"),
              std::string::npos);
    EXPECT_NE(text.find("oscar_batch_latency_ns_sum 1100"),
              std::string::npos);
    EXPECT_NE(text.find("oscar_batch_latency_ns_count 2"),
              std::string::npos);
}

// ---------------------------------------------------------------------
// Tracer semantics
// ---------------------------------------------------------------------

std::size_t
countNamed(const std::vector<obs::SpanRecord>& spans, const char* name)
{
    std::size_t n = 0;
    for (const obs::SpanRecord& s : spans)
        if (std::string(s.name) == name)
            ++n;
    return n;
}

TEST(ObsTracerTest, DrainShipsEachSpanExactlyOnce)
{
    ScopedTracing tracing(true);
    obs::Tracer& tracer = obs::Tracer::global();
    tracer.clear();
    (void)tracer.drain(); // consume anything older tests recorded

    const std::uint64_t t = obs::Tracer::nowNs();
    for (int i = 0; i < 10; ++i)
        tracer.record(obs::SpanCategory::Wire, "drainonce", t, t + 1,
                      static_cast<std::uint64_t>(i));
    EXPECT_EQ(countNamed(tracer.drain(), "drainonce"), 10u);
    EXPECT_EQ(countNamed(tracer.drain(), "drainonce"), 0u);
    tracer.record(obs::SpanCategory::Wire, "drainonce", t, t + 1, 99);
    EXPECT_EQ(countNamed(tracer.drain(), "drainonce"), 1u);
}

TEST(ObsTracerTest, RemoteSpansParkUnderTheirPidInCollectAll)
{
    ScopedTracing tracing(true);
    obs::Tracer& tracer = obs::Tracer::global();
    tracer.clear();

    obs::SpanRecord span;
    span.t0Ns = 1;
    span.durNs = 2;
    span.category = obs::SpanCategory::Dist;
    std::strcpy(span.name, "remote");
    span.tid = 7;
    tracer.addRemoteSpans(4242, {span, span});

    const std::vector<obs::SpanRecord> all = tracer.collectAll();
    std::size_t remote = 0;
    for (const obs::SpanRecord& s : all)
        if (std::string(s.name) == "remote") {
            EXPECT_EQ(s.pid, 4242);
            EXPECT_EQ(s.tid, 7u);
            ++remote;
        }
    EXPECT_EQ(remote, 2u);
    tracer.clear();
    EXPECT_EQ(countNamed(tracer.collectAll(), "remote"), 0u);
}

TEST(ObsTracerTest, RingWraparoundDropsOldestSpansOnly)
{
    ScopedTracing tracing(true);
    obs::Tracer& tracer = obs::Tracer::global();
    const std::uint64_t dropped_before = tracer.droppedSpans();

    // A fresh thread gets a fresh ring; overfill it by recording far
    // more spans than any configured capacity (default 256 KiB / 64 B
    // = 4096 slots).
    constexpr std::uint64_t kSpans = 20000;
    std::thread recorder([&tracer] {
        const std::uint64_t t = obs::Tracer::nowNs();
        for (std::uint64_t i = 0; i < kSpans; ++i)
            tracer.record(obs::SpanCategory::Engine, "wrap", t, t + 1, i);
    });
    recorder.join();

    std::uint64_t seen = 0;
    std::uint64_t min_arg = ~std::uint64_t{0};
    std::uint64_t max_arg = 0;
    for (const obs::SpanRecord& s : tracer.collect()) {
        if (std::string(s.name) != "wrap")
            continue;
        ++seen;
        min_arg = std::min(min_arg, s.arg0);
        max_arg = std::max(max_arg, s.arg0);
    }
    ASSERT_GT(seen, 0u);
    EXPECT_LT(seen, kSpans); // the ring is smaller than the burst
    EXPECT_GT(tracer.droppedSpans(), dropped_before);
    // Drop-oldest: what survives is exactly the newest window.
    EXPECT_EQ(max_arg, kSpans - 1);
    EXPECT_EQ(min_arg, kSpans - seen);
}

// ---------------------------------------------------------------------
// Concurrency stress (run under TSan in CI)
// ---------------------------------------------------------------------

TEST(ObsStressTest, ConcurrentRecordersAndCollectorsStayCoherent)
{
    ScopedTracing tracing(true);
    obs::setMetrics(true);
    obs::Tracer& tracer = obs::Tracer::global();
    obs::Registry registry;
    obs::Counter& hits = registry.counter("stress.hits");
    obs::Histogram& lat = registry.histogram("stress.latency");

    constexpr int kThreads = 4;
    constexpr std::uint64_t kIters = 5000;
    std::atomic<bool> stop{false};

    std::thread collector([&] {
        while (!stop.load(std::memory_order_relaxed)) {
            const obs::MetricsSnapshot snap = registry.snapshot();
            // Per-metric consistency: a histogram's bucket total can
            // trail count (count bumps after buckets), never exceed
            // the number started.
            std::uint64_t bucket_total = 0;
            for (std::uint64_t b :
                 snap.histograms.at("stress.latency").buckets)
                bucket_total += b;
            EXPECT_LE(snap.histograms.at("stress.latency").count,
                      kThreads * kIters);
            EXPECT_LE(bucket_total, kThreads * kIters);
            for (const obs::SpanRecord& s : tracer.collect()) {
                EXPECT_GT(s.tid, 0u); // never a torn/blank record
                EXPECT_LE(s.t0Ns, s.t0Ns + s.durNs);
            }
        }
    });

    std::vector<std::thread> recorders;
    for (int t = 0; t < kThreads; ++t) {
        recorders.emplace_back([&, t] {
            for (std::uint64_t i = 0; i < kIters; ++i) {
                obs::ScopedSpan span(obs::SpanCategory::Engine, "stress",
                                     static_cast<std::uint64_t>(t), i);
                hits.add();
                lat.observe(i);
            }
        });
    }
    for (std::thread& th : recorders)
        th.join();
    stop.store(true, std::memory_order_relaxed);
    collector.join();
    obs::setMetrics(false);

    EXPECT_EQ(hits.value(), kThreads * kIters);
    const obs::HistogramSnapshot snap = lat.snapshot();
    EXPECT_EQ(snap.count, kThreads * kIters);
    std::uint64_t bucket_total = 0;
    for (std::uint64_t b : snap.buckets)
        bucket_total += b;
    EXPECT_EQ(bucket_total, kThreads * kIters);
}

// ---------------------------------------------------------------------
// Disabled-mode cost
// ---------------------------------------------------------------------

TEST(ObsDisabledTest, InstrumentedSitesAllocateNothingWhenOff)
{
    obs::setTracing(false);
    obs::setMetrics(false);
    // The one-time costs a call site pays regardless: registry
    // lookup (allocates) and thread-buffer registration happen
    // before the measured region, exactly like a static local at a
    // hot site.
    obs::Counter& hits =
        obs::Registry::global().counter("disabled.hits");
    obs::Tracer::global().record(obs::SpanCategory::Engine, "warm", 0, 0);

    const std::uint64_t before =
        g_allocations.load(std::memory_order_relaxed);
    for (int i = 0; i < 10000; ++i) {
        obs::ScopedSpan span(obs::SpanCategory::Engine, "off",
                             static_cast<std::uint64_t>(i));
        if (obs::metricsEnabled())
            hits.add();
    }
    const std::uint64_t after =
        g_allocations.load(std::memory_order_relaxed);
    EXPECT_EQ(after, before);
    EXPECT_EQ(hits.value(), 0u);
}

} // namespace
} // namespace oscar
