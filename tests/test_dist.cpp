/**
 * @file
 * Distributed execution subsystem tests:
 *
 *  - a ProcessPool's values are bit-identical to in-process
 *    evaluation for 1, 2, and 3 workers and any shard size (the
 *    distributed determinism contract);
 *  - fault tolerance: a worker SIGKILLed mid-batch (pipe-EOF path)
 *    and a worker SIGSTOPped (heartbeat-timeout path) both lead to
 *    the batch completing with bit-identical values and a nonzero
 *    requeue counter;
 *  - query/ordinal accounting, cancel-with-refund, streaming
 *    callbacks, and the engine-level routing: distributable costs go
 *    remote (BatchStats::pointsRemote), everything else stays on the
 *    thread pool, and a broken worker setup degrades to in-process
 *    execution instead of failing;
 *  - hybrid process x thread execution: values stay bit-identical
 *    across the workers x threadsPerWorker grid, depth-2 shard
 *    pipelining keeps workers fed (BatchStats::shardsPipelined), and
 *    worker-side kernel/prefix-cache counters aggregate into
 *    BatchStats::remoteKernel;
 *  - Oscar::reconstruct with OscarOptions::distributed produces the
 *    same samples and reconstruction as the in-process pipeline;
 *  - elastic TCP fleets: loopback-TCP pools stay bit-identical to
 *    in-process execution (with measured on-wire compression), a
 *    worker that joins mid-batch receives queued work, a SIGKILLed
 *    remote member's shards requeue onto survivors, per-point work
 *    stealing moves a straggler's unrun tail without changing a bit,
 *    a joiner with the wrong fleet secret is rejected before it can
 *    receive work, and the OSCAR_DIST_LISTEN / OSCAR_DIST_CONNECT /
 *    OSCAR_DIST_SECRET resolvers reject malformed input loudly.
 */

#include <gtest/gtest.h>

#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <functional>
#include <string>
#include <thread>
#include <vector>

extern char** environ;

#include "src/ansatz/qaoa.h"
#include "src/backend/engine.h"
#include "src/backend/statevector_backend.h"
#include "src/core/oscar.h"
#include "src/dist/process_pool.h"
#include "src/graph/generators.h"
#include "src/hamiltonian/maxcut.h"

namespace oscar {
namespace {

Graph
distGraph(int num_qubits)
{
    Rng rng(3);
    return random3RegularGraph(num_qubits, rng);
}

StatevectorCost
makeCost(const Graph& graph, int depth)
{
    return StatevectorCost(qaoaCircuit(graph, depth),
                           maxcutHamiltonian(graph));
}

std::vector<std::vector<double>>
randomPoints(std::size_t count, int dim, std::uint64_t seed)
{
    Rng rng(seed);
    std::vector<std::vector<double>> points;
    points.reserve(count);
    for (std::size_t i = 0; i < count; ++i) {
        std::vector<double> p(dim);
        for (double& v : p)
            v = rng.uniform(0.0, 6.28);
        points.push_back(std::move(p));
    }
    return points;
}

void
expectBitIdentical(const std::vector<double>& got,
                   const std::vector<double>& want)
{
    ASSERT_EQ(got.size(), want.size());
    for (std::size_t i = 0; i < got.size(); ++i)
        EXPECT_EQ(got[i], want[i]) << "point " << i;
}

TEST(DistPoolTest, ResolvesWorkerFromBuildTree)
{
    const std::string path = dist::ProcessPool::resolveWorkerPath("");
    EXPECT_NE(path.find("oscar-worker"), std::string::npos);
}

TEST(DistPoolTest, ExplicitBadWorkerPathThrows)
{
    EXPECT_THROW(dist::ProcessPool::resolveWorkerPath("/no/such/worker"),
                 std::runtime_error);
    dist::DistOptions options;
    options.numWorkers = 1;
    options.workerPath = "/no/such/worker";
    EXPECT_THROW(dist::ProcessPool pool(options), std::runtime_error);
}

TEST(DistPoolTest, ValuesBitIdenticalForAnyWorkerCountAndShardSize)
{
    const Graph graph = distGraph(8);
    StatevectorCost reference = makeCost(graph, 1);
    const auto points = randomPoints(48, reference.numParams(), 11);
    const std::vector<double> want = reference.evaluateBatch(points);

    for (const int workers : {1, 2, 3}) {
        for (const std::size_t shard : {std::size_t{1}, std::size_t{5},
                                        std::size_t{64}}) {
            dist::DistOptions options;
            options.numWorkers = workers;
            options.shardSize = shard;
            dist::ProcessPool pool(options);
            StatevectorCost cost = makeCost(graph, 1);
            auto pts = points;
            const std::vector<double> got =
                pool.submit(cost, std::move(pts)).get();
            expectBitIdentical(got, want);
            EXPECT_EQ(cost.numQueries(), points.size());
        }
    }
}

TEST(DistPoolTest, NonDistributableCostIsRejected)
{
    dist::DistOptions options;
    options.numWorkers = 1;
    dist::ProcessPool pool(options);
    LambdaCost lambda(
        2, [](const std::vector<double>& p) { return p[0] + p[1]; },
        /*thread_safe=*/true);
    auto points = randomPoints(4, 2, 1);
    EXPECT_THROW(pool.submit(lambda, std::move(points)),
                 std::invalid_argument);
}

TEST(DistPoolTest, StreamingCallbacksReportEveryPointOnce)
{
    const Graph graph = distGraph(8);
    StatevectorCost reference = makeCost(graph, 1);
    const auto points = randomPoints(40, reference.numParams(), 21);
    const std::vector<double> want = reference.evaluateBatch(points);

    dist::DistOptions options;
    options.numWorkers = 2;
    options.shardSize = 4;
    dist::ProcessPool pool(options);
    StatevectorCost cost = makeCost(graph, 1);

    std::vector<int> seen(points.size(), 0);
    std::vector<double> streamed(points.size(), 0.0);
    SubmitOptions submit;
    submit.onComplete = [&](std::size_t index, double value) {
        seen[index]++;
        streamed[index] = value;
    };
    auto pts = points;
    BatchHandle handle = pool.submit(cost, std::move(pts), submit);
    const std::vector<double> got = handle.get();
    expectBitIdentical(got, want);
    for (std::size_t i = 0; i < points.size(); ++i) {
        EXPECT_EQ(seen[i], 1) << "point " << i;
        EXPECT_EQ(streamed[i], want[i]) << "point " << i;
    }
    const BatchStats stats = handle.stats();
    EXPECT_EQ(stats.pointsCompleted, points.size());
    EXPECT_EQ(stats.pointsRemote, points.size());
}

TEST(DistPoolTest, KilledWorkerMidBatchRequeuesBitIdentical)
{
    // 12q p=2 keeps ~24 shards in flight long enough to land a
    // SIGKILL while the batch is genuinely mid-execution.
    const Graph graph = distGraph(12);
    StatevectorCost reference = makeCost(graph, 2);
    const auto points = randomPoints(96, reference.numParams(), 31);
    const std::vector<double> want = reference.evaluateBatch(points);

    dist::DistOptions options;
    options.numWorkers = 2;
    options.shardSize = 4;
    dist::ProcessPool pool(options);
    StatevectorCost cost = makeCost(graph, 2);

    auto pts = points;
    BatchHandle handle = pool.submit(cost, std::move(pts));
    const std::vector<int> pids = pool.workerPids();
    ASSERT_EQ(pids.size(), 2u);

    // Kill one worker as soon as the first shard lands.
    for (int i = 0; i < 20000; ++i) {
        if (handle.stats().pointsCompleted >= 4)
            break;
        std::this_thread::sleep_for(std::chrono::microseconds(200));
    }
    ASSERT_GE(handle.stats().pointsCompleted, 4u);
    ASSERT_FALSE(handle.done());
    ::kill(pids[0], SIGKILL);

    const std::vector<double> got = handle.get();
    expectBitIdentical(got, want);
    const BatchStats stats = handle.stats();
    EXPECT_EQ(stats.pointsCompleted, points.size());
    EXPECT_GE(stats.shardsRequeued, 1u);
    EXPECT_GE(pool.stats().workersLost, 1u);
    EXPECT_GE(pool.stats().tasksRequeued, 1u);
    EXPECT_EQ(cost.numQueries(), points.size());
    EXPECT_EQ(pool.workerPids().size(), 1u); // one survivor
}

TEST(DistPoolTest, HungWorkerHitsHeartbeatTimeoutAndRequeues)
{
    const Graph graph = distGraph(8);
    StatevectorCost reference = makeCost(graph, 1);
    const auto points = randomPoints(32, reference.numParams(), 41);
    const std::vector<double> want = reference.evaluateBatch(points);

    dist::DistOptions options;
    options.numWorkers = 2;
    options.shardSize = 4;
    options.heartbeatIntervalMs = 50;
    options.heartbeatTimeoutMs = 400;
    dist::ProcessPool pool(options);
    const std::vector<int> pids = pool.workerPids();
    ASSERT_EQ(pids.size(), 2u);

    // Freeze one worker before submitting: it will accept a shard into
    // its socket buffer, never answer, stop heartbeating, and get
    // killed by the liveness scan. SIGKILL terminates stopped
    // processes, so no SIGCONT is needed.
    ::kill(pids[1], SIGSTOP);

    StatevectorCost cost = makeCost(graph, 1);
    auto pts = points;
    BatchHandle handle = pool.submit(cost, std::move(pts));
    const std::vector<double> got = handle.get();
    expectBitIdentical(got, want);
    EXPECT_GE(handle.stats().shardsRequeued, 1u);
    EXPECT_GE(pool.stats().workersLost, 1u);
}

TEST(DistPoolTest, WorkerSpecCacheEvictionSelfHeals)
{
    // The worker bounds its rebuilt-evaluator cache at 16 entries
    // (FIFO). Push 20 distinct specs through one worker, then
    // resubmit the first: the pool still believes the worker holds
    // it, the worker answers "unknown cost", and the shard must be
    // respecced and requeued transparently — correct values, no lost
    // workers, no failed batch.
    const Graph graph = distGraph(6);
    dist::DistOptions options;
    options.numWorkers = 1;
    dist::ProcessPool pool(options);

    const auto points = randomPoints(4, 2, 101);
    auto costAt = [&](int variant) {
        PauliSum ham = maxcutHamiltonian(graph);
        ham.add(1e-6 * variant, PauliString(6)); // distinct content
        return StatevectorCost(qaoaCircuit(graph, 1), std::move(ham));
    };

    StatevectorCost first = costAt(0);
    const std::vector<double> want = [&] {
        StatevectorCost reference = costAt(0);
        return reference.evaluateBatch(points);
    }();
    {
        auto pts = points;
        expectBitIdentical(pool.submit(first, std::move(pts)).get(),
                           want);
    }
    for (int variant = 1; variant < 20; ++variant) {
        StatevectorCost cost = costAt(variant);
        auto pts = points;
        (void)pool.submit(cost, std::move(pts)).get();
    }

    // By now the worker evicted variant 0; the pool's per-worker
    // loaded set still lists it.
    auto pts = points;
    expectBitIdentical(pool.submit(first, std::move(pts)).get(), want);
    EXPECT_GE(pool.stats().tasksRequeued, 1u);
    EXPECT_EQ(pool.stats().workersLost, 0u);
}

TEST(DistPoolTest, CancelSkipsQueuedShardsAndRefundsQueries)
{
    const Graph graph = distGraph(12);
    StatevectorCost cost = makeCost(graph, 2);
    const auto points = randomPoints(60, cost.numParams(), 51);

    dist::DistOptions options;
    options.numWorkers = 1;
    options.shardSize = 2;
    dist::ProcessPool pool(options);

    auto pts = points;
    BatchHandle handle = pool.submit(cost, std::move(pts));
    for (int i = 0; i < 20000; ++i) {
        if (handle.stats().pointsCompleted >= 2)
            break;
        std::this_thread::sleep_for(std::chrono::microseconds(200));
    }
    ASSERT_FALSE(handle.done());
    EXPECT_TRUE(handle.cancel());
    EXPECT_THROW(handle.get(), std::runtime_error);

    const BatchStats stats = handle.stats();
    EXPECT_GT(stats.pointsCancelled, 0u);
    EXPECT_EQ(stats.pointsCompleted + stats.pointsCancelled,
              points.size());
    // Refunds leave exactly the executed points charged.
    EXPECT_EQ(cost.numQueries(), stats.pointsCompleted);
}

TEST(DistPoolTest, PoolDestructionWithOutstandingHandleDoesNotHang)
{
    const Graph graph = distGraph(12);
    StatevectorCost cost = makeCost(graph, 2);
    auto points = randomPoints(40, cost.numParams(), 61);

    BatchHandle handle;
    {
        dist::DistOptions options;
        options.numWorkers = 1;
        options.shardSize = 2;
        dist::ProcessPool pool(options);
        handle = pool.submit(cost, std::move(points));
    }
    // Queued shards were cancelled, in-flight ones drained; the handle
    // must resolve either way.
    try {
        handle.get();
    } catch (const std::runtime_error&) {
        EXPECT_GT(handle.stats().pointsCancelled, 0u);
    }
    EXPECT_TRUE(handle.done());
}

TEST(DistEngineTest, EngineRoutesDistributableBatchesToWorkers)
{
    const Graph graph = distGraph(8);
    StatevectorCost reference = makeCost(graph, 1);
    const auto points = randomPoints(40, reference.numParams(), 71);
    const std::vector<double> want = reference.evaluateBatch(points);

    EngineOptions options;
    options.numThreads = 2;
    options.dist.numWorkers = 2;
    options.dist.minPointsToDistribute = 1;
    ExecutionEngine engine(options);

    StatevectorCost cost = makeCost(graph, 1);
    BatchHandle handle = engine.submit(cost, points);
    const std::vector<double> got = handle.get();
    expectBitIdentical(got, want);
    EXPECT_EQ(handle.stats().pointsRemote, points.size());
    ASSERT_NE(engine.processPool(), nullptr);
    EXPECT_TRUE(engine.processPool()->healthy());

    // Non-distributable costs stay on the thread pool.
    LambdaCost lambda(
        reference.numParams(),
        [](const std::vector<double>& p) { return p[0] - p[1]; },
        /*thread_safe=*/true);
    BatchHandle local = engine.submit(lambda, points);
    local.wait();
    EXPECT_EQ(local.stats().pointsRemote, 0u);
}

TEST(DistEngineTest, SmallBatchesStayInProcess)
{
    const Graph graph = distGraph(8);
    EngineOptions options;
    options.numThreads = 1;
    options.dist.numWorkers = 2;
    options.dist.minPointsToDistribute = 32;
    ExecutionEngine engine(options);

    StatevectorCost cost = makeCost(graph, 1);
    const auto points = randomPoints(8, cost.numParams(), 81);
    BatchHandle handle = engine.submit(cost, points);
    handle.wait();
    EXPECT_EQ(handle.stats().pointsRemote, 0u);
    // Below the threshold no pool is ever spawned.
    EXPECT_EQ(engine.processPool(), nullptr);
}

TEST(DistEngineTest, BrokenWorkerSetupFallsBackInProcess)
{
    const Graph graph = distGraph(8);
    StatevectorCost reference = makeCost(graph, 1);
    const auto points = randomPoints(24, reference.numParams(), 91);
    const std::vector<double> want = reference.evaluateBatch(points);

    EngineOptions options;
    options.numThreads = 2;
    options.dist.numWorkers = 2;
    options.dist.minPointsToDistribute = 1;
    options.dist.workerPath = "/no/such/oscar-worker";
    ExecutionEngine engine(options);

    StatevectorCost cost = makeCost(graph, 1);
    BatchHandle handle = engine.submit(cost, points);
    const std::vector<double> got = handle.get();
    expectBitIdentical(got, want);
    EXPECT_EQ(handle.stats().pointsRemote, 0u);
    EXPECT_EQ(cost.numQueries(), points.size());
}

TEST(DistEngineTest, MalformedDistWorkersEnvThrows)
{
    // OSCAR_DIST_WORKERS follows the OSCAR_KERNEL_ISA convention: a
    // typo'd override fails loudly instead of silently running
    // without the distribution the user asked for.
    const char* saved = std::getenv("OSCAR_DIST_WORKERS");
    const std::string restore = saved ? saved : "";
    ::setenv("OSCAR_DIST_WORKERS", "four", 1);
    EXPECT_THROW(ExecutionEngine engine{EngineOptions{}},
                 std::runtime_error);
    // An explicit per-engine setting never consults the environment.
    EngineOptions pinned;
    pinned.numThreads = 1;
    pinned.dist.numWorkers = -1;
    EXPECT_NO_THROW(ExecutionEngine engine(pinned));
    if (saved)
        ::setenv("OSCAR_DIST_WORKERS", restore.c_str(), 1);
    else
        ::unsetenv("OSCAR_DIST_WORKERS");
}

TEST(DistPoolTest, HybridProcessThreadGridBitIdentical)
{
    // The hybrid determinism contract: for a fixed ISA the values are
    // bit-identical to in-process evaluation at EVERY point of the
    // process x thread grid -- worker threading changes capacity and
    // shard routing, never arithmetic.
    const Graph graph = distGraph(8);
    StatevectorCost reference = makeCost(graph, 1);
    const auto points = randomPoints(48, reference.numParams(), 13);
    const std::vector<double> want = reference.evaluateBatch(points);

    const std::pair<int, int> grid[] = {{1, 4}, {2, 2}, {4, 1}};
    for (const auto& [workers, threads] : grid) {
        dist::DistOptions options;
        options.numWorkers = workers;
        options.threadsPerWorker = threads;
        options.shardSize = 5;
        dist::ProcessPool pool(options);
        StatevectorCost cost = makeCost(graph, 1);
        auto pts = points;
        const std::vector<double> got =
            pool.submit(cost, std::move(pts)).get();
        expectBitIdentical(got, want);
        EXPECT_EQ(cost.numQueries(), points.size())
            << workers << "x" << threads;
    }
}

TEST(DistPoolTest, PipelinedDispatchAndRemoteKernelStats)
{
    // Depth-2 pipelining: with many more shards than workers, later
    // shards must be sent while earlier ones are still evaluating.
    // The Result frames' kernel-counter deltas (including the
    // worker-side prefix-cache traffic) aggregate into the batch's
    // remoteKernel.
    const Graph graph = distGraph(8);
    StatevectorCost reference = makeCost(graph, 1);
    const auto points = randomPoints(32, reference.numParams(), 17);
    const std::vector<double> want = reference.evaluateBatch(points);

    dist::DistOptions options;
    options.numWorkers = 1;
    options.threadsPerWorker = 2;
    options.shardSize = 2;
    dist::ProcessPool pool(options);
    StatevectorCost cost = makeCost(graph, 1);
    auto pts = points;
    BatchHandle handle = pool.submit(cost, std::move(pts));
    expectBitIdentical(handle.get(), want);

    const BatchStats stats = handle.stats();
    EXPECT_GT(stats.shardsPipelined, 0u);
    EXPECT_EQ(stats.pointsRemote, points.size());
    // Everything ran remotely, so the remote-only kernel aggregate
    // matches the full one, and the workers' prefix caches saw
    // traffic.
    EXPECT_GT(stats.remoteKernel.cacheLookups, 0u);
    EXPECT_EQ(stats.remoteKernel.cacheLookups, stats.kernel.cacheLookups);
    EXPECT_EQ(stats.remoteKernel.cacheHits, stats.kernel.cacheHits);
}

TEST(DistEngineTest, MalformedDistThreadsEnvThrows)
{
    // OSCAR_DIST_THREADS follows the OSCAR_DIST_WORKERS convention:
    // resolved eagerly at engine construction, failing loudly on a
    // typo instead of silently running single-threaded workers.
    const char* saved = std::getenv("OSCAR_DIST_THREADS");
    const std::string restore = saved ? saved : "";
    ::setenv("OSCAR_DIST_THREADS", "fast", 1);
    {
        EngineOptions plain;
        plain.numThreads = 1;
        plain.dist.numWorkers = -1;
        EXPECT_THROW(ExecutionEngine engine{plain}, std::runtime_error);
    }
    ::setenv("OSCAR_DIST_THREADS", "300", 1); // above the 0..256 range
    {
        EngineOptions plain;
        plain.numThreads = 1;
        plain.dist.numWorkers = -1;
        EXPECT_THROW(ExecutionEngine engine{plain}, std::runtime_error);
    }
    // An explicit per-engine thread count never consults the
    // environment.
    EngineOptions pinned;
    pinned.numThreads = 1;
    pinned.dist.numWorkers = -1;
    pinned.dist.threadsPerWorker = 2;
    EXPECT_NO_THROW(ExecutionEngine engine(pinned));
    if (saved)
        ::setenv("OSCAR_DIST_THREADS", restore.c_str(), 1);
    else
        ::unsetenv("OSCAR_DIST_THREADS");
}

TEST(DistEngineTest, OscarReconstructDistributedMatchesInProcess)
{
    const Graph graph = distGraph(8);
    const GridSpec grid = GridSpec::qaoaP1(20, 20);

    OscarOptions plain;
    plain.samplingFraction = 0.25;
    plain.numThreads = 2;

    OscarOptions distributed = plain;
    distributed.distributed.numWorkers = 2;
    distributed.distributed.minPointsToDistribute = 1;

    StatevectorCost cost_a = makeCost(graph, 1);
    const OscarResult a = Oscar::reconstruct(grid, cost_a, plain);

    StatevectorCost cost_b = makeCost(graph, 1);
    const OscarResult b = Oscar::reconstruct(grid, cost_b, distributed);

    expectBitIdentical(b.samples.values, a.samples.values);
    ASSERT_EQ(a.samples.indices, b.samples.indices);
    EXPECT_GT(b.execution.pointsRemote, 0u);
    EXPECT_EQ(b.execution.pointsRemote, b.execution.pointsCompleted);
    // Identical samples reconstruct identically.
    for (std::size_t i = 0; i < a.reconstructed.numPoints(); ++i)
        EXPECT_EQ(a.reconstructed.value(i), b.reconstructed.value(i));
}

// ------------------------------------------------ elastic TCP fleets

/** Set (or clear, with nullptr) an env var for one scope. */
class ScopedEnv
{
  public:
    ScopedEnv(const char* name, const char* value) : name_(name)
    {
        const char* old = std::getenv(name);
        had_ = old != nullptr;
        saved_ = had_ ? old : "";
        if (value)
            ::setenv(name, value, 1);
        else
            ::unsetenv(name);
    }
    ~ScopedEnv()
    {
        if (had_)
            ::setenv(name_.c_str(), saved_.c_str(), 1);
        else
            ::unsetenv(name_.c_str());
    }

  private:
    std::string name_;
    std::string saved_;
    bool had_ = false;
};

/**
 * fork/exec an `oscar-worker --connect 127.0.0.1:port` joiner, the way
 * an operator would start one on another machine. The fleet secret
 * travels in the child environment (never argv); slow_us throttles the
 * worker via the OSCAR_WORKER_SLOW_US test hook to fake a straggler.
 * Returns the child pid (the caller reaps it).
 */
int
spawnRemoteWorker(std::uint16_t port, const std::string& secret,
                  long slow_us = 0)
{
    const std::string worker = dist::ProcessPool::resolveWorkerPath("");
    const std::string connect = "127.0.0.1:" + std::to_string(port);

    std::vector<std::string> env_store;
    for (char** e = environ; e && *e; ++e) {
        const std::string entry(*e);
        if (entry.rfind("OSCAR_DIST_SECRET=", 0) == 0 ||
            entry.rfind("OSCAR_DIST_CONNECT=", 0) == 0 ||
            entry.rfind("OSCAR_WORKER_SLOW_US=", 0) == 0)
            continue;
        env_store.push_back(entry);
    }
    if (!secret.empty())
        env_store.push_back("OSCAR_DIST_SECRET=" + secret);
    if (slow_us > 0)
        env_store.push_back("OSCAR_WORKER_SLOW_US=" +
                            std::to_string(slow_us));

    std::vector<std::string> arg_store = {"oscar-worker", "--connect",
                                          connect, "--heartbeat-ms",
                                          "50", "--threads", "1"};
    std::vector<char*> argv;
    std::vector<char*> envp;
    for (std::string& s : arg_store)
        argv.push_back(s.data());
    argv.push_back(nullptr);
    for (std::string& s : env_store)
        envp.push_back(s.data());
    envp.push_back(nullptr);

    const int pid = ::fork();
    if (pid == 0) {
        ::execve(worker.c_str(), argv.data(), envp.data());
        ::_exit(127);
    }
    return pid;
}

/** Reap a test-spawned worker once it exits (pool gone / SIGKILLed). */
void
reapWorker(int pid)
{
    int status = 0;
    ASSERT_EQ(::waitpid(pid, &status, 0), pid);
}

bool
waitUntil(const std::function<bool()>& done, int timeout_ms = 10000)
{
    for (int i = 0; i < timeout_ms * 5; ++i) {
        if (done())
            return true;
        std::this_thread::sleep_for(std::chrono::microseconds(200));
    }
    return done();
}

TEST(DistFleetTest, TcpLoopbackPoolBitIdenticalWithCompressedFraming)
{
    const Graph graph = distGraph(8);
    StatevectorCost reference = makeCost(graph, 1);
    const auto points = randomPoints(48, reference.numParams(), 19);
    const std::vector<double> want = reference.evaluateBatch(points);

    dist::DistOptions options;
    options.numWorkers = 2;
    options.listen = "127.0.0.1:0";
    options.secret = "tcp-test-secret";
    options.shardSize = 5;
    dist::ProcessPool pool(options);
    EXPECT_NE(pool.listenPort(), 0);
    EXPECT_TRUE(pool.healthy());
    // TCP-mode locals are pid-bound to their connections, so fault
    // injection via workerPids keeps working on this transport.
    EXPECT_EQ(pool.workerPids().size(), 2u);
    EXPECT_EQ(pool.stats().workersJoined, 2u);

    StatevectorCost cost = makeCost(graph, 1);
    auto pts = points;
    BatchHandle handle = pool.submit(cost, std::move(pts));
    expectBitIdentical(handle.get(), want);
    EXPECT_EQ(cost.numQueries(), points.size());

    const BatchStats stats = handle.stats();
    EXPECT_EQ(stats.pointsRemote, points.size());
    // Fleet-membership counters surface per batch too (satellite of
    // the observability subsystem): both members were joined while
    // this batch ran, and neither dispatch target was remote.
    EXPECT_EQ(stats.workersJoined, 2u);
    EXPECT_EQ(stats.tasksToRemote, 0u);
    // Compressed framing: the wire carried measurably fewer bytes
    // than the raw frames (cost specs are full of zero byte-planes).
    EXPECT_GT(stats.bytesOnWireRaw, 0u);
    EXPECT_GT(stats.bytesOnWireCompressed, 0u);
    EXPECT_LT(stats.bytesOnWireCompressed, stats.bytesOnWireRaw);
    // Pool-spawned locals never count as remote dispatch targets.
    EXPECT_EQ(pool.stats().tasksToRemote, 0u);
}

TEST(DistFleetTest, WorkerJoinsMidBatchAndReceivesQueuedWork)
{
    const Graph graph = distGraph(8);
    StatevectorCost reference = makeCost(graph, 1);
    const auto points = randomPoints(48, reference.numParams(), 23);
    const std::vector<double> want = reference.evaluateBatch(points);

    int pid = -1;
    {
        // An elastic coordinator with zero members: batches queue
        // until someone joins.
        dist::DistOptions options;
        options.numWorkers = 0;
        options.listen = "127.0.0.1:0";
        options.secret = "join-test-secret";
        options.shardSize = 6;
        dist::ProcessPool pool(options);
        EXPECT_TRUE(pool.healthy());
        EXPECT_EQ(pool.workerPids().size(), 0u);

        StatevectorCost cost = makeCost(graph, 1);
        auto pts = points;
        BatchHandle handle = pool.submit(cost, std::move(pts));
        EXPECT_FALSE(handle.done());

        pid = spawnRemoteWorker(pool.listenPort(), "join-test-secret");
        ASSERT_GT(pid, 0);
        expectBitIdentical(handle.get(), want);
        EXPECT_EQ(cost.numQueries(), points.size());
        EXPECT_EQ(pool.stats().workersJoined, 1u);
        EXPECT_GE(pool.stats().tasksToRemote, 1u);
        EXPECT_EQ(handle.stats().pointsRemote, points.size());
        EXPECT_EQ(handle.stats().workersJoined, 1u);
        EXPECT_GE(handle.stats().tasksToRemote, 1u);
    }
    // Pool shutdown tells the joiner to exit; it leaves cleanly.
    reapWorker(pid);
}

TEST(DistFleetTest, SigkilledRemoteMemberRequeuesOntoSurvivors)
{
    const Graph graph = distGraph(8);
    StatevectorCost reference = makeCost(graph, 1);
    const auto points = randomPoints(48, reference.numParams(), 29);
    const std::vector<double> want = reference.evaluateBatch(points);

    dist::DistOptions options;
    options.numWorkers = 1;
    options.listen = "127.0.0.1:0";
    options.secret = "kill-test-secret";
    options.shardSize = 4;
    dist::ProcessPool pool(options);

    // A deliberately slow joiner: it holds its in-flight shard long
    // enough to be killed mid-evaluation.
    const int pid = spawnRemoteWorker(pool.listenPort(),
                                      "kill-test-secret",
                                      /*slow_us=*/20000);
    ASSERT_GT(pid, 0);
    ASSERT_TRUE(waitUntil(
        [&] { return pool.stats().workersJoined >= 2; }));

    StatevectorCost cost = makeCost(graph, 1);
    auto pts = points;
    BatchHandle handle = pool.submit(cost, std::move(pts));
    ASSERT_TRUE(waitUntil(
        [&] { return pool.stats().tasksToRemote >= 1; }));
    ::kill(pid, SIGKILL);
    reapWorker(pid);

    expectBitIdentical(handle.get(), want);
    EXPECT_EQ(cost.numQueries(), points.size());
    EXPECT_GE(handle.stats().shardsRequeued, 1u);
    EXPECT_GE(pool.stats().workersLost, 1u);
}

TEST(DistFleetTest, StolenStragglerTailIsBitIdentical)
{
    const Graph graph = distGraph(8);
    StatevectorCost reference = makeCost(graph, 1);
    const auto points = randomPoints(48, reference.numParams(), 37);
    const std::vector<double> want = reference.evaluateBatch(points);

    int pid = -1;
    {
        dist::DistOptions options;
        options.numWorkers = 1; // the fast member
        options.listen = "127.0.0.1:0";
        options.secret = "steal-test-secret";
        options.shardSize = 24; // two big shards, one per member
        dist::ProcessPool pool(options);

        // ~20ms per point: whichever member draws the straggler pins
        // its shard for ~half a second while the other idles.
        pid = spawnRemoteWorker(pool.listenPort(), "steal-test-secret",
                                /*slow_us=*/20000);
        ASSERT_GT(pid, 0);
        ASSERT_TRUE(waitUntil(
            [&] { return pool.stats().workersJoined >= 2; }));

        StatevectorCost cost = makeCost(graph, 1);
        auto pts = points;
        BatchHandle handle = pool.submit(cost, std::move(pts));
        expectBitIdentical(handle.get(), want);
        EXPECT_EQ(cost.numQueries(), points.size());
        // The idle member stole the straggler's unrun tail, and the
        // relocation changed no values (ordinals were reserved at
        // submission).
        EXPECT_GE(handle.stats().shardsStolen, 1u);
        EXPECT_GE(pool.stats().tasksStolen, 1u);
    }
    reapWorker(pid);
}

TEST(DistFleetTest, WrongSecretJoinerIsRejectedBeforeReceivingWork)
{
    const Graph graph = distGraph(8);
    StatevectorCost reference = makeCost(graph, 1);
    const auto points = randomPoints(24, reference.numParams(), 43);
    const std::vector<double> want = reference.evaluateBatch(points);

    int pid = -1;
    {
        dist::DistOptions options;
        options.numWorkers = 1;
        options.listen = "127.0.0.1:0";
        options.secret = "right-secret";
        options.shardSize = 4;
        dist::ProcessPool pool(options);
        ASSERT_TRUE(waitUntil(
            [&] { return pool.stats().workersJoined >= 1; }));

        pid = spawnRemoteWorker(pool.listenPort(), "wrong-secret");
        ASSERT_GT(pid, 0);
        // The impostor's tagged Hello fails verification and the
        // connection is dropped; it never becomes a member.
        reapWorker(pid);
        pid = -1;
        EXPECT_EQ(pool.stats().workersJoined, 1u);

        // The fleet keeps working on its authenticated member.
        StatevectorCost cost = makeCost(graph, 1);
        auto pts = points;
        expectBitIdentical(pool.submit(cost, std::move(pts)).get(),
                           want);
        EXPECT_EQ(pool.stats().workersJoined, 1u);
        EXPECT_EQ(pool.stats().tasksToRemote, 0u);
    }
    if (pid > 0)
        reapWorker(pid);
}

TEST(DistOptionsTest, ListenConnectSecretResolverMatrix)
{
    // Explicit configuration wins without consulting the environment.
    {
        ScopedEnv env("OSCAR_DIST_LISTEN", "not-an-address");
        EXPECT_EQ(dist::resolveDistListen("127.0.0.1:0"),
                  "127.0.0.1:0");
        EXPECT_EQ(dist::resolveDistListen("none"), "");
        EXPECT_THROW(dist::resolveDistListen(""), std::runtime_error);
    }
    // The environment is consulted only on the empty sentinel.
    {
        ScopedEnv env("OSCAR_DIST_LISTEN", "0.0.0.0:7777");
        EXPECT_EQ(dist::resolveDistListen(""), "0.0.0.0:7777");
    }
    {
        ScopedEnv env("OSCAR_DIST_LISTEN", "none");
        EXPECT_EQ(dist::resolveDistListen(""), "");
    }
    {
        ScopedEnv env("OSCAR_DIST_LISTEN", nullptr);
        EXPECT_EQ(dist::resolveDistListen(""), "");
    }
    // Malformed listen specs fail loudly, whatever the source.
    EXPECT_THROW(dist::resolveDistListen("nohost"), std::runtime_error);
    EXPECT_THROW(dist::resolveDistListen("host:"), std::runtime_error);
    EXPECT_THROW(dist::resolveDistListen(":1234"), std::runtime_error);
    EXPECT_THROW(dist::resolveDistListen("host:99999"),
                 std::runtime_error);
    EXPECT_THROW(dist::resolveDistListen("host:12x"),
                 std::runtime_error);

    // Connect accepts real ports only (a worker cannot dial port 0).
    EXPECT_EQ(dist::resolveDistConnect("127.0.0.1:80"), "127.0.0.1:80");
    EXPECT_THROW(dist::resolveDistConnect("127.0.0.1:0"),
                 std::runtime_error);
    {
        ScopedEnv env("OSCAR_DIST_CONNECT", "10.0.0.1:4242");
        EXPECT_EQ(dist::resolveDistConnect(""), "10.0.0.1:4242");
    }
    {
        ScopedEnv env("OSCAR_DIST_CONNECT", "10.0.0.1:0");
        EXPECT_THROW(dist::resolveDistConnect(""), std::runtime_error);
    }
    {
        ScopedEnv env("OSCAR_DIST_CONNECT", nullptr);
        EXPECT_EQ(dist::resolveDistConnect(""), "");
    }

    // Secrets: explicit wins; a set-but-empty or over-long secret is
    // a misconfiguration, not a choice.
    {
        ScopedEnv env("OSCAR_DIST_SECRET", "from-env");
        EXPECT_EQ(dist::resolveDistSecret("explicit"), "explicit");
        EXPECT_EQ(dist::resolveDistSecret(""), "from-env");
    }
    {
        ScopedEnv env("OSCAR_DIST_SECRET", "");
        EXPECT_THROW(dist::resolveDistSecret(""), std::runtime_error);
    }
    {
        ScopedEnv env("OSCAR_DIST_SECRET", nullptr);
        EXPECT_EQ(dist::resolveDistSecret(""), "");
        EXPECT_THROW(dist::resolveDistSecret(std::string(300, 'x')),
                     std::runtime_error);
    }
}

} // namespace
} // namespace oscar
