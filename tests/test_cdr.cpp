/**
 * @file
 * Tests for Clifford Data Regression: Clifford projection, stabilizer
 * ideal values, and mitigation accuracy against the exact noisy
 * simulator.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "src/ansatz/qaoa.h"
#include "src/backend/density_backend.h"
#include "src/backend/statevector_backend.h"
#include "src/common/rng.h"
#include "src/graph/generators.h"
#include "src/hamiltonian/maxcut.h"
#include "src/mitigation/cdr.h"
#include "src/quantum/stabilizer.h"

namespace {

using namespace oscar;

TEST(CliffordProjection, SnapsToNearestQuarter)
{
    const double pi = std::numbers::pi;
    Circuit c(2, 0);
    c.append(Gate::rz(0, 0.2));          // -> 0
    c.append(Gate::rx(1, pi / 2 - 0.1)); // -> pi/2
    c.append(Gate::rzz(0, 1, -1.5));     // -> -pi/2
    c.append(Gate::h(0));                // untouched
    Rng rng(1);
    const Circuit projected = projectToClifford(c, 0.0, rng);
    EXPECT_DOUBLE_EQ(projected.gates()[0].angle, 0.0);
    EXPECT_DOUBLE_EQ(projected.gates()[1].angle, pi / 2);
    EXPECT_DOUBLE_EQ(projected.gates()[2].angle, -pi / 2);
    EXPECT_EQ(projected.gates()[3].kind, GateKind::H);
}

TEST(CliffordProjection, ResultIsAlwaysClifford)
{
    Rng rng(2);
    const Graph g = random3RegularGraph(6, rng);
    const Circuit target = qaoaCircuit(g, 1).bind({0.37, -0.81});
    for (int rep = 0; rep < 5; ++rep) {
        const Circuit projected = projectToClifford(target, 0.5, rng);
        StabilizerState state(6);
        EXPECT_NO_THROW(state.run(projected));
    }
}

TEST(CliffordProjection, RequiresBoundCircuit)
{
    Circuit c(1, 1);
    c.append(Gate::rxParam(0, 0));
    Rng rng(3);
    EXPECT_THROW(projectToClifford(c, 0.0, rng), std::invalid_argument);
}

TEST(StabilizerExpectationFn, MatchesStatevectorOnCliffordQaoa)
{
    const double pi = std::numbers::pi;
    Rng rng(4);
    const Graph g = random3RegularGraph(6, rng);
    const PauliSum h = maxcutHamiltonian(g);
    const Circuit clifford =
        qaoaCircuit(g, 1).bind({pi / 2, -pi / 2});

    Statevector sv(6);
    sv.run(clifford);
    EXPECT_NEAR(stabilizerExpectation(clifford, h), h.expectation(sv),
                1e-9);
}

TEST(Cdr, RecoversIdealUnderGlobalDepolarizingLikeNoise)
{
    // With noise acting as an affine contraction of expectations (the
    // regime CDR assumes), the fitted map should essentially undo it.
    Rng rng(5);
    const Graph g = random3RegularGraph(6, rng);
    const PauliSum h = maxcutHamiltonian(g);
    const Circuit circuit = qaoaCircuit(g, 1);
    const NoiseModel noise = NoiseModel::depolarizing(0.004, 0.012);

    const std::vector<double> params{0.3, -0.6};
    const Circuit target = circuit.bind(params);

    CircuitEvaluator noisy_exec = [&](const Circuit& c) {
        DensityCost cost(c, h, noise);
        return cost.evaluate({});
    };
    StatevectorCost ideal_cost(circuit, h);
    const double ideal = ideal_cost.evaluate(params);
    const double raw = noisy_exec(target);

    CdrOptions options;
    options.numTrainingCircuits = 12;
    options.seed = 7;
    const CdrResult result = cdrMitigate(target, h, noisy_exec, options);

    EXPECT_LT(std::abs(result.mitigated - ideal),
              std::abs(raw - ideal));
    EXPECT_NEAR(result.mitigated, ideal, 0.1 * std::abs(ideal));
    EXPECT_GT(result.slope, 1.0); // the map must amplify contrast
}

TEST(Cdr, CostFunctionAdapterMitigatesAcrossParams)
{
    Rng rng(6);
    const Graph g = random3RegularGraph(4, rng);
    const PauliSum h = maxcutHamiltonian(g);
    const Circuit circuit = qaoaCircuit(g, 1);
    const NoiseModel noise = NoiseModel::depolarizing(0.005, 0.015);

    CircuitEvaluator noisy_exec = [&](const Circuit& c) {
        DensityCost cost(c, h, noise);
        return cost.evaluate({});
    };
    CdrCost cdr(circuit, h, noisy_exec, {12, 0.3, 11});
    StatevectorCost ideal(circuit, h);
    DensityCost raw(circuit, h, noise);

    double cdr_err = 0.0, raw_err = 0.0;
    for (double beta : {0.2, -0.35}) {
        for (double gamma : {0.5, -0.7}) {
            const std::vector<double> params{beta, gamma};
            const double target = ideal.evaluate(params);
            cdr_err += std::abs(cdr.evaluate(params) - target);
            raw_err += std::abs(raw.evaluate(params) - target);
        }
    }
    EXPECT_LT(cdr_err, raw_err);
}

TEST(Cdr, DegenerateTrainingFallsBackToRaw)
{
    // A constant noisy evaluator cannot support a regression; CDR
    // must return the raw value instead of blowing up.
    Rng rng(7);
    const Graph g = random3RegularGraph(4, rng);
    const PauliSum h = maxcutHamiltonian(g);
    const Circuit target = qaoaCircuit(g, 1).bind({0.2, 0.4});
    CircuitEvaluator constant = [](const Circuit&) { return 0.5; };
    const CdrResult result = cdrMitigate(target, h, constant);
    EXPECT_DOUBLE_EQ(result.mitigated, 0.5);
}

} // namespace
