/**
 * @file
 * End-to-end integration tests of the OSCAR pipelines: reconstruction
 * accuracy on real QAOA landscapes, the parallel/NCM pipeline, and the
 * optimizer-initialization use case.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "src/ansatz/qaoa.h"
#include "src/backend/analytic_qaoa.h"
#include "src/backend/statevector_backend.h"
#include "src/core/oscar.h"
#include "src/graph/generators.h"
#include "src/hamiltonian/maxcut.h"
#include "src/interp/bicubic.h"
#include "src/landscape/metrics.h"
#include "src/optimize/adam.h"
#include "src/optimize/cobyla.h"

namespace oscar {
namespace {

TEST(OscarIntegration, ReconstructsQaoaLandscapeAccurately)
{
    Rng rng(1);
    const Graph g = random3RegularGraph(16, rng);
    AnalyticQaoaCost cost(g);
    const GridSpec grid = GridSpec::qaoaP1(30, 60);

    const Landscape truth = Landscape::gridSearch(grid, cost);

    OscarOptions options;
    options.samplingFraction = 0.08;
    const OscarResult result = Oscar::reconstruct(grid, cost, options);
    // Paper Fig. 4(a): NRMSE well under 0.05 at ~8% sampling.
    EXPECT_LT(nrmse(truth.values(), result.reconstructed.values()), 0.05);
    EXPECT_NEAR(result.querySpeedup, 1.0 / 0.08, 1.0);
}

TEST(OscarIntegration, AccuracyImprovesWithSamplingFraction)
{
    Rng rng(2);
    const Graph g = random3RegularGraph(12, rng);
    AnalyticQaoaCost cost(g);
    const GridSpec grid = GridSpec::qaoaP1(24, 48);
    const Landscape truth = Landscape::gridSearch(grid, cost);

    double prev = 1e9;
    for (double fraction : {0.02, 0.06, 0.15}) {
        OscarOptions options;
        options.samplingFraction = fraction;
        options.seed = 77;
        const auto result = Oscar::reconstruct(grid, cost, options);
        const double err =
            nrmse(truth.values(), result.reconstructed.values());
        EXPECT_LT(err, prev) << "fraction=" << fraction;
        prev = err;
    }
}

TEST(OscarIntegration, StatevectorBackendEndToEnd)
{
    // Full pipeline against the exact simulator on a small instance.
    Rng rng(3);
    const Graph g = random3RegularGraph(8, rng);
    StatevectorCost cost(qaoaCircuit(g, 1), maxcutHamiltonian(g));
    const GridSpec grid = GridSpec::qaoaP1(30, 60);

    const Landscape truth = Landscape::gridSearch(grid, cost);
    OscarOptions options;
    options.samplingFraction = 0.1;
    const auto result = Oscar::reconstruct(grid, cost, options);
    EXPECT_LT(nrmse(truth.values(), result.reconstructed.values()), 0.06);
}

TEST(OscarIntegration, DatasetReplayPipeline)
{
    Rng rng(4);
    const Graph g = random3RegularGraph(12, rng);
    AnalyticQaoaCost cost(g);
    const GridSpec grid = GridSpec::qaoaP1(25, 50);
    const Landscape truth = Landscape::gridSearch(grid, cost);

    OscarOptions options;
    options.samplingFraction = 0.12;
    const auto result = Oscar::reconstructFromLandscape(truth, options);
    EXPECT_LT(nrmse(truth.values(), result.reconstructed.values()), 0.05);
    EXPECT_EQ(result.queriesUsed,
              static_cast<std::size_t>(0.12 * grid.numPoints() + 0.5));
}

TEST(OscarIntegration, ParallelNcmBeatsUncompensated)
{
    // The headline Fig. 8 claim: with NCM the mixed-device
    // reconstruction is far closer to the reference landscape.
    Rng rng(5);
    const Graph g = random3RegularGraph(12, rng);
    const GridSpec grid = GridSpec::qaoaP1(20, 40);

    auto make_devices = [&] {
        std::vector<QpuDevice> devices;
        QpuDevice d1;
        d1.name = "qpu-1";
        d1.noise = NoiseModel::depolarizing(0.001, 0.005);
        d1.cost = std::make_shared<AnalyticQaoaCost>(g, d1.noise);
        devices.push_back(std::move(d1));
        QpuDevice d2;
        d2.name = "qpu-2";
        d2.noise = NoiseModel::depolarizing(0.003, 0.007);
        d2.cost = std::make_shared<AnalyticQaoaCost>(g, d2.noise);
        devices.push_back(std::move(d2));
        return devices;
    };

    // Reference: full QPU-1 landscape.
    auto devices = make_devices();
    AnalyticQaoaCost ref_cost(g, devices[0].noise);
    const Landscape reference = Landscape::gridSearch(grid, ref_cost);

    OscarOptions options;
    options.samplingFraction = 0.1;

    Rng rng_a(11), rng_b(11);
    const auto uncompensated = Oscar::reconstructParallel(
        grid, devices, {0.5, 0.5}, false, 0.01, rng_a, options);
    auto devices2 = make_devices();
    const auto compensated = Oscar::reconstructParallel(
        grid, devices2, {0.5, 0.5}, true, 0.01, rng_b, options);

    const double err_raw =
        nrmse(reference.values(), uncompensated.reconstructed.values());
    const double err_ncm =
        nrmse(reference.values(), compensated.reconstructed.values());
    EXPECT_LT(err_ncm, err_raw);
}

TEST(OscarIntegration, OptimizerOnReconstructionMatchesTrueOptimum)
{
    // Use case 2 (Section 7): optimizing on the interpolated
    // reconstruction should land near the true landscape optimum.
    Rng rng(6);
    const Graph g = random3RegularGraph(16, rng);
    AnalyticQaoaCost cost(g);
    const GridSpec grid = GridSpec::qaoaP1(30, 60);
    const Landscape truth = Landscape::gridSearch(grid, cost);

    OscarOptions options;
    options.samplingFraction = 0.1;
    const auto result = Oscar::reconstruct(grid, cost, options);

    InterpolatedLandscapeCost interp(result.reconstructed);
    Adam adam;
    const auto initial = truth.minimizerParams(); // same start for both
    const auto run_interp = adam.minimize(interp, {0.1, 0.1});
    const auto run_true = adam.minimize(cost, {0.1, 0.1});

    // Endpoints close (paper Fig. 12) and values close.
    EXPECT_LT(paramDistance(run_interp.bestParams, run_true.bestParams),
              0.15);
    EXPECT_NEAR(cost.evaluate(run_interp.bestParams), run_true.bestValue,
                0.05 * std::abs(run_true.bestValue));
    (void)initial;
}

TEST(OscarIntegration, SuggestedInitialPointReducesQueries)
{
    // Use case 3 (Section 8 / Table 6): warm-starting ADAM from the
    // reconstruction's minimizer costs fewer queries than a cold start.
    Rng rng(7);
    const Graph g = random3RegularGraph(16, rng);
    AnalyticQaoaCost cost(g);
    const GridSpec grid = GridSpec::qaoaP1(30, 60);

    OscarOptions options;
    options.samplingFraction = 0.08;
    const auto recon = Oscar::reconstruct(grid, cost, options);

    Adam inner;
    const auto warm_start =
        suggestInitialPoint(recon.reconstructed, inner, {0.1, 0.1});

    AdamOptions tight;
    tight.gradientTolerance = 5e-3;
    Adam adam(tight);

    cost.resetQueries();
    const auto cold = adam.minimize(cost, {0.7, -1.4});
    cost.resetQueries();
    const auto warm = adam.minimize(cost, warm_start);

    EXPECT_LT(warm.numQueries, cold.numQueries);
    EXPECT_LE(warm.bestValue, cold.bestValue + 0.05);
}

TEST(OscarIntegration, ReconstructionPreservesMitigationRoughness)
{
    // Use case 1 (Section 6 / Fig. 10): the D2 roughness ordering of
    // mitigated landscapes survives reconstruction. Approximated here
    // with two synthetic landscapes of different jaggedness.
    const GridSpec grid({{-1.0, 1.0, 24}, {-1.0, 1.0, 24}});
    Rng rng(8);
    NdArray smooth(grid.shape()), rough(grid.shape());
    for (std::size_t i = 0; i < smooth.size(); ++i) {
        const auto p = grid.pointAt(i);
        const double base = std::cos(2.0 * p[0]) * std::cos(3.0 * p[1]);
        smooth[i] = base;
        rough[i] = base + rng.normal(0.0, 0.15);
    }
    const Landscape ls_smooth(grid, smooth);
    const Landscape ls_rough(grid, rough);

    OscarOptions options;
    options.samplingFraction = 0.35;
    const auto r_smooth = Oscar::reconstructFromLandscape(ls_smooth,
                                                          options);
    const auto r_rough = Oscar::reconstructFromLandscape(ls_rough,
                                                         options);
    EXPECT_GT(secondDerivativeMetric(r_rough.reconstructed.values()),
              secondDerivativeMetric(r_smooth.reconstructed.values()));
}

} // namespace
} // namespace oscar
