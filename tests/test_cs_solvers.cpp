/**
 * @file
 * Tests for the compressed-sensing solvers (FISTA and OMP) and the
 * high-level reconstructor, including exact recovery of sparse
 * signals -- the mathematical core of OSCAR.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "src/common/rng.h"
#include "src/cs/fista.h"
#include "src/cs/omp.h"
#include "src/cs/reconstructor.h"

namespace oscar {
namespace {

/** Build a k-sparse 2-D signal in the DCT domain. */
NdArray
makeSparseSignal(std::size_t nr, std::size_t nc, std::size_t k, Rng& rng,
                 const Dct2d& dct)
{
    NdArray coeffs({nr, nc});
    const auto picks = rng.sampleWithoutReplacement(nr * nc, k);
    for (std::size_t idx : picks)
        coeffs[idx] = rng.uniform(0.5, 2.0) * (rng.bernoulli(0.5) ? 1 : -1);
    return dct.inverse(coeffs);
}

TEST(SoftThreshold, Basics)
{
    EXPECT_DOUBLE_EQ(softThreshold(3.0, 1.0), 2.0);
    EXPECT_DOUBLE_EQ(softThreshold(-3.0, 1.0), -2.0);
    EXPECT_DOUBLE_EQ(softThreshold(0.5, 1.0), 0.0);
    EXPECT_DOUBLE_EQ(softThreshold(-0.5, 1.0), 0.0);
}

class SparseRecovery : public ::testing::TestWithParam<std::size_t>
{
};

TEST_P(SparseRecovery, FistaRecoversSparseSignal)
{
    const std::size_t sparsity = GetParam();
    const std::size_t nr = 20, nc = 30;
    Rng rng(100 + sparsity);
    Dct2d dct(nr, nc);
    const NdArray signal = makeSparseSignal(nr, nc, sparsity, rng, dct);

    // Sample 30% of the grid.
    const auto indices = rng.sampleWithoutReplacement(nr * nc, 180);
    std::vector<double> values;
    for (std::size_t idx : indices)
        values.push_back(signal[idx]);

    const auto result = fistaSolve(dct, indices, values);
    const NdArray recon = dct.inverse(result.coefficients);

    double err = 0.0, norm = 0.0;
    for (std::size_t i = 0; i < signal.size(); ++i) {
        err += (recon[i] - signal[i]) * (recon[i] - signal[i]);
        norm += signal[i] * signal[i];
    }
    EXPECT_LT(std::sqrt(err / norm), 0.05)
        << "sparsity=" << sparsity;
}

TEST_P(SparseRecovery, OmpRecoversSparseSignalExactly)
{
    const std::size_t sparsity = GetParam();
    const std::size_t nr = 20, nc = 30;
    Rng rng(200 + sparsity);
    Dct2d dct(nr, nc);
    const NdArray signal = makeSparseSignal(nr, nc, sparsity, rng, dct);

    const auto indices = rng.sampleWithoutReplacement(nr * nc, 180);
    std::vector<double> values;
    for (std::size_t idx : indices)
        values.push_back(signal[idx]);

    OmpOptions options;
    options.maxAtoms = 2 * sparsity + 4;
    const auto result = ompSolve(dct, indices, values, options);
    const NdArray recon = dct.inverse(result.coefficients);

    double err = 0.0, norm = 0.0;
    for (std::size_t i = 0; i < signal.size(); ++i) {
        err += (recon[i] - signal[i]) * (recon[i] - signal[i]);
        norm += signal[i] * signal[i];
    }
    EXPECT_LT(std::sqrt(err / norm), 1e-5) << "sparsity=" << sparsity;
}

INSTANTIATE_TEST_SUITE_P(SparsityLevels, SparseRecovery,
                         ::testing::Values(2, 5, 10, 20));

TEST(Fista, FullSamplingReproducesSignal)
{
    const std::size_t nr = 10, nc = 12;
    Rng rng(7);
    Dct2d dct(nr, nc);
    const NdArray signal = makeSparseSignal(nr, nc, 6, rng, dct);

    std::vector<std::size_t> indices(nr * nc);
    std::vector<double> values(nr * nc);
    for (std::size_t i = 0; i < nr * nc; ++i) {
        indices[i] = i;
        values[i] = signal[i];
    }
    const auto result = fistaSolve(dct, indices, values);
    const NdArray recon = dct.inverse(result.coefficients);
    for (std::size_t i = 0; i < signal.size(); ++i)
        EXPECT_NEAR(recon[i], signal[i], 1e-3);
}

TEST(Fista, ZeroMeasurementsGiveZero)
{
    Dct2d dct(4, 4);
    const auto result = fistaSolve(dct, {0, 5, 9}, {0.0, 0.0, 0.0});
    for (std::size_t i = 0; i < 16; ++i)
        EXPECT_EQ(result.coefficients[i], 0.0);
}

TEST(Fista, RejectsBadInputs)
{
    Dct2d dct(4, 4);
    EXPECT_THROW(fistaSolve(dct, {0, 1}, {1.0}), std::invalid_argument);
    EXPECT_THROW(fistaSolve(dct, {}, {}), std::invalid_argument);
    EXPECT_THROW(fistaSolve(dct, {16}, {1.0}), std::out_of_range);
}

TEST(Fista, NoisySamplesStillApproximate)
{
    const std::size_t nr = 16, nc = 16;
    Rng rng(8);
    Dct2d dct(nr, nc);
    const NdArray signal = makeSparseSignal(nr, nc, 4, rng, dct);

    const auto indices = rng.sampleWithoutReplacement(nr * nc, 128);
    std::vector<double> values;
    for (std::size_t idx : indices)
        values.push_back(signal[idx] + rng.normal(0.0, 0.01));

    const auto result = fistaSolve(dct, indices, values);
    const NdArray recon = dct.inverse(result.coefficients);
    double err = 0.0, norm = 0.0;
    for (std::size_t i = 0; i < signal.size(); ++i) {
        err += (recon[i] - signal[i]) * (recon[i] - signal[i]);
        norm += signal[i] * signal[i];
    }
    EXPECT_LT(std::sqrt(err / norm), 0.1);
}

TEST(Reconstructor, FoldedShape)
{
    EXPECT_EQ(csFoldedShape({12, 12, 15, 15}),
              (std::vector<std::size_t>{144, 225}));
    EXPECT_EQ(csFoldedShape({50, 100}),
              (std::vector<std::size_t>{50, 100}));
    EXPECT_THROW(csFoldedShape({4, 4, 4}), std::invalid_argument);
}

TEST(Reconstructor, FourDGridRoundTrips)
{
    // Build a smooth separable 4-D signal, sample 35%, reconstruct.
    const std::vector<std::size_t> shape{6, 6, 8, 8};
    NdArray signal(shape);
    for (std::size_t i = 0; i < signal.size(); ++i) {
        const auto idx = signal.unravel(i);
        signal[i] = std::cos(0.4 * idx[0]) * std::cos(0.3 * idx[1]) *
                    std::cos(0.5 * idx[2] + 0.2 * idx[3]);
    }
    Rng rng(12);
    const auto indices =
        rng.sampleWithoutReplacement(signal.size(), signal.size() * 35 / 100);
    std::vector<double> values;
    for (std::size_t idx : indices)
        values.push_back(signal[idx]);

    const NdArray recon = reconstructLandscape(shape, indices, values);
    EXPECT_EQ(recon.shape(), shape);
    double err = 0.0, norm = 0.0;
    for (std::size_t i = 0; i < signal.size(); ++i) {
        err += (recon[i] - signal[i]) * (recon[i] - signal[i]);
        norm += signal[i] * signal[i];
    }
    EXPECT_LT(std::sqrt(err / norm), 0.25);
}

TEST(Reconstructor, OmpSolverOption)
{
    const std::size_t nr = 12, nc = 12;
    Rng rng(13);
    Dct2d dct(nr, nc);
    const NdArray signal = makeSparseSignal(nr, nc, 3, rng, dct);
    const auto indices = rng.sampleWithoutReplacement(nr * nc, 60);
    std::vector<double> values;
    for (std::size_t idx : indices)
        values.push_back(signal[idx]);

    CsOptions options;
    options.solver = CsSolver::Omp;
    options.omp.maxAtoms = 10;
    const NdArray recon =
        reconstructLandscape2d({nr, nc}, indices, values, options);
    double err = 0.0, norm = 0.0;
    for (std::size_t i = 0; i < signal.size(); ++i) {
        err += (recon[i] - signal[i]) * (recon[i] - signal[i]);
        norm += signal[i] * signal[i];
    }
    EXPECT_LT(std::sqrt(err / norm), 1e-4);
}

} // namespace
} // namespace oscar
