/**
 * @file
 * Tests for grid specification, landscape container, and sampling.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <numbers>
#include <set>

#include "src/landscape/grid.h"
#include "src/landscape/landscape.h"
#include "src/landscape/sampler.h"

namespace oscar {
namespace {

TEST(GridAxis, InclusiveEndpoints)
{
    const GridAxis axis{-1.0, 1.0, 5};
    EXPECT_DOUBLE_EQ(axis.value(0), -1.0);
    EXPECT_DOUBLE_EQ(axis.value(2), 0.0);
    EXPECT_DOUBLE_EQ(axis.value(4), 1.0);
}

TEST(GridAxis, SinglePointIsMidpoint)
{
    const GridAxis axis{0.0, 2.0, 1};
    EXPECT_DOUBLE_EQ(axis.value(0), 1.0);
}

TEST(GridSpec, PaperP1Grid)
{
    const GridSpec grid = GridSpec::qaoaP1();
    EXPECT_EQ(grid.rank(), 2u);
    EXPECT_EQ(grid.numPoints(), 5000u);
    EXPECT_DOUBLE_EQ(grid.axis(0).lo, -std::numbers::pi / 4);
    EXPECT_DOUBLE_EQ(grid.axis(1).hi, std::numbers::pi / 2);
}

TEST(GridSpec, PaperP2Grid)
{
    const GridSpec grid = GridSpec::qaoaP2();
    EXPECT_EQ(grid.rank(), 4u);
    EXPECT_EQ(grid.numPoints(), 12u * 12u * 15u * 15u);
}

TEST(GridSpec, PointAtRowMajorOrder)
{
    const GridSpec grid({{0.0, 1.0, 2}, {0.0, 2.0, 3}});
    // Flat index 0 -> (0, 0); 1 -> (0, 1); 3 -> (1, 0).
    EXPECT_EQ(grid.pointAt(0), (std::vector<double>{0.0, 0.0}));
    EXPECT_EQ(grid.pointAt(1), (std::vector<double>{0.0, 1.0}));
    EXPECT_EQ(grid.pointAt(3), (std::vector<double>{1.0, 0.0}));
    EXPECT_EQ(grid.pointAt(5), (std::vector<double>{1.0, 2.0}));
}

TEST(GridSpec, AxisValuesLength)
{
    const GridSpec grid({{0.0, 1.0, 4}, {0.0, 1.0, 7}});
    EXPECT_EQ(grid.axisValues(0).size(), 4u);
    EXPECT_EQ(grid.axisValues(1).size(), 7u);
}

TEST(GridSpec, NearestIndexRoundTrip)
{
    const GridSpec grid({{-1.0, 1.0, 9}, {-2.0, 2.0, 11}});
    for (std::size_t i = 0; i < grid.numPoints(); i += 7) {
        const auto p = grid.pointAt(i);
        EXPECT_EQ(grid.nearestIndex(p), i);
    }
}

TEST(GridSpec, NearestIndexClamps)
{
    const GridSpec grid({{0.0, 1.0, 3}, {0.0, 1.0, 3}});
    EXPECT_EQ(grid.nearestIndex({-5.0, -5.0}), 0u);
    EXPECT_EQ(grid.nearestIndex({5.0, 5.0}), 8u);
}

TEST(Landscape, GridSearchEvaluatesEveryPoint)
{
    const GridSpec grid({{0.0, 1.0, 4}, {0.0, 1.0, 5}});
    LambdaCost cost(2, [](const std::vector<double>& p) {
        return p[0] + 10.0 * p[1];
    });
    const Landscape ls = Landscape::gridSearch(grid, cost);
    EXPECT_EQ(cost.numQueries(), 20u);
    EXPECT_DOUBLE_EQ(ls.value(0), 0.0);
    EXPECT_DOUBLE_EQ(ls.value(19), 1.0 + 10.0);
}

TEST(Landscape, ArgminAndMinimizer)
{
    const GridSpec grid({{-1.0, 1.0, 21}, {-1.0, 1.0, 21}});
    LambdaCost cost(2, [](const std::vector<double>& p) {
        return (p[0] - 0.3) * (p[0] - 0.3) + (p[1] + 0.5) * (p[1] + 0.5);
    });
    const Landscape ls = Landscape::gridSearch(grid, cost);
    const auto mins = ls.minimizerParams();
    EXPECT_NEAR(mins[0], 0.3, 0.051);
    EXPECT_NEAR(mins[1], -0.5, 0.051);
}

TEST(Sampler, CountFromFraction)
{
    const GridSpec grid({{0.0, 1.0, 10}, {0.0, 1.0, 10}});
    EXPECT_EQ(sampleCount(grid, 0.05), 5u);
    EXPECT_EQ(sampleCount(grid, 1.0), 100u);
    EXPECT_THROW(sampleCount(grid, 0.0), std::invalid_argument);
    EXPECT_THROW(sampleCount(grid, 1.5), std::invalid_argument);
}

TEST(Sampler, IndicesDistinctSortedInRange)
{
    Rng rng(4);
    const auto idx = chooseSampleIndices(1000, 0.2, rng);
    EXPECT_EQ(idx.size(), 200u);
    std::set<std::size_t> uniq(idx.begin(), idx.end());
    EXPECT_EQ(uniq.size(), 200u);
    EXPECT_TRUE(std::is_sorted(idx.begin(), idx.end()));
    EXPECT_LT(idx.back(), 1000u);
}

TEST(Sampler, SampleCostEvaluatesAtGridPoints)
{
    const GridSpec grid({{0.0, 3.0, 4}, {0.0, 2.0, 3}});
    LambdaCost cost(2, [](const std::vector<double>& p) {
        return 100.0 * p[0] + p[1];
    });
    Rng rng(5);
    const SampleSet set = sampleCost(grid, cost, 0.5, rng);
    EXPECT_EQ(set.size(), 6u);
    for (std::size_t k = 0; k < set.size(); ++k) {
        const auto p = grid.pointAt(set.indices[k]);
        EXPECT_DOUBLE_EQ(set.values[k], 100.0 * p[0] + p[1]);
    }
}

TEST(Sampler, LandscapeReplayMatchesStoredValues)
{
    const GridSpec grid({{0.0, 1.0, 5}, {0.0, 1.0, 5}});
    NdArray values(grid.shape());
    for (std::size_t i = 0; i < values.size(); ++i)
        values[i] = static_cast<double>(i * i);
    const Landscape ls(grid, std::move(values));
    Rng rng(6);
    const SampleSet set = sampleLandscape(ls, 0.4, rng);
    for (std::size_t k = 0; k < set.size(); ++k)
        EXPECT_DOUBLE_EQ(set.values[k],
                         static_cast<double>(set.indices[k] *
                                             set.indices[k]));
}

TEST(Sampler, GatherValidatesIndices)
{
    const GridSpec grid({{0.0, 1.0, 2}, {0.0, 1.0, 2}});
    const Landscape ls(grid, NdArray(grid.shape()));
    EXPECT_THROW(gatherLandscape(ls, {4}), std::out_of_range);
}

} // namespace
} // namespace oscar
