/**
 * @file
 * Tests for least squares / polynomial fitting (NCM and ZNE substrate).
 */

#include <gtest/gtest.h>

#include <stdexcept>

#include "src/common/linear_regression.h"
#include "src/common/rng.h"

namespace oscar {
namespace {

TEST(LinearFit, ExactLine)
{
    const auto fit = fitLinear({0, 1, 2, 3}, {1, 3, 5, 7});
    EXPECT_NEAR(fit.slope, 2.0, 1e-12);
    EXPECT_NEAR(fit.intercept, 1.0, 1e-12);
    EXPECT_NEAR(fit(10.0), 21.0, 1e-12);
}

TEST(LinearFit, NoisyLineRecovered)
{
    Rng rng(3);
    std::vector<double> x, y;
    for (int i = 0; i < 2000; ++i) {
        const double xi = rng.uniform(-1, 1);
        x.push_back(xi);
        y.push_back(0.7 * xi - 0.2 + rng.normal(0.0, 0.01));
    }
    const auto fit = fitLinear(x, y);
    EXPECT_NEAR(fit.slope, 0.7, 1e-3);
    EXPECT_NEAR(fit.intercept, -0.2, 1e-3);
}

TEST(LinearFit, RejectsConstantX)
{
    EXPECT_THROW(fitLinear({2, 2, 2}, {1, 2, 3}), std::invalid_argument);
}

TEST(Polynomial, ExactQuadratic)
{
    // y = 1 - 2x + 3x^2
    std::vector<double> x{-1, 0, 1, 2}, y;
    for (double xi : x)
        y.push_back(1.0 - 2.0 * xi + 3.0 * xi * xi);
    const auto c = fitPolynomial(x, y, 2);
    ASSERT_EQ(c.size(), 3u);
    EXPECT_NEAR(c[0], 1.0, 1e-9);
    EXPECT_NEAR(c[1], -2.0, 1e-9);
    EXPECT_NEAR(c[2], 3.0, 1e-9);
}

TEST(Polynomial, EvalHorner)
{
    EXPECT_DOUBLE_EQ(evalPolynomial({1, -2, 3}, 2.0), 1 - 4 + 12);
}

TEST(SolveDense, Identity)
{
    const auto x = solveDense({1, 0, 0, 1}, {3, 4}, 2);
    EXPECT_NEAR(x[0], 3.0, 1e-12);
    EXPECT_NEAR(x[1], 4.0, 1e-12);
}

TEST(SolveDense, RequiresPivoting)
{
    // First pivot is zero; partial pivoting must handle it.
    const auto x = solveDense({0, 1, 1, 0}, {2, 5}, 2);
    EXPECT_NEAR(x[0], 5.0, 1e-12);
    EXPECT_NEAR(x[1], 2.0, 1e-12);
}

TEST(SolveDense, ThrowsOnSingular)
{
    EXPECT_THROW(solveDense({1, 2, 2, 4}, {1, 2}, 2), std::runtime_error);
}

TEST(SolveDense, RandomSystemRoundTrip)
{
    Rng rng(9);
    const std::size_t n = 8;
    std::vector<double> a(n * n), x_true(n), b(n, 0.0);
    for (auto& v : a)
        v = rng.normal();
    for (auto& v : x_true)
        v = rng.normal();
    for (std::size_t r = 0; r < n; ++r) {
        for (std::size_t c = 0; c < n; ++c)
            b[r] += a[r * n + c] * x_true[c];
    }
    const auto x = solveDense(a, b, n);
    for (std::size_t i = 0; i < n; ++i)
        EXPECT_NEAR(x[i], x_true[i], 1e-8);
}

} // namespace
} // namespace oscar
