/**
 * @file
 * Tests for circuit layering and dynamical decoupling.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "src/ansatz/qaoa.h"
#include "src/backend/statevector_backend.h"
#include "src/common/rng.h"
#include "src/graph/generators.h"
#include "src/hamiltonian/maxcut.h"
#include "src/mitigation/dd.h"
#include "src/quantum/statevector.h"

namespace {

using namespace oscar;

TEST(Layerize, IndependentGatesShareALayer)
{
    Circuit c(3, 0);
    c.append(Gate::h(0));
    c.append(Gate::h(1));
    c.append(Gate::h(2));
    const LayeredCircuit layered = layerize(c);
    ASSERT_EQ(layered.layers.size(), 1u);
    EXPECT_EQ(layered.layers[0].size(), 3u);
}

TEST(Layerize, DependentGatesSerialize)
{
    Circuit c(2, 0);
    c.append(Gate::h(0));
    c.append(Gate::cx(0, 1));
    c.append(Gate::h(1));
    const LayeredCircuit layered = layerize(c);
    ASSERT_EQ(layered.layers.size(), 3u);
    EXPECT_EQ(layered.numGates(), 3u);
}

TEST(Layerize, NoQubitConflictWithinLayers)
{
    Rng rng(1);
    const Graph g = random3RegularGraph(8, rng);
    const Circuit c = qaoaCircuit(g, 2).bind({0.1, 0.2, 0.3, 0.4});
    const LayeredCircuit layered = layerize(c);
    EXPECT_EQ(layered.numGates(), c.numGates());
    for (const auto& layer : layered.layers) {
        std::vector<int> used;
        for (const Gate& gate : layer) {
            used.push_back(gate.qubits[0]);
            if (gateArity(gate.kind) == 2)
                used.push_back(gate.qubits[1]);
        }
        std::sort(used.begin(), used.end());
        EXPECT_TRUE(std::adjacent_find(used.begin(), used.end()) ==
                    used.end());
    }
}

TEST(Layerize, FlattenPreservesSemantics)
{
    Rng rng(2);
    const Graph g = random3RegularGraph(6, rng);
    const Circuit c = qaoaCircuit(g, 1).bind({0.4, -0.7});
    const Circuit flat = layerize(c).flatten();

    Statevector a(6), b(6);
    a.run(c);
    b.run(flat);
    EXPECT_NEAR(std::abs(a.innerProduct(b)), 1.0, 1e-10);
}

TEST(Dd, InsertionIsLogicallyIdentity)
{
    // Without noise, the DD-decorated circuit implements the same
    // state up to global phase... exactly the same state, since X X
    // pairs cancel and idle RZ is absent.
    Circuit c(3, 0);
    c.append(Gate::h(0));
    c.append(Gate::cx(0, 1));
    c.append(Gate::cx(1, 2));
    c.append(Gate::ry(0, 0.3));

    const LayeredCircuit plain = layerize(c);
    const LayeredCircuit with_dd = insertDynamicalDecoupling(plain);
    EXPECT_GT(with_dd.numGates(), plain.numGates());

    Statevector a(3), b(3);
    a.run(plain.flatten());
    b.run(with_dd.flatten());
    EXPECT_NEAR(std::abs(a.innerProduct(b)), 1.0, 1e-10);
}

TEST(Dd, PairsInsertedPerIdleWindow)
{
    // Qubit 2 idles for the 2 layers qubits 0/1 are busy.
    Circuit c(3, 0);
    c.append(Gate::h(0));
    c.append(Gate::h(1));
    c.append(Gate::h(2));
    c.append(Gate::cx(0, 1));
    c.append(Gate::rz(0, 0.5));
    c.append(Gate::rz(1, 0.5));
    c.append(Gate::cx(1, 2));
    const LayeredCircuit plain = layerize(c);
    const LayeredCircuit with_dd = insertDynamicalDecoupling(plain);
    // Exactly one idle window of length >= 2 (qubit 2) -> 2 X gates.
    EXPECT_EQ(with_dd.numGates(), plain.numGates() + 2);
}

TEST(Dd, EchoesCoherentIdleDephasing)
{
    // With coherent idle error and clean gates, DD must recover the
    // ideal expectation value.
    Rng rng(3);
    const Graph g = random3RegularGraph(6, rng);
    const PauliSum h = maxcutHamiltonian(g);
    const Circuit c = qaoaCircuit(g, 1);
    const std::vector<double> params{0.3, -0.6};

    StatevectorCost ideal(c, h);
    const double target = ideal.evaluate(params);

    const double idle_phase = 0.15;
    LayeredDensityCost without(c, h, NoiseModel::idealModel(),
                               idle_phase, false);
    LayeredDensityCost with(c, h, NoiseModel::idealModel(), idle_phase,
                            true);
    const double err_without = std::abs(without.evaluate(params) - target);
    const double err_with = std::abs(with.evaluate(params) - target);
    // Odd-length idle windows cannot be perfectly balanced by two
    // layer-granular pulses, so the echo is large but not exact.
    EXPECT_LT(err_with, 0.3 * err_without);
}

TEST(Dd, CanDoMoreHarmThanGoodWithNoisyGates)
{
    // The paper's warning: when gates are noisy and idle dephasing is
    // weak, the extra X gates cost more than the echo saves.
    Rng rng(4);
    const Graph g = random3RegularGraph(6, rng);
    const PauliSum h = maxcutHamiltonian(g);
    const Circuit c = qaoaCircuit(g, 1);
    const std::vector<double> params{0.3, -0.6};

    StatevectorCost ideal(c, h);
    const double target = ideal.evaluate(params);

    const NoiseModel noisy_gates = NoiseModel::depolarizing(0.01, 0.0);
    const double weak_idle = 0.002;
    LayeredDensityCost without(c, h, noisy_gates, weak_idle, false);
    LayeredDensityCost with(c, h, noisy_gates, weak_idle, true);
    EXPECT_GT(std::abs(with.evaluate(params) - target),
              std::abs(without.evaluate(params) - target));
}

} // namespace
