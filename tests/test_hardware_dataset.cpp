/**
 * @file
 * Tests for the synthetic hardware-landscape generator (the Google
 * Sycamore dataset substitute).
 */

#include <gtest/gtest.h>

#include <cmath>

#include "src/backend/analytic_qaoa.h"
#include "src/backend/hardware_dataset.h"
#include "src/common/stats.h"
#include "src/graph/generators.h"
#include "src/landscape/metrics.h"
#include "src/landscape/sparsity.h"

namespace {

using namespace oscar;

Graph
testGraph()
{
    Rng rng(3);
    return random3RegularGraph(12, rng);
}

TEST(HardwareDataset, ShapeMatchesGrid)
{
    const GridSpec grid = GridSpec::qaoaP1(50, 50);
    const Landscape ls =
        syntheticHardwareLandscape(testGraph(), grid, {});
    EXPECT_EQ(ls.numPoints(), 2500u);
    EXPECT_EQ(ls.grid().shape(), grid.shape());
}

TEST(HardwareDataset, Deterministic)
{
    const GridSpec grid = GridSpec::qaoaP1(20, 20);
    HardwareDatasetOptions opts;
    opts.seed = 5;
    const Landscape a = syntheticHardwareLandscape(testGraph(), grid,
                                                   opts);
    const Landscape b = syntheticHardwareLandscape(testGraph(), grid,
                                                   opts);
    for (std::size_t i = 0; i < a.numPoints(); ++i)
        EXPECT_DOUBLE_EQ(a.value(i), b.value(i));
}

TEST(HardwareDataset, DampingContractsTowardMixedEnergy)
{
    const Graph g = testGraph();
    const GridSpec grid = GridSpec::qaoaP1(20, 20);

    HardwareDatasetOptions clean;
    clean.damping = 1.0;
    clean.correlatedNoise = 0.0;
    clean.whiteNoise = 0.0;
    HardwareDatasetOptions damped = clean;
    damped.damping = 0.4;

    const Landscape full = syntheticHardwareLandscape(g, grid, clean);
    const Landscape contracted =
        syntheticHardwareLandscape(g, grid, damped);
    EXPECT_NEAR(stats::stddev(contracted.values().flat()),
                0.4 * stats::stddev(full.values().flat()), 1e-9);
}

TEST(HardwareDataset, CleanConfigEqualsAnalyticLandscape)
{
    const Graph g = testGraph();
    const GridSpec grid = GridSpec::qaoaP1(15, 15);
    HardwareDatasetOptions clean;
    clean.damping = 1.0;
    clean.correlatedNoise = 0.0;
    clean.whiteNoise = 0.0;
    const Landscape hw = syntheticHardwareLandscape(g, grid, clean);

    AnalyticQaoaCost cost(g);
    const Landscape ideal = Landscape::gridSearch(grid, cost);
    for (std::size_t i = 0; i < hw.numPoints(); ++i)
        EXPECT_NEAR(hw.value(i), ideal.value(i), 1e-9);
}

TEST(HardwareDataset, WhiteNoiseRaisesRoughness)
{
    const Graph g = testGraph();
    const GridSpec grid = GridSpec::qaoaP1(30, 30);
    HardwareDatasetOptions quiet;
    quiet.whiteNoise = 0.0;
    HardwareDatasetOptions loud;
    loud.whiteNoise = 0.4;
    const Landscape a = syntheticHardwareLandscape(g, grid, quiet);
    const Landscape b = syntheticHardwareLandscape(g, grid, loud);
    EXPECT_GT(secondDerivativeMetric(b.values()),
              secondDerivativeMetric(a.values()));
}

TEST(HardwareDataset, CorrelatedNoiseStaysLowFrequency)
{
    // Drift-only corruption should leave the landscape highly sparse
    // in the DCT domain; white noise should not. The landscape's DC
    // component dominates raw energy, so compare mean-centered values.
    const Graph g = testGraph();
    const GridSpec grid = GridSpec::qaoaP1(32, 32);

    HardwareDatasetOptions drift;
    drift.correlatedNoise = 0.5;
    drift.whiteNoise = 0.0;
    HardwareDatasetOptions white;
    white.correlatedNoise = 0.0;
    white.whiteNoise = 0.5;

    auto centered = [](Landscape ls) {
        const double mean = stats::mean(ls.values().flat());
        for (std::size_t i = 0; i < ls.numPoints(); ++i)
            ls.values()[i] -= mean;
        return ls;
    };
    const Landscape a =
        centered(syntheticHardwareLandscape(g, grid, drift));
    const Landscape b =
        centered(syntheticHardwareLandscape(g, grid, white));
    EXPECT_LT(dctSparsityFraction(a.values(), 0.99),
              dctSparsityFraction(b.values(), 0.99));
}

TEST(HardwareDataset, RejectsNonRank2Grid)
{
    const GridSpec grid = GridSpec::qaoaP2(4, 4);
    EXPECT_THROW(syntheticHardwareLandscape(testGraph(), grid, {}),
                 std::invalid_argument);
}

} // namespace
