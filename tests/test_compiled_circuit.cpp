/**
 * @file
 * Tests for the compiled-circuit kernel layer:
 *
 *  - lowering equivalence: the compiled schedule reproduces the
 *    per-gate reference execution for every ansatz family,
 *  - 1q fusion merges constant runs without changing the state,
 *  - diagonal fast paths match the generic kernels,
 *  - the recorded parameter frontier (first-use positions, frontier
 *    levels, shared prefix lengths) is correct,
 *  - segmented replay through checkpoints is bit-identical to a
 *    straight run (the prefix-cache determinism argument),
 *  - super-kernel fusion: fused replay agrees with unfused replay
 *    within rounding, is bit-identical to itself across
 *    frontier-aligned segmentation (units never straddle frontier
 *    levels), and degrades deterministically on mid-unit cuts,
 *  - the density-matrix bound path matches the legacy bind() path.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "src/ansatz/qaoa.h"
#include "src/ansatz/two_local.h"
#include "src/ansatz/uccsd.h"
#include "src/graph/generators.h"
#include "src/quantum/compiled_circuit.h"
#include "src/quantum/density_matrix.h"
#include "src/quantum/kernels.h"
#include "src/quantum/statevector.h"

namespace oscar {
namespace {

/** Reference execution: per-gate resolve-and-apply (the seed's loop). */
Statevector
referenceRun(const Circuit& circuit, const std::vector<double>& params)
{
    Statevector state(circuit.numQubits());
    for (const Gate& g : circuit.gates()) {
        Gate resolved = g;
        resolved.angle = g.resolvedAngle(params);
        resolved.paramIndex = -1;
        state.applyGate(resolved);
    }
    return state;
}

void
expectStatesNear(const Statevector& a, const Statevector& b, double tol)
{
    ASSERT_EQ(a.dim(), b.dim());
    for (std::size_t i = 0; i < a.dim(); ++i) {
        EXPECT_NEAR(a.amp(i).real(), b.amp(i).real(), tol) << "amp " << i;
        EXPECT_NEAR(a.amp(i).imag(), b.amp(i).imag(), tol) << "amp " << i;
    }
}

std::vector<double>
rampParams(int n)
{
    std::vector<double> p(n);
    for (int j = 0; j < n; ++j)
        p[j] = 0.3 + 0.17 * j;
    return p;
}

TEST(CompiledCircuit, QaoaLoweringMatchesReference)
{
    Rng rng(3);
    const Graph g = random3RegularGraph(6, rng);
    const Circuit circuit = qaoaCircuit(g, 2);
    const auto params = rampParams(circuit.numParams());

    Statevector compiled_state(circuit.numQubits());
    CompiledCircuit compiled(circuit);
    compiled.run(compiled_state, params);

    expectStatesNear(compiled_state, referenceRun(circuit, params), 1e-12);
}

TEST(CompiledCircuit, TwoLocalLoweringMatchesReference)
{
    const Circuit circuit = twoLocalCircuit(4, 2);
    const auto params = rampParams(circuit.numParams());

    Statevector state(circuit.numQubits());
    CompiledCircuit(circuit).run(state, params);
    expectStatesNear(state, referenceRun(circuit, params), 1e-12);
}

TEST(CompiledCircuit, MixedGateZooMatchesReference)
{
    // Every gate kind, including fusable constant runs and diagonal
    // fast paths.
    Circuit circuit(3, 2);
    circuit.append(Gate::h(0));
    circuit.append(Gate::s(0));   // fuses into H
    circuit.append(Gate::z(1));
    circuit.append(Gate::sdg(1)); // diagonal fusion product
    circuit.append(Gate::x(2));
    circuit.append(Gate::y(2));
    circuit.append(Gate::rz(2, 0.4));
    circuit.append(Gate::cx(0, 1));
    circuit.append(Gate::rx(0, -0.7));
    circuit.append(Gate::cz(1, 2));
    circuit.append(Gate::swap(0, 2));
    circuit.append(Gate::rzz(0, 1, 0.9));
    circuit.append(Gate::ryParam(1, 0));
    circuit.append(Gate::h(1));
    circuit.append(Gate::rzParam(2, 1, -2.0));
    const std::vector<double> params = {0.55, -1.2};

    Statevector state(3);
    CompiledCircuit(circuit).run(state, params);
    expectStatesNear(state, referenceRun(circuit, params), 1e-12);
}

TEST(CompiledCircuit, FusionMergesConstantRuns)
{
    Circuit circuit(2, 1);
    circuit.append(Gate::h(0));
    circuit.append(Gate::s(0));
    circuit.append(Gate::h(0));   // 3-run on qubit 0 -> 1 op
    circuit.append(Gate::h(1));
    circuit.append(Gate::cx(0, 1));
    circuit.append(Gate::x(1));
    circuit.append(Gate::y(1));   // 2-run after the CX window break
    circuit.append(Gate::rxParam(0, 0));

    const CompiledCircuit fused(circuit);
    EXPECT_EQ(fused.fusedGateCount(), 3u);
    EXPECT_EQ(fused.numOps(), circuit.numGates() - 3);

    const CompiledCircuit unfused(circuit, CompileOptions{.fuse1q = false});
    EXPECT_EQ(unfused.fusedGateCount(), 0u);
    EXPECT_EQ(unfused.numOps(), circuit.numGates());

    const std::vector<double> params = {0.81};
    Statevector a(2), b(2);
    fused.run(a, params);
    unfused.run(b, params);
    expectStatesNear(a, b, 1e-12);
}

TEST(CompiledCircuit, ParameterFrontierRecordsFirstUse)
{
    Rng rng(5);
    const Graph g = random3RegularGraph(6, rng);
    const int n = g.numVertices();
    const std::size_t edges = g.numEdges();
    const Circuit circuit = qaoaCircuit(g, 2);
    const CompiledCircuit compiled(circuit);

    // Layout: H^n | RZZ(g0)^E RX(b0)^n | RZZ(g1)^E RX(b1)^n, with
    // params [b0, b1, g0, g1]. The H layer is the constant prefix.
    const std::size_t nu = static_cast<std::size_t>(n);
    ASSERT_EQ(compiled.numOps(), circuit.numGates());
    EXPECT_EQ(compiled.constantPrefixLength(), nu);
    EXPECT_EQ(compiled.paramFirstUse(2), nu);              // gamma_0
    EXPECT_EQ(compiled.paramFirstUse(0), nu + edges);      // beta_0
    EXPECT_EQ(compiled.paramFirstUse(3), 2 * nu + edges);  // gamma_1
    EXPECT_EQ(compiled.paramFirstUse(1), 2 * nu + 2 * edges); // beta_1

    const std::vector<std::size_t> expected_levels = {
        nu, nu + edges, 2 * nu + edges, 2 * nu + 2 * edges};
    EXPECT_EQ(compiled.frontierLevels(), expected_levels);

    // Batch order: circuit-first-use order gamma0, beta0, gamma1, beta1.
    EXPECT_EQ(compiled.parameterOrder(), (std::vector<int>{2, 0, 3, 1}));

    // Params used before each level.
    EXPECT_TRUE(compiled.paramsUsedBefore(nu).empty());
    EXPECT_EQ(compiled.paramsUsedBefore(nu + edges),
              (std::vector<int>{2}));
    EXPECT_EQ(compiled.paramsUsedBefore(2 * nu + edges),
              (std::vector<int>{0, 2}));

    // Shared prefix between two bindings.
    const std::vector<double> p1 = {0.1, 0.2, 0.3, 0.4};
    std::vector<double> p2 = p1;
    EXPECT_EQ(compiled.sharedPrefixLength(p1, p2), compiled.numOps());
    p2[1] = 0.9; // beta_1 differs -> share everything before its use
    EXPECT_EQ(compiled.sharedPrefixLength(p1, p2), 2 * nu + 2 * edges);
    p2[2] = 0.8; // gamma_0 differs too -> only the H layer shared
    EXPECT_EQ(compiled.sharedPrefixLength(p1, p2), nu);
}

TEST(CompiledCircuit, SegmentedReplayIsBitIdentical)
{
    // The prefix-cache core invariant: running [0, L) then [L, end)
    // from a copied checkpoint reproduces the straight run bit for
    // bit, for every frontier level L.
    Rng rng(9);
    const Graph g = random3RegularGraph(6, rng);
    const Circuit circuit = qaoaCircuit(g, 2);
    const CompiledCircuit compiled(circuit);
    const auto params = rampParams(circuit.numParams());

    Statevector straight(circuit.numQubits());
    compiled.run(straight, params);

    for (std::size_t level : compiled.frontierLevels()) {
        Statevector prefix(circuit.numQubits());
        compiled.runRange(prefix.amps().data(), prefix.dim(), 0, level,
                          params.data());
        Statevector resumed(circuit.numQubits());
        resumed.amps() = prefix.amps(); // checkpoint copy
        compiled.runRange(resumed.amps().data(), resumed.dim(), level,
                          compiled.numOps(), params.data());
        for (std::size_t i = 0; i < straight.dim(); ++i)
            EXPECT_EQ(straight.amp(i), resumed.amp(i))
                << "level " << level << " amp " << i;
    }
}

TEST(CompiledCircuit, FusedReplayMatchesUnfusedWithinTolerance)
{
    // Fusion collapses op runs into dense / diagonal-table
    // super-kernels; the collapsed arithmetic is reassociated, so
    // fused and unfused replays agree to rounding, not bitwise.
    Rng rng(13);
    const Graph g = random3RegularGraph(8, rng);
    for (const Circuit& circuit :
         {qaoaCircuit(g, 2), twoLocalCircuit(6, 3)}) {
        const auto params = rampParams(circuit.numParams());
        CompiledCircuit plain(circuit,
                              CompileOptions{.blockWindow = 5});
        CompiledCircuit fused(
            circuit, CompileOptions{.blockWindow = 5, .fuseWindow = 5});
        ASSERT_GT(fused.numFusedUnits(), 0u);
        ASSERT_GE(fused.fusedOpCount(), 2 * fused.numFusedUnits());
        EXPECT_EQ(plain.numFusedUnits(), 0u);

        Statevector a(circuit.numQubits()), b(circuit.numQubits());
        plain.run(a, params);
        fused.run(b, params);
        expectStatesNear(a, b, 1e-12);
    }
}

TEST(CompiledCircuit, FusedSegmentedReplayIsBitIdentical)
{
    // The fusion determinism contract: units never straddle frontier
    // levels, so cutting the replay at any frontier level (checkpoint
    // resume, batched suffix replay) executes the identical unit
    // sequence and reproduces the straight fused run bit for bit.
    Rng rng(17);
    const Graph g = random3RegularGraph(8, rng);
    const Circuit circuit = qaoaCircuit(g, 2);
    CompiledCircuit fused(
        circuit, CompileOptions{.blockWindow = 4, .fuseWindow = 4});
    ASSERT_GT(fused.numFusedUnits(), 0u);
    const auto params = rampParams(circuit.numParams());

    Statevector straight(circuit.numQubits());
    fused.run(straight, params);

    for (std::size_t level : fused.frontierLevels()) {
        Statevector resumed(circuit.numQubits());
        fused.runRange(resumed.amps().data(), resumed.dim(), 0, level,
                       params.data());
        fused.runRange(resumed.amps().data(), resumed.dim(), level,
                       fused.numOps(), params.data());
        for (std::size_t i = 0; i < straight.dim(); ++i)
            EXPECT_EQ(straight.amp(i), resumed.amp(i))
                << "level " << level << " amp " << i;
    }
}

TEST(CompiledCircuit, MidUnitCutFallsBackDeterministically)
{
    // A cut through the middle of a fused unit (never produced by the
    // backends, which cut at frontier levels) makes that unit fall
    // back to per-op replay for the clipped calls: the result is
    // still correct to rounding and deterministic — the same cut
    // twice is bitwise-identical.
    const int n = 6;
    Circuit circuit(n, 1);
    for (int q = 0; q < n; ++q)
        circuit.append(Gate::h(q)); // one constant dense unit
    for (int q = 0; q + 1 < n; ++q)
        circuit.append(Gate::rzz(q, q + 1, 0.3 + 0.1 * q));
    circuit.append(Gate::rxParam(0, 0));
    const std::vector<double> params = {0.77};

    CompiledCircuit fused(
        circuit, CompileOptions{.blockWindow = 4, .fuseWindow = 4});
    ASSERT_GT(fused.numFusedUnits(), 0u);

    Statevector straight(n);
    fused.run(straight, params);

    for (std::size_t cut = 1; cut + 1 < fused.numOps(); ++cut) {
        Statevector first(n), second(n);
        for (Statevector* sv : {&first, &second}) {
            fused.runRange(sv->amps().data(), sv->dim(), 0, cut,
                           params.data());
            fused.runRange(sv->amps().data(), sv->dim(), cut,
                           fused.numOps(), params.data());
        }
        for (std::size_t i = 0; i < straight.dim(); ++i) {
            EXPECT_EQ(first.amp(i), second.amp(i))
                << "cut " << cut << " amp " << i;
            EXPECT_NEAR(straight.amp(i).real(), first.amp(i).real(),
                        1e-12)
                << "cut " << cut << " amp " << i;
            EXPECT_NEAR(straight.amp(i).imag(), first.amp(i).imag(),
                        1e-12)
                << "cut " << cut << " amp " << i;
        }
    }
}

TEST(CompiledCircuit, FuseWindowCountsAndCounters)
{
    // Window bookkeeping: setFuseWindow rebuilds the plan, 0 clears
    // it, and ReplayCounters records one super-kernel execution per
    // active unit per replay with the collapsed op count.
    const int n = 6;
    Circuit circuit(n, 0);
    for (int q = 0; q < n; ++q)
        circuit.append(Gate::h(q));
    for (int q = 0; q + 1 < n; ++q)
        circuit.append(Gate::rzz(q, q + 1, 0.4));

    CompiledCircuit compiled(circuit,
                             CompileOptions{.blockWindow = 4});
    EXPECT_EQ(compiled.numFusedUnits(), 0u);
    compiled.setFuseWindow(4);
    EXPECT_EQ(compiled.fuseWindow(), 4);
    ASSERT_GT(compiled.numFusedUnits(), 0u);

    Statevector sv(n);
    ReplayCounters counters;
    compiled.runRange(sv.amps().data(), sv.dim(), 0, compiled.numOps(),
                      nullptr, kernels::defaultKernelTable(),
                      &counters);
    EXPECT_EQ(counters.fusedSuperKernels, compiled.numFusedUnits());
    EXPECT_EQ(counters.fusedOpsCollapsed, compiled.fusedOpCount());

    compiled.setFuseWindow(0);
    EXPECT_EQ(compiled.fuseWindow(), 0);
    EXPECT_EQ(compiled.numFusedUnits(), 0u);
    EXPECT_EQ(compiled.fusedOpCount(), 0u);
}

TEST(CompiledCircuit, StatevectorBoundRunUsesCompiledSchedule)
{
    // Statevector::run(circuit, params) == explicit compile-and-run,
    // bit for bit (both lower through the same schedule).
    const Circuit circuit = twoLocalCircuit(5, 2);
    const auto params = rampParams(circuit.numParams());

    Statevector via_run(5);
    via_run.run(circuit, params);

    Statevector via_compiled(5);
    CompiledCircuit(circuit).run(via_compiled, params);

    for (std::size_t i = 0; i < via_run.dim(); ++i)
        EXPECT_EQ(via_run.amp(i), via_compiled.amp(i));
}

TEST(CompiledCircuit, DensityMatrixBoundRunMatchesBindPath)
{
    Rng rng(11);
    const Graph g = random3RegularGraph(4, rng);
    const Circuit circuit = qaoaCircuit(g, 1);
    const auto params = rampParams(circuit.numParams());
    NoiseModel noise;
    noise.p1 = 0.002;
    noise.p2 = 0.01;

    DensityMatrix bound(circuit.numQubits());
    bound.run(circuit.bind(params), noise);

    DensityMatrix compiled(circuit.numQubits());
    compiled.run(circuit, params, noise);

    const auto pb = bound.probabilities();
    const auto pc = compiled.probabilities();
    ASSERT_EQ(pb.size(), pc.size());
    for (std::size_t i = 0; i < pb.size(); ++i)
        EXPECT_NEAR(pb[i], pc[i], 1e-12);
    EXPECT_NEAR(bound.purity(), compiled.purity(), 1e-12);
}

TEST(CompiledCircuit, DensityMatrixRejectsFusedSchedules)
{
    Circuit circuit(2, 0);
    circuit.append(Gate::h(0));
    circuit.append(Gate::s(0)); // fuses
    const CompiledCircuit fused(circuit);
    ASSERT_GT(fused.fusedGateCount(), 0u);

    DensityMatrix rho(2);
    EXPECT_THROW(rho.run(fused, {}, NoiseModel{}), std::invalid_argument);
}

TEST(CompiledCircuit, UccsdLoweringMatchesReference)
{
    // The deepest ansatz in the library (plenty of fusable constant
    // basis-change gates around the CX ladders).
    const Circuit circuit = uccsdCircuit(4);
    const auto params = rampParams(circuit.numParams());

    Statevector state(circuit.numQubits());
    CompiledCircuit(circuit).run(state, params);
    expectStatesNear(state, referenceRun(circuit, params), 1e-11);
}

} // namespace
} // namespace oscar
