/**
 * @file
 * Tests for the multi-QPU subsystem: latency model, scheduler, noise
 * compensation model, and eager reconstruction.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <memory>

#include "src/backend/analytic_qaoa.h"
#include "src/common/stats.h"
#include "src/graph/generators.h"
#include "src/parallel/eager.h"
#include "src/parallel/ncm.h"
#include "src/parallel/scheduler.h"

namespace oscar {
namespace {

std::vector<QpuDevice>
makeDevicePair(const Graph& graph, double tail_sigma = 0.0)
{
    // The paper's Fig. 8 noise configuration: QPU-1 (0.1%, 0.5%),
    // QPU-2 (0.3%, 0.7%).
    std::vector<QpuDevice> devices;
    {
        QpuDevice d;
        d.name = "qpu-1";
        d.noise = NoiseModel::depolarizing(0.001, 0.005);
        d.cost = std::make_shared<AnalyticQaoaCost>(graph, d.noise);
        d.latency = {0.0, 1.0, tail_sigma};
        devices.push_back(std::move(d));
    }
    {
        QpuDevice d;
        d.name = "qpu-2";
        d.noise = NoiseModel::depolarizing(0.003, 0.007);
        d.cost = std::make_shared<AnalyticQaoaCost>(graph, d.noise);
        d.latency = {0.0, 1.0, tail_sigma};
        devices.push_back(std::move(d));
    }
    return devices;
}

TEST(LatencyModel, DeterministicWithoutTail)
{
    Rng rng(1);
    const LatencyModel m{2.0, 3.0, 0.0};
    EXPECT_DOUBLE_EQ(m.sample(rng), 5.0);
}

TEST(LatencyModel, HeavyTailProducesLargeRatios)
{
    Rng rng(2);
    const LatencyModel m{0.0, 1.0, 1.2};
    std::vector<double> lat;
    for (int i = 0; i < 5000; ++i)
        lat.push_back(m.sample(rng));
    const double med = stats::median(lat);
    const double p99 = stats::quantile(lat, 0.99);
    // The paper reports 10x-30x tail-to-median latency ratios.
    EXPECT_GT(p99 / med, 8.0);
    EXPECT_LT(p99 / med, 60.0);
}

TEST(Scheduler, RoundRobinBalancesLoad)
{
    Rng rng(3);
    const Graph g = random3RegularGraph(8, rng);
    auto devices = makeDevicePair(g);
    const GridSpec grid = GridSpec::qaoaP1(10, 10);

    std::vector<std::size_t> indices;
    for (std::size_t i = 0; i < 40; ++i)
        indices.push_back(i);
    const auto run =
        runParallelSampling(grid, devices, indices, rng);
    EXPECT_EQ(run.perDeviceCounts[0], 20u);
    EXPECT_EQ(run.perDeviceCounts[1], 20u);
    EXPECT_EQ(run.samples.size(), 40u);
}

TEST(Scheduler, FractionSplitHonorsShares)
{
    Rng rng(4);
    const Graph g = random3RegularGraph(8, rng);
    auto devices = makeDevicePair(g);
    const GridSpec grid = GridSpec::qaoaP1(10, 10);

    std::vector<std::size_t> indices(50);
    for (std::size_t i = 0; i < 50; ++i)
        indices[i] = i;
    const auto run = runParallelSampling(grid, devices, indices, rng,
                                         Assignment::FractionSplit,
                                         {0.2, 0.8});
    EXPECT_EQ(run.perDeviceCounts[0], 10u);
    EXPECT_EQ(run.perDeviceCounts[1], 40u);
}

TEST(Scheduler, ParallelMakespanBeatsSerial)
{
    // k devices with deterministic latency: makespan ~ n/k jobs.
    Rng rng(5);
    const Graph g = random3RegularGraph(8, rng);
    auto devices = makeDevicePair(g);
    const GridSpec grid = GridSpec::qaoaP1(10, 10);

    std::vector<std::size_t> indices(60);
    for (std::size_t i = 0; i < 60; ++i)
        indices[i] = i;
    const auto run = runParallelSampling(grid, devices, indices, rng);
    EXPECT_NEAR(run.makespan, 30.0, 1e-9); // 60 jobs over 2 devices
}

TEST(Scheduler, ValuesReflectDeviceNoise)
{
    // The same grid point measured on the noisier device must be
    // systematically closer to the mixed-state energy.
    Rng rng(6);
    const Graph g = random3RegularGraph(12, rng);
    auto devices = makeDevicePair(g);
    const GridSpec grid = GridSpec::qaoaP1(10, 10);

    // Run the full grid on both devices via two single-device runs.
    std::vector<std::size_t> indices(grid.numPoints());
    for (std::size_t i = 0; i < indices.size(); ++i)
        indices[i] = i;

    std::vector<QpuDevice> only1{devices[0]};
    std::vector<QpuDevice> only2{devices[1]};
    const auto run1 = runParallelSampling(grid, only1, indices, rng);
    const auto run2 = runParallelSampling(grid, only2, indices, rng);

    double mixed_energy = 0.0;
    for (const Edge& e : g.edges())
        mixed_energy -= e.weight / 2.0;

    double dev1 = 0.0, dev2 = 0.0;
    for (std::size_t i = 0; i < indices.size(); ++i) {
        dev1 += std::abs(run1.samples[i].value - mixed_energy);
        dev2 += std::abs(run2.samples[i].value - mixed_energy);
    }
    EXPECT_GT(dev1, dev2); // noisier device is flatter
}

TEST(Ncm, RecoversExactAffineMap)
{
    std::vector<double> secondary, reference;
    for (int i = 0; i < 50; ++i) {
        const double x = 0.1 * i;
        secondary.push_back(x);
        reference.push_back(1.7 * x - 0.3);
    }
    const auto ncm = NoiseCompensationModel::train(secondary, reference);
    EXPECT_NEAR(ncm.slope(), 1.7, 1e-10);
    EXPECT_NEAR(ncm.intercept(), -0.3, 1e-10);
    EXPECT_NEAR(ncm.transform(2.0), 3.1, 1e-10);
}

TEST(Ncm, TrainedOnDevicesReducesCrossDeviceError)
{
    Rng rng(7);
    const Graph g = random3RegularGraph(12, rng);
    auto devices = makeDevicePair(g);
    const GridSpec grid = GridSpec::qaoaP1(16, 24);

    const auto ncm = NoiseCompensationModel::trainOnDevices(
        grid, devices[0], devices[1], 0.05, rng);

    // On held-out points the transformed QPU-2 values should be much
    // closer to QPU-1 than the raw values are.
    double raw_err = 0.0, fixed_err = 0.0;
    for (std::size_t i = 0; i < grid.numPoints(); i += 13) {
        const auto params = grid.pointAt(i);
        const double v1 = devices[0].cost->evaluate(params);
        const double v2 = devices[1].cost->evaluate(params);
        raw_err += (v1 - v2) * (v1 - v2);
        const double t = ncm.transform(v2);
        fixed_err += (v1 - t) * (v1 - t);
    }
    EXPECT_LT(fixed_err, 0.05 * raw_err);
}

TEST(Ncm, TransformSampleSet)
{
    const auto ncm = NoiseCompensationModel::train({0.0, 1.0}, {1.0, 3.0});
    SampleSet set;
    set.indices = {0, 1};
    set.values = {0.5, 2.0};
    const SampleSet out = ncm.transform(set);
    EXPECT_NEAR(out.values[0], 2.0, 1e-10);
    EXPECT_NEAR(out.values[1], 5.0, 1e-10);
}

TEST(Eager, CutoffDropsStragglers)
{
    Rng rng(8);
    const Graph g = random3RegularGraph(8, rng);
    auto devices = makeDevicePair(g, 1.2); // heavy tail
    const GridSpec grid = GridSpec::qaoaP1(10, 10);

    std::vector<std::size_t> indices(80);
    for (std::size_t i = 0; i < 80; ++i)
        indices[i] = i;
    const auto run = runParallelSampling(grid, devices, indices, rng);

    const auto outcome = eagerCutoffQuantile(run, 0.9);
    EXPECT_NEAR(outcome.retainedFraction, 0.9, 0.05);
    EXPECT_LE(outcome.deadline, outcome.fullMakespan);
    EXPECT_EQ(outcome.retained.size() + outcome.dropped,
              run.samples.size());
}

TEST(Eager, FullQuantileKeepsEverything)
{
    Rng rng(9);
    const Graph g = random3RegularGraph(8, rng);
    auto devices = makeDevicePair(g);
    const GridSpec grid = GridSpec::qaoaP1(8, 8);
    std::vector<std::size_t> indices(16);
    for (std::size_t i = 0; i < 16; ++i)
        indices[i] = i;
    const auto run = runParallelSampling(grid, devices, indices, rng);
    const auto outcome = eagerCutoffQuantile(run, 1.0);
    EXPECT_EQ(outcome.dropped, 0u);
    EXPECT_DOUBLE_EQ(outcome.retainedFraction, 1.0);
}

} // namespace
} // namespace oscar
