/**
 * @file
 * Tests for ansatz builders: QAOA, Two-local, UCCSD, and the generic
 * Pauli-exponential compilation.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "src/ansatz/qaoa.h"
#include "src/ansatz/two_local.h"
#include "src/ansatz/uccsd.h"
#include "src/common/rng.h"
#include "src/graph/generators.h"
#include "src/quantum/statevector.h"

namespace oscar {
namespace {

TEST(QaoaAnsatz, StructureForDepth1)
{
    Rng rng(1);
    const Graph g = random3RegularGraph(8, rng);
    const Circuit c = qaoaCircuit(g, 1);
    EXPECT_EQ(c.numQubits(), 8);
    EXPECT_EQ(c.numParams(), 2);
    // H per qubit + RZZ per edge + RX per qubit.
    EXPECT_EQ(c.numGates(), 8u + 12u + 8u);
    EXPECT_EQ(c.countTwoQubitGates(), g.numEdges());
}

TEST(QaoaAnsatz, ParameterCountScalesWithDepth)
{
    Rng rng(2);
    const Graph g = random3RegularGraph(6, rng);
    for (int p = 1; p <= 4; ++p)
        EXPECT_EQ(qaoaCircuit(g, p).numParams(), 2 * p);
}

TEST(QaoaAnsatz, ParameterIndexConvention)
{
    EXPECT_EQ(qaoaBetaIndex(0, 2), 0);
    EXPECT_EQ(qaoaBetaIndex(1, 2), 1);
    EXPECT_EQ(qaoaGammaIndex(0, 2), 2);
    EXPECT_EQ(qaoaGammaIndex(1, 2), 3);
    EXPECT_THROW(qaoaBetaIndex(2, 2), std::out_of_range);
}

TEST(QaoaAnsatz, ZeroParamsGivePlusState)
{
    Rng rng(3);
    const Graph g = random3RegularGraph(4, rng);
    Statevector sv(4);
    sv.run(qaoaCircuit(g, 1), {0.0, 0.0});
    const double amp = 1.0 / std::sqrt(16.0);
    for (std::size_t i = 0; i < sv.dim(); ++i)
        EXPECT_NEAR(std::abs(sv.amp(i)), amp, 1e-12);
}

TEST(TwoLocalAnsatz, ParamCountMatchesPaperTable2)
{
    // Table 2: n=4 -> 8 params (reps 1); n=6 -> 6 params (reps 0).
    EXPECT_EQ(twoLocalNumParams(4, 1), 8);
    EXPECT_EQ(twoLocalNumParams(6, 0), 6);
    EXPECT_EQ(twoLocalCircuit(4, 1).numParams(), 8);
    EXPECT_EQ(twoLocalCircuit(6, 0).numParams(), 6);
}

TEST(TwoLocalAnsatz, RepsZeroIsProductState)
{
    const Circuit c = twoLocalCircuit(3, 0);
    EXPECT_EQ(c.countTwoQubitGates(), 0u);
    EXPECT_EQ(c.numGates(), 3u);
}

TEST(TwoLocalAnsatz, EntanglerCountPerRep)
{
    const Circuit c = twoLocalCircuit(5, 2);
    EXPECT_EQ(c.countTwoQubitGates(), 2u * 4u); // (n-1) CZ per rep
}

TEST(PauliExponential, SingleYEqualsRy)
{
    // exp(-i t/2 Y) == RY(t).
    Circuit c(1, 1);
    appendPauliExponential(c, PauliString::fromLabel("Y"), 0);
    for (double t : {0.37, -1.4}) {
        Statevector a(1), b(1);
        a.run(c, {t});
        b.applyGate(Gate::ry(0, t));
        EXPECT_NEAR(std::abs(a.innerProduct(b)), 1.0, 1e-12) << t;
    }
}

TEST(PauliExponential, SingleXEqualsRx)
{
    Circuit c(1, 1);
    appendPauliExponential(c, PauliString::fromLabel("X"), 0);
    Statevector a(1), b(1);
    a.run(c, {0.9});
    b.applyGate(Gate::rx(0, 0.9));
    EXPECT_NEAR(std::abs(a.innerProduct(b)), 1.0, 1e-12);
}

TEST(PauliExponential, ZzEqualsRzz)
{
    Circuit c(2, 1);
    appendPauliExponential(c, PauliString::fromLabel("ZZ"), 0);
    Statevector a(2), b(2);
    a.applyGate(Gate::h(0));
    a.applyGate(Gate::h(1));
    b.applyGate(Gate::h(0));
    b.applyGate(Gate::h(1));
    a.run(c, {1.1});
    b.applyGate(Gate::rzz(0, 1, 1.1));
    EXPECT_NEAR(std::abs(a.innerProduct(b)), 1.0, 1e-12);
}

TEST(PauliExponential, XyStringIsUnitaryAndEntangles)
{
    Circuit c(2, 1);
    appendPauliExponential(c, PauliString::fromLabel("XY"), 0);
    Statevector sv(2);
    sv.run(c, {0.8});
    EXPECT_NEAR(sv.norm2(), 1.0, 1e-12);
    // exp(-i t/2 XY)|00> = cos(t/2)|00> + sin(t/2)|11> up to phases:
    // probability must have left |00>.
    EXPECT_LT(std::norm(sv.amp(0)), 1.0 - 1e-6);
}

TEST(PauliExponential, RejectsIdentity)
{
    Circuit c(2, 1);
    EXPECT_THROW(appendPauliExponential(c, PauliString(2), 0),
                 std::invalid_argument);
}

TEST(UccsdAnsatz, ParamCountsMatchPaperTable3)
{
    EXPECT_EQ(uccsdNumParams(2), 3); // H2
    EXPECT_EQ(uccsdNumParams(4), 8); // LiH
}

TEST(UccsdAnsatz, ZeroParamsIsReferenceState)
{
    const Circuit c = uccsdCircuit(2);
    Statevector sv(2);
    sv.run(c, {0.0, 0.0, 0.0});
    EXPECT_NEAR(std::norm(sv.amp(0)), 1.0, 1e-12);
}

TEST(UccsdAnsatz, NormPreservedAtRandomParams)
{
    const Circuit c = uccsdCircuit(4);
    Rng rng(4);
    std::vector<double> params(8);
    for (auto& p : params)
        p = rng.uniform(-1.5, 1.5);
    Statevector sv(4);
    sv.run(c, params);
    EXPECT_NEAR(sv.norm2(), 1.0, 1e-10);
}

} // namespace
} // namespace oscar
