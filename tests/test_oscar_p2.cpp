/**
 * @file
 * Integration tests for the depth-2 (rank-4) OSCAR workflow: 4-D
 * reconstruction through the concatenation fold and optimizer
 * pre-checking on the multilinear interpolant.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "src/ansatz/qaoa.h"
#include "src/backend/statevector_backend.h"
#include "src/core/oscar.h"
#include "src/graph/generators.h"
#include "src/hamiltonian/maxcut.h"
#include "src/interp/multilinear.h"
#include "src/common/stats.h"
#include "src/landscape/metrics.h"
#include "src/optimize/nelder_mead.h"

namespace {

using namespace oscar;

Landscape
p2Truth(int qubits, std::uint64_t seed)
{
    Rng rng(seed);
    const Graph g = random3RegularGraph(qubits, rng);
    StatevectorCost cost(qaoaCircuit(g, 2), maxcutHamiltonian(g));
    const GridSpec grid = GridSpec::qaoaP2(6, 8); // (6,6,8,8) = 2304
    return Landscape::gridSearch(grid, cost);
}

TEST(OscarP2, FourDReconstructionBeatsZeroBaseline)
{
    const Landscape truth = p2Truth(8, 21);
    OscarOptions options;
    options.samplingFraction = 0.15;
    const auto result = Oscar::reconstructFromLandscape(truth, options);
    EXPECT_EQ(result.reconstructed.grid().rank(), 4u);

    // Compare against predicting the mean everywhere.
    NdArray mean_pred(truth.values().shape());
    mean_pred.fill(stats::mean(truth.values().flat()));
    EXPECT_LT(nrmse(truth.values(), result.reconstructed.values()),
              0.6 * nrmse(truth.values(), mean_pred));
}

TEST(OscarP2, ErrorDecreasesWithSampling)
{
    const Landscape truth = p2Truth(8, 22);
    double prev = 1e9;
    for (double fraction : {0.05, 0.15, 0.35}) {
        OscarOptions options;
        options.samplingFraction = fraction;
        options.seed = 5;
        const auto result =
            Oscar::reconstructFromLandscape(truth, options);
        const double err =
            nrmse(truth.values(), result.reconstructed.values());
        EXPECT_LT(err, prev) << fraction;
        prev = err;
    }
}

TEST(OscarP2, OptimizerOnMultilinearInterpolantFindsGoodPoint)
{
    const Landscape truth = p2Truth(8, 23);
    OscarOptions options;
    options.samplingFraction = 0.25;
    const auto recon = Oscar::reconstructFromLandscape(truth, options);

    MultilinearLandscapeCost interp(recon.reconstructed);
    NelderMeadOptions nm_opts;
    nm_opts.maxIterations = 800;
    NelderMead nm(nm_opts);
    const auto run = nm.minimize(interp, {0.05, -0.05, 0.1, -0.1});

    // The optimizer's endpoint, evaluated on the TRUE landscape's
    // nearest grid point, should be in the best decile.
    const std::size_t idx =
        truth.grid().nearestIndex(run.bestParams);
    const double achieved = truth.value(idx);
    const double best = truth.values().min();
    const double q10 = stats::quantile(truth.values().flat(), 0.10);
    EXPECT_LE(achieved, q10);
    EXPECT_GE(achieved, best - 1e-9);
}

TEST(OscarP2, QueryAccountingMatchesSampleBudget)
{
    Rng rng(24);
    const Graph g = random3RegularGraph(8, rng);
    StatevectorCost cost(qaoaCircuit(g, 2), maxcutHamiltonian(g));
    const GridSpec grid = GridSpec::qaoaP2(6, 8);

    OscarOptions options;
    options.samplingFraction = 0.10;
    const auto result = Oscar::reconstruct(grid, cost, options);
    EXPECT_EQ(cost.numQueries(), result.queriesUsed);
    EXPECT_NEAR(result.querySpeedup, 10.0, 0.5);
}

} // namespace
