/**
 * @file
 * Tests for the orthonormal DCT-II transforms.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "src/common/rng.h"
#include "src/cs/dct.h"

namespace oscar {
namespace {

class DctRoundTrip : public ::testing::TestWithParam<std::size_t>
{
};

TEST_P(DctRoundTrip, InverseUndoesForward)
{
    const std::size_t n = GetParam();
    Dct1d dct(n);
    Rng rng(n);
    std::vector<double> x(n);
    for (auto& v : x)
        v = rng.normal();
    const auto c = dct.forward(x);
    const auto back = dct.inverse(c);
    for (std::size_t i = 0; i < n; ++i)
        EXPECT_NEAR(back[i], x[i], 1e-10);
}

TEST_P(DctRoundTrip, ParsevalEnergyPreserved)
{
    const std::size_t n = GetParam();
    Dct1d dct(n);
    Rng rng(2 * n + 1);
    std::vector<double> x(n);
    for (auto& v : x)
        v = rng.normal();
    const auto c = dct.forward(x);
    double ex = 0.0, ec = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
        ex += x[i] * x[i];
        ec += c[i] * c[i];
    }
    EXPECT_NEAR(ex, ec, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Lengths, DctRoundTrip,
                         ::testing::Values(1, 2, 3, 7, 16, 50, 100));

TEST(Dct1d, ConstantSignalHasOnlyDcCoefficient)
{
    Dct1d dct(32);
    std::vector<double> x(32, 3.0);
    const auto c = dct.forward(x);
    EXPECT_NEAR(c[0], 3.0 * std::sqrt(32.0), 1e-10);
    for (std::size_t k = 1; k < 32; ++k)
        EXPECT_NEAR(c[k], 0.0, 1e-10);
}

TEST(Dct1d, PureCosineIsOneCoefficient)
{
    // x_j = cos(pi (2j+1) k0 / (2n)) is exactly one DCT basis vector.
    const std::size_t n = 64, k0 = 5;
    Dct1d dct(n);
    std::vector<double> x(n);
    for (std::size_t j = 0; j < n; ++j) {
        x[j] = std::cos(std::numbers::pi * (2.0 * j + 1.0) * k0 /
                        (2.0 * n));
    }
    const auto c = dct.forward(x);
    for (std::size_t k = 0; k < n; ++k) {
        if (k == k0)
            EXPECT_GT(std::abs(c[k]), 1.0);
        else
            EXPECT_NEAR(c[k], 0.0, 1e-9) << k;
    }
}

TEST(Dct2d, RoundTrip)
{
    Dct2d dct(12, 17);
    Rng rng(9);
    NdArray x({12, 17});
    for (std::size_t i = 0; i < x.size(); ++i)
        x[i] = rng.normal();
    const NdArray back = dct.inverse(dct.forward(x));
    for (std::size_t i = 0; i < x.size(); ++i)
        EXPECT_NEAR(back[i], x[i], 1e-10);
}

TEST(Dct2d, SeparableProductSignal)
{
    // Outer product of two 1-D basis vectors -> single 2-D coefficient.
    const std::size_t nr = 16, nc = 24, kr = 3, kc = 7;
    Dct2d dct(nr, nc);
    NdArray x({nr, nc});
    for (std::size_t r = 0; r < nr; ++r) {
        for (std::size_t c = 0; c < nc; ++c) {
            x[r * nc + c] =
                std::cos(std::numbers::pi * (2.0 * r + 1.0) * kr /
                         (2.0 * nr)) *
                std::cos(std::numbers::pi * (2.0 * c + 1.0) * kc /
                         (2.0 * nc));
        }
    }
    const NdArray coef = dct.forward(x);
    std::size_t nonzero = 0;
    for (std::size_t i = 0; i < coef.size(); ++i)
        nonzero += std::abs(coef[i]) > 1e-9;
    EXPECT_EQ(nonzero, 1u);
    EXPECT_GT(std::abs(coef[kr * nc + kc]), 1.0);
}

TEST(Dct2d, LinearityProperty)
{
    Dct2d dct(8, 8);
    Rng rng(10);
    NdArray a({8, 8}), b({8, 8});
    for (std::size_t i = 0; i < 64; ++i) {
        a[i] = rng.normal();
        b[i] = rng.normal();
    }
    NdArray sum = a;
    sum += b;
    const NdArray ca = dct.forward(a);
    const NdArray cb = dct.forward(b);
    const NdArray csum = dct.forward(sum);
    for (std::size_t i = 0; i < 64; ++i)
        EXPECT_NEAR(csum[i], ca[i] + cb[i], 1e-10);
}

} // namespace
} // namespace oscar
