/**
 * @file
 * Tests for the batched ExecutionEngine and the batch/ordinal contract
 * of CostFunction:
 *
 *  - evaluateBatch matches per-point evaluate bit for bit on every
 *    backend, including the stochastic ones (ordinal-keyed streams);
 *  - multi-threaded engine execution is bit-identical to serial;
 *  - query counting is atomic and batch-aware;
 *  - the full Oscar::reconstruct pipeline is bit-identical for 1 and
 *    N threads at a fixed seed.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <thread>

#include "src/ansatz/qaoa.h"
#include "src/ansatz/two_local.h"
#include "src/backend/analytic_qaoa.h"
#include "src/backend/density_backend.h"
#include "src/backend/engine.h"
#include "src/backend/global_damping.h"
#include "src/backend/hardware_dataset.h"
#include "src/backend/sampled_backend.h"
#include "src/backend/statevector_backend.h"
#include "src/backend/trajectory_backend.h"
#include "src/core/oscar.h"
#include "src/graph/generators.h"
#include "src/hamiltonian/maxcut.h"
#include "src/interp/bicubic.h"
#include "src/interp/multilinear.h"
#include "src/landscape/sampler.h"
#include "src/optimize/adam.h"
#include "src/parallel/latency_model.h"
#include "src/parallel/scheduler.h"

namespace oscar {
namespace {

Graph
testGraph()
{
    Rng rng(11);
    return random3RegularGraph(8, rng);
}

std::vector<std::vector<double>>
testPoints(std::size_t n)
{
    Rng rng(5);
    std::vector<std::vector<double>> points;
    points.reserve(n);
    for (std::size_t i = 0; i < n; ++i)
        points.push_back({rng.uniform(-0.8, 0.8), rng.uniform(-1.6, 1.6)});
    return points;
}

/**
 * The core parity check: two freshly built identical evaluators must
 * produce bit-identical results whether driven point by point, as one
 * serial batch, or as a threaded engine batch.
 */
void
expectScalarBatchThreadedParity(CostFunction& scalar, CostFunction& batch,
                                CostFunction& threaded)
{
    const auto points = testPoints(24);

    std::vector<double> one_by_one;
    one_by_one.reserve(points.size());
    for (const auto& p : points)
        one_by_one.push_back(scalar.evaluate(p));

    const std::vector<double> batched = batch.evaluateBatch(points);

    ExecutionEngine engine(4);
    const std::vector<double> pooled = engine.evaluate(threaded, points);

    ASSERT_EQ(one_by_one.size(), batched.size());
    ASSERT_EQ(one_by_one.size(), pooled.size());
    for (std::size_t i = 0; i < points.size(); ++i) {
        EXPECT_EQ(one_by_one[i], batched[i]) << "batch mismatch at " << i;
        EXPECT_EQ(one_by_one[i], pooled[i]) << "thread mismatch at " << i;
    }

    EXPECT_EQ(scalar.numQueries(), points.size());
    EXPECT_EQ(batch.numQueries(), points.size());
    EXPECT_EQ(threaded.numQueries(), points.size());
}

TEST(Engine, StatevectorParity)
{
    const Graph g = testGraph();
    StatevectorCost a(qaoaCircuit(g, 1), maxcutHamiltonian(g));
    StatevectorCost b(qaoaCircuit(g, 1), maxcutHamiltonian(g));
    StatevectorCost c(qaoaCircuit(g, 1), maxcutHamiltonian(g));
    expectScalarBatchThreadedParity(a, b, c);
}

TEST(Engine, DensityParity)
{
    Rng rng(21);
    const Graph g = random3RegularGraph(4, rng);
    NoiseModel noise;
    noise.p1 = 0.002;
    noise.p2 = 0.01;
    DensityCost a(qaoaCircuit(g, 1), maxcutHamiltonian(g), noise);
    DensityCost b(qaoaCircuit(g, 1), maxcutHamiltonian(g), noise);
    DensityCost c(qaoaCircuit(g, 1), maxcutHamiltonian(g), noise);
    expectScalarBatchThreadedParity(a, b, c);
}

TEST(Engine, SampledParity)
{
    const Graph g = testGraph();
    NoiseModel noise;
    noise.readout01 = 0.02;
    noise.readout10 = 0.01;
    SampledCost a(qaoaCircuit(g, 1), maxcutHamiltonian(g), 256, noise, 7);
    SampledCost b(qaoaCircuit(g, 1), maxcutHamiltonian(g), 256, noise, 7);
    SampledCost c(qaoaCircuit(g, 1), maxcutHamiltonian(g), 256, noise, 7);
    expectScalarBatchThreadedParity(a, b, c);
}

TEST(Engine, TrajectoryParity)
{
    Rng rng(22);
    const Graph g = random3RegularGraph(6, rng);
    NoiseModel noise;
    noise.p1 = 0.004;
    noise.p2 = 0.02;
    TrajectoryCost a(qaoaCircuit(g, 1), maxcutHamiltonian(g), noise, 12, 9);
    TrajectoryCost b(qaoaCircuit(g, 1), maxcutHamiltonian(g), noise, 12, 9);
    TrajectoryCost c(qaoaCircuit(g, 1), maxcutHamiltonian(g), noise, 12, 9);
    expectScalarBatchThreadedParity(a, b, c);
}

TEST(Engine, AnalyticQaoaParity)
{
    const Graph g = testGraph();
    AnalyticQaoaCost a(g), b(g), c(g);
    expectScalarBatchThreadedParity(a, b, c);
}

TEST(Engine, GlobalDampingParity)
{
    const Graph g = testGraph();
    NoiseModel noise;
    noise.p1 = 0.003;
    noise.p2 = 0.015;
    GlobalDampingCost a(qaoaCircuit(g, 1), maxcutHamiltonian(g), noise);
    GlobalDampingCost b(qaoaCircuit(g, 1), maxcutHamiltonian(g), noise);
    GlobalDampingCost c(qaoaCircuit(g, 1), maxcutHamiltonian(g), noise);
    expectScalarBatchThreadedParity(a, b, c);
}

TEST(Engine, ShotNoiseParity)
{
    const Graph g = testGraph();
    auto make = [&] {
        return ShotNoiseCost(std::make_shared<AnalyticQaoaCost>(g), 512,
                             1.0, 13);
    };
    ShotNoiseCost a = make(), b = make(), c = make();
    expectScalarBatchThreadedParity(a, b, c);
}

TEST(Engine, InterpolatedLandscapeParity)
{
    const Graph g = testGraph();
    AnalyticQaoaCost cost(g);
    const GridSpec grid = GridSpec::qaoaP1(12, 16);
    const Landscape truth = Landscape::gridSearch(grid, cost);

    InterpolatedLandscapeCost a(truth), b(truth), c(truth);
    expectScalarBatchThreadedParity(a, b, c);

    MultilinearLandscapeCost ma(truth), mb(truth), mc(truth);
    expectScalarBatchThreadedParity(ma, mb, mc);
}

TEST(Engine, HardwareDatasetReplayParity)
{
    // Dataset replay: gatherLandscape through a threaded engine equals
    // direct lookups.
    const Graph g = testGraph();
    const GridSpec grid = GridSpec::qaoaP1(20, 20);
    const Landscape synth =
        syntheticHardwareLandscape(g, grid, HardwareDatasetOptions{});

    std::vector<std::size_t> indices;
    for (std::size_t i = 0; i < synth.numPoints(); i += 3)
        indices.push_back(i);

    ExecutionEngine engine(4);
    const SampleSet gathered = gatherLandscape(synth, indices, &engine);
    ASSERT_EQ(gathered.size(), indices.size());
    for (std::size_t i = 0; i < indices.size(); ++i)
        EXPECT_EQ(gathered.values[i], synth.value(indices[i]));
}

TEST(Engine, NonCloneableCostFallsBackToSerial)
{
    LambdaCost cost(2, [](const std::vector<double>& p) {
        return p[0] * p[0] + p[1];
    });
    ASSERT_EQ(cost.clone(), nullptr);

    ExecutionEngine engine(4);
    const auto points = testPoints(32);
    const std::vector<double> values = engine.evaluate(cost, points);
    for (std::size_t i = 0; i < points.size(); ++i)
        EXPECT_EQ(values[i], points[i][0] * points[i][0] + points[i][1]);
    EXPECT_EQ(cost.numQueries(), points.size());
}

TEST(Engine, ThreadSafeLambdaRunsPooled)
{
    LambdaCost serial(
        2, [](const std::vector<double>& p) { return p[0] - p[1]; },
        /*thread_safe=*/true);
    ASSERT_NE(serial.clone(), nullptr);

    ExecutionEngine engine(4);
    const auto points = testPoints(64);
    const std::vector<double> values = engine.evaluate(serial, points);
    for (std::size_t i = 0; i < points.size(); ++i)
        EXPECT_EQ(values[i], points[i][0] - points[i][1]);
    EXPECT_EQ(serial.numQueries(), points.size());
}

TEST(Engine, QueryCountingIsThreadSafe)
{
    // Hammer one evaluator from many threads; the atomic counter must
    // see every single query.
    LambdaCost cost(
        1, [](const std::vector<double>& p) { return p[0]; },
        /*thread_safe=*/true);
    constexpr int kThreads = 8;
    constexpr int kPerThread = 500;
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t) {
        threads.emplace_back([&cost] {
            for (int i = 0; i < kPerThread; ++i)
                cost.evaluate({1.0});
        });
    }
    for (auto& t : threads)
        t.join();
    EXPECT_EQ(cost.numQueries(),
              static_cast<std::size_t>(kThreads) * kPerThread);
}

TEST(Engine, GatherCostMatchesScalarPath)
{
    const Graph g = testGraph();
    StatevectorCost scalar(qaoaCircuit(g, 1), maxcutHamiltonian(g));
    StatevectorCost batched(qaoaCircuit(g, 1), maxcutHamiltonian(g));
    const GridSpec grid = GridSpec::qaoaP1(10, 14);

    std::vector<std::size_t> indices;
    for (std::size_t i = 0; i < grid.numPoints(); i += 7)
        indices.push_back(i);

    ExecutionEngine engine(3);
    const SampleSet set = gatherCost(grid, batched, indices, &engine);
    ASSERT_EQ(set.size(), indices.size());
    for (std::size_t i = 0; i < indices.size(); ++i)
        EXPECT_EQ(set.values[i], scalar.evaluate(grid.pointAt(indices[i])));
}

TEST(Engine, ReconstructBitIdenticalAcrossThreadCounts)
{
    const Graph g = testGraph();
    const GridSpec grid = GridSpec::qaoaP1(20, 30);

    OscarOptions serial_options;
    serial_options.samplingFraction = 0.1;
    serial_options.seed = 42;
    serial_options.numThreads = 1;

    OscarOptions pooled_options = serial_options;
    pooled_options.numThreads = 4;

    // Deterministic backend.
    {
        StatevectorCost a(qaoaCircuit(g, 1), maxcutHamiltonian(g));
        StatevectorCost b(qaoaCircuit(g, 1), maxcutHamiltonian(g));
        const OscarResult serial =
            Oscar::reconstruct(grid, a, serial_options);
        const OscarResult pooled =
            Oscar::reconstruct(grid, b, pooled_options);
        ASSERT_EQ(serial.samples.indices, pooled.samples.indices);
        ASSERT_EQ(serial.samples.values, pooled.samples.values);
        for (std::size_t i = 0; i < serial.reconstructed.numPoints(); ++i)
            EXPECT_EQ(serial.reconstructed.value(i),
                      pooled.reconstructed.value(i));
    }

    // Stochastic backend: ordinal-keyed streams keep N-thread runs
    // bit-identical too.
    {
        SampledCost a(qaoaCircuit(g, 1), maxcutHamiltonian(g), 128,
                      NoiseModel{}, 3);
        SampledCost b(qaoaCircuit(g, 1), maxcutHamiltonian(g), 128,
                      NoiseModel{}, 3);
        const OscarResult serial =
            Oscar::reconstruct(grid, a, serial_options);
        const OscarResult pooled =
            Oscar::reconstruct(grid, b, pooled_options);
        ASSERT_EQ(serial.samples.values, pooled.samples.values);
    }
}

TEST(Engine, ParallelSamplingBitIdenticalAcrossThreadCounts)
{
    const Graph g = testGraph();
    const GridSpec grid = GridSpec::qaoaP1(16, 20);

    auto make_devices = [&] {
        std::vector<QpuDevice> devices;
        for (int d = 0; d < 2; ++d) {
            QpuDevice dev;
            dev.name = "qpu" + std::to_string(d);
            dev.cost = std::make_shared<SampledCost>(
                qaoaCircuit(g, 1), maxcutHamiltonian(g), 64, NoiseModel{},
                100 + d);
            dev.latency = LatencyModel{};
            devices.push_back(std::move(dev));
        }
        return devices;
    };

    std::vector<std::size_t> indices;
    for (std::size_t i = 0; i < grid.numPoints(); i += 5)
        indices.push_back(i);

    auto devices_serial = make_devices();
    Rng rng_serial(1234);
    const ParallelRunResult serial = runParallelSampling(
        grid, devices_serial, indices, rng_serial);

    auto devices_pooled = make_devices();
    Rng rng_pooled(1234);
    ExecutionEngine engine(4);
    const ParallelRunResult pooled = runParallelSampling(
        grid, devices_pooled, indices, rng_pooled,
        Assignment::RoundRobin, {}, &engine);

    ASSERT_EQ(serial.samples.size(), pooled.samples.size());
    EXPECT_EQ(serial.makespan, pooled.makespan);
    for (std::size_t i = 0; i < serial.samples.size(); ++i) {
        EXPECT_EQ(serial.samples[i].index, pooled.samples[i].index);
        EXPECT_EQ(serial.samples[i].value, pooled.samples[i].value);
        EXPECT_EQ(serial.samples[i].completionTime,
                  pooled.samples[i].completionTime);
    }
}

/** All grid points in prefix-friendly axis-major order for `cost`. */
std::vector<std::vector<double>>
axisMajorPoints(const GridSpec& grid, const CostFunction& cost)
{
    std::vector<std::size_t> indices(grid.numPoints());
    for (std::size_t i = 0; i < indices.size(); ++i)
        indices[i] = i;
    const auto perm =
        grid.prefixFriendlyPermutation(indices, cost.batchOrderHint());
    std::vector<std::vector<double>> points;
    points.reserve(indices.size());
    for (std::size_t p : perm)
        points.push_back(grid.pointAt(indices[p]));
    return points;
}

/**
 * Prefix-cache parity core: `batched` (cache as configured) evaluated
 * in batches of `batch_size` and through a 4-thread engine must match
 * a cache-off scalar reference bit for bit.
 */
void
expectPrefixCacheParity(CostFunction& reference, CostFunction& batched,
                        CostFunction& threaded,
                        const std::vector<std::vector<double>>& points,
                        std::size_t batch_size)
{
    KernelOptions no_cache;
    no_cache.prefixCache = false;
    reference.configureKernel(no_cache);

    std::vector<double> scalar;
    scalar.reserve(points.size());
    for (const auto& p : points)
        scalar.push_back(reference.evaluate(p));

    std::vector<double> chunked;
    for (std::size_t lo = 0; lo < points.size(); lo += batch_size) {
        const std::size_t hi = std::min(points.size(), lo + batch_size);
        const std::vector<std::vector<double>> batch(
            points.begin() + static_cast<std::ptrdiff_t>(lo),
            points.begin() + static_cast<std::ptrdiff_t>(hi));
        const auto values = batched.evaluateBatch(batch);
        chunked.insert(chunked.end(), values.begin(), values.end());
    }

    ExecutionEngine engine(4);
    const std::vector<double> pooled = engine.evaluate(threaded, points);

    ASSERT_EQ(scalar.size(), chunked.size());
    ASSERT_EQ(scalar.size(), pooled.size());
    for (std::size_t i = 0; i < scalar.size(); ++i) {
        EXPECT_EQ(scalar[i], chunked[i]) << "batch mismatch at " << i;
        EXPECT_EQ(scalar[i], pooled[i]) << "thread mismatch at " << i;
    }
}

TEST(Engine, StatevectorPrefixCacheParityAxisMajor)
{
    // p=2 QAOA: a 4-level parameter frontier, axis-major sweep, odd
    // batch size so batch boundaries land mid-run.
    Rng rng(31);
    const Graph g = random3RegularGraph(6, rng);
    const GridSpec grid = GridSpec::qaoaP2(3, 4);

    auto make = [&] {
        return StatevectorCost(qaoaCircuit(g, 2), maxcutHamiltonian(g));
    };
    StatevectorCost reference = make(), batched = make(),
                    threaded = make();
    const auto points = axisMajorPoints(grid, batched);
    expectPrefixCacheParity(reference, batched, threaded, points, 17);
    EXPECT_GT(batched.prefixCache().hits(), 0u);
}

TEST(Engine, StatevectorPrefixCacheParityShuffledAndDisabled)
{
    Rng rng(32);
    const Graph g = random3RegularGraph(6, rng);
    const GridSpec grid = GridSpec::qaoaP2(3, 3);

    auto make = [&] {
        return StatevectorCost(qaoaCircuit(g, 2), maxcutHamiltonian(g));
    };

    // Worst-case submission order: shuffled points still agree.
    auto points = axisMajorPoints(grid, make());
    Rng shuffle_rng(7);
    for (std::size_t i = points.size(); i > 1; --i)
        std::swap(points[i - 1],
                  points[shuffle_rng.uniformInt(i)]);
    {
        StatevectorCost reference = make(), batched = make(),
                        threaded = make();
        expectPrefixCacheParity(reference, batched, threaded, points, 13);
    }

    // Cache disabled on the batched side too.
    {
        StatevectorCost reference = make(), batched = make(),
                        threaded = make();
        KernelOptions off;
        off.prefixCache = false;
        batched.configureKernel(off);
        threaded.configureKernel(off);
        expectPrefixCacheParity(reference, batched, threaded, points, 13);
        EXPECT_EQ(batched.prefixCache().numEntries(), 0u);
    }
}

TEST(Engine, StatevectorPrefixCacheParityNonDiagonal)
{
    // Non-diagonal Hamiltonian: the expectation goes through the
    // general Pauli path instead of the diagonal table.
    PauliSum h(5);
    h.add(0.8, "XZIII");
    h.add(-0.6, "IYYII");
    h.add(0.4, "ZZIIZ");
    h.add(0.3, "IIXXI");
    ASSERT_FALSE(h.isDiagonal());

    const Circuit circuit = twoLocalCircuit(5, 1);
    auto make = [&] { return StatevectorCost(circuit, h); };

    // Points sharing long prefixes: only the trailing parameters vary.
    Rng rng(33);
    std::vector<std::vector<double>> points;
    std::vector<double> base(static_cast<std::size_t>(circuit.numParams()),
                             0.25);
    for (int i = 0; i < 9; ++i) {
        auto p = base;
        p[p.size() - 1] = rng.uniform(-1.0, 1.0);
        if (i % 3 == 0)
            p[p.size() - 2] = rng.uniform(-1.0, 1.0);
        if (i % 4 == 0)
            p[0] = rng.uniform(-1.0, 1.0);
        points.push_back(std::move(p));
    }

    StatevectorCost reference = make(), batched = make(),
                    threaded = make();
    expectPrefixCacheParity(reference, batched, threaded, points, 4);
}

TEST(Engine, AnalyticQaoaPrefixParity)
{
    const Graph g = testGraph();
    const GridSpec grid = GridSpec::qaoaP1(7, 9);

    AnalyticQaoaCost reference(g), batched(g), threaded(g);
    const auto points = axisMajorPoints(grid, batched);
    expectPrefixCacheParity(reference, batched, threaded, points, 11);

    // And with the gamma-factor memo disabled.
    AnalyticQaoaCost ref2(g), batch2(g), thread2(g);
    KernelOptions off;
    off.prefixCache = false;
    batch2.configureKernel(off);
    thread2.configureKernel(off);
    expectPrefixCacheParity(ref2, batch2, thread2, points, 11);
}

TEST(Engine, GridSearchPrefixOrderingMatchesScalar)
{
    // gridSearch submits in prefix-friendly order and scatters back;
    // the landscape must equal the naive row-major scalar sweep.
    Rng rng(34);
    const Graph g = random3RegularGraph(6, rng);
    const GridSpec grid = GridSpec::qaoaP2(3, 3);

    StatevectorCost searched(qaoaCircuit(g, 2), maxcutHamiltonian(g));
    const Landscape land = Landscape::gridSearch(grid, searched);

    StatevectorCost scalar(qaoaCircuit(g, 2), maxcutHamiltonian(g));
    KernelOptions off;
    off.prefixCache = false;
    scalar.configureKernel(off);
    for (std::size_t i = 0; i < grid.numPoints(); ++i)
        EXPECT_EQ(land.value(i), scalar.evaluate(grid.pointAt(i)))
            << "grid point " << i;
    EXPECT_EQ(searched.numQueries(), grid.numPoints());
}

TEST(Engine, PrefixFriendlyPermutationOrdersAxes)
{
    // 2x3 grid, priority {axis 1 slowest}: expect axis-1-major order.
    const GridSpec grid({{0.0, 1.0, 2}, {0.0, 1.0, 3}});
    std::vector<std::size_t> indices(grid.numPoints());
    for (std::size_t i = 0; i < indices.size(); ++i)
        indices[i] = i;

    const auto perm = grid.prefixFriendlyPermutation(indices, {1, 0});
    // Row-major flat = a0 * 3 + a1; axis-1-major order sorts by
    // (a1, a0): flats 0,3,1,4,2,5.
    const std::vector<std::size_t> expected = {0, 3, 1, 4, 2, 5};
    ASSERT_EQ(perm.size(), expected.size());
    for (std::size_t i = 0; i < perm.size(); ++i)
        EXPECT_EQ(indices[perm[i]], expected[i]);

    EXPECT_THROW(grid.prefixFriendlyPermutation(indices, {2}),
                 std::invalid_argument);
    EXPECT_THROW(grid.prefixFriendlyPermutation(indices, {0, 0}),
                 std::invalid_argument);
}

TEST(Engine, OptimizerWithEngineMatchesSerial)
{
    const Graph g = testGraph();
    StatevectorCost a(qaoaCircuit(g, 1), maxcutHamiltonian(g));
    StatevectorCost b(qaoaCircuit(g, 1), maxcutHamiltonian(g));

    AdamOptions options;
    options.maxIterations = 10;

    Adam serial(options);
    const OptimizerResult r1 = serial.minimize(a, {0.1, -0.2});

    ExecutionEngine engine(4);
    Adam pooled(options);
    pooled.setEngine(&engine);
    const OptimizerResult r2 = pooled.minimize(b, {0.1, -0.2});

    EXPECT_EQ(r1.bestValue, r2.bestValue);
    EXPECT_EQ(r1.bestParams, r2.bestParams);
    EXPECT_EQ(r1.numQueries, r2.numQueries);
}

} // namespace
} // namespace oscar
