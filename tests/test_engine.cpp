/**
 * @file
 * Tests for the asynchronous ExecutionEngine and the batch/ordinal
 * contract of CostFunction:
 *
 *  - evaluateBatch matches per-point evaluate bit for bit on every
 *    backend, including the stochastic ones (ordinal-keyed streams);
 *  - submit(...).get() is bit-identical to the serial batch path for
 *    every backend, any thread count, and any completion order;
 *  - query counting is atomic and batch-aware; streaming callbacks
 *    and BatchHandle::stats report every point exactly once;
 *  - the full Oscar::reconstruct pipeline -- synchronous or
 *    streaming-overlapped -- is bit-identical for 1 and N threads at
 *    a fixed seed, as are the multi-QPU scheduler's three assignment
 *    policies and the speculative Nelder-Mead probes.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <thread>

#include "src/ansatz/qaoa.h"
#include "src/ansatz/two_local.h"
#include "src/backend/analytic_qaoa.h"
#include "src/backend/density_backend.h"
#include "src/backend/engine.h"
#include "src/backend/global_damping.h"
#include "src/backend/hardware_dataset.h"
#include "src/backend/sampled_backend.h"
#include "src/backend/statevector_backend.h"
#include "src/backend/trajectory_backend.h"
#include "src/core/oscar.h"
#include "src/graph/generators.h"
#include "src/hamiltonian/maxcut.h"
#include "src/interp/bicubic.h"
#include "src/interp/multilinear.h"
#include "src/landscape/sampler.h"
#include "src/optimize/adam.h"
#include "src/optimize/nelder_mead.h"
#include "src/parallel/latency_model.h"
#include "src/parallel/scheduler.h"

#include <map>
#include <mutex>

namespace oscar {
namespace {

Graph
testGraph()
{
    Rng rng(11);
    return random3RegularGraph(8, rng);
}

std::vector<std::vector<double>>
testPoints(std::size_t n)
{
    Rng rng(5);
    std::vector<std::vector<double>> points;
    points.reserve(n);
    for (std::size_t i = 0; i < n; ++i)
        points.push_back({rng.uniform(-0.8, 0.8), rng.uniform(-1.6, 1.6)});
    return points;
}

/**
 * The core parity check: two freshly built identical evaluators must
 * produce bit-identical results whether driven point by point, as one
 * serial batch, or as a threaded engine batch.
 */
void
expectScalarBatchThreadedParity(CostFunction& scalar, CostFunction& batch,
                                CostFunction& threaded)
{
    const auto points = testPoints(24);

    std::vector<double> one_by_one;
    one_by_one.reserve(points.size());
    for (const auto& p : points)
        one_by_one.push_back(scalar.evaluate(p));

    const std::vector<double> batched = batch.evaluateBatch(points);

    // The asynchronous acceptance criterion: submit(...).get() on a
    // 4-thread engine equals the serial batch for every backend.
    ExecutionEngine engine(4);
    const std::vector<double> pooled =
        engine.submit(threaded, points).get();

    ASSERT_EQ(one_by_one.size(), batched.size());
    ASSERT_EQ(one_by_one.size(), pooled.size());
    for (std::size_t i = 0; i < points.size(); ++i) {
        EXPECT_EQ(one_by_one[i], batched[i]) << "batch mismatch at " << i;
        EXPECT_EQ(one_by_one[i], pooled[i]) << "thread mismatch at " << i;
    }

    EXPECT_EQ(scalar.numQueries(), points.size());
    EXPECT_EQ(batch.numQueries(), points.size());
    EXPECT_EQ(threaded.numQueries(), points.size());
}

TEST(Engine, StatevectorParity)
{
    const Graph g = testGraph();
    StatevectorCost a(qaoaCircuit(g, 1), maxcutHamiltonian(g));
    StatevectorCost b(qaoaCircuit(g, 1), maxcutHamiltonian(g));
    StatevectorCost c(qaoaCircuit(g, 1), maxcutHamiltonian(g));
    expectScalarBatchThreadedParity(a, b, c);
}

TEST(Engine, DensityParity)
{
    Rng rng(21);
    const Graph g = random3RegularGraph(4, rng);
    NoiseModel noise;
    noise.p1 = 0.002;
    noise.p2 = 0.01;
    DensityCost a(qaoaCircuit(g, 1), maxcutHamiltonian(g), noise);
    DensityCost b(qaoaCircuit(g, 1), maxcutHamiltonian(g), noise);
    DensityCost c(qaoaCircuit(g, 1), maxcutHamiltonian(g), noise);
    expectScalarBatchThreadedParity(a, b, c);
}

TEST(Engine, SampledParity)
{
    const Graph g = testGraph();
    NoiseModel noise;
    noise.readout01 = 0.02;
    noise.readout10 = 0.01;
    SampledCost a(qaoaCircuit(g, 1), maxcutHamiltonian(g), 256, noise, 7);
    SampledCost b(qaoaCircuit(g, 1), maxcutHamiltonian(g), 256, noise, 7);
    SampledCost c(qaoaCircuit(g, 1), maxcutHamiltonian(g), 256, noise, 7);
    expectScalarBatchThreadedParity(a, b, c);
}

TEST(Engine, TrajectoryParity)
{
    Rng rng(22);
    const Graph g = random3RegularGraph(6, rng);
    NoiseModel noise;
    noise.p1 = 0.004;
    noise.p2 = 0.02;
    TrajectoryCost a(qaoaCircuit(g, 1), maxcutHamiltonian(g), noise, 12, 9);
    TrajectoryCost b(qaoaCircuit(g, 1), maxcutHamiltonian(g), noise, 12, 9);
    TrajectoryCost c(qaoaCircuit(g, 1), maxcutHamiltonian(g), noise, 12, 9);
    expectScalarBatchThreadedParity(a, b, c);
}

TEST(Engine, AnalyticQaoaParity)
{
    const Graph g = testGraph();
    AnalyticQaoaCost a(g), b(g), c(g);
    expectScalarBatchThreadedParity(a, b, c);
}

TEST(Engine, GlobalDampingParity)
{
    const Graph g = testGraph();
    NoiseModel noise;
    noise.p1 = 0.003;
    noise.p2 = 0.015;
    GlobalDampingCost a(qaoaCircuit(g, 1), maxcutHamiltonian(g), noise);
    GlobalDampingCost b(qaoaCircuit(g, 1), maxcutHamiltonian(g), noise);
    GlobalDampingCost c(qaoaCircuit(g, 1), maxcutHamiltonian(g), noise);
    expectScalarBatchThreadedParity(a, b, c);
}

TEST(Engine, ShotNoiseParity)
{
    const Graph g = testGraph();
    auto make = [&] {
        return ShotNoiseCost(std::make_shared<AnalyticQaoaCost>(g), 512,
                             1.0, 13);
    };
    ShotNoiseCost a = make(), b = make(), c = make();
    expectScalarBatchThreadedParity(a, b, c);
}

TEST(Engine, InterpolatedLandscapeParity)
{
    const Graph g = testGraph();
    AnalyticQaoaCost cost(g);
    const GridSpec grid = GridSpec::qaoaP1(12, 16);
    const Landscape truth = Landscape::gridSearch(grid, cost);

    InterpolatedLandscapeCost a(truth), b(truth), c(truth);
    expectScalarBatchThreadedParity(a, b, c);

    MultilinearLandscapeCost ma(truth), mb(truth), mc(truth);
    expectScalarBatchThreadedParity(ma, mb, mc);
}

TEST(Engine, HardwareDatasetReplayParity)
{
    // Dataset replay: gatherLandscape through a threaded engine equals
    // direct lookups.
    const Graph g = testGraph();
    const GridSpec grid = GridSpec::qaoaP1(20, 20);
    const Landscape synth =
        syntheticHardwareLandscape(g, grid, HardwareDatasetOptions{});

    std::vector<std::size_t> indices;
    for (std::size_t i = 0; i < synth.numPoints(); i += 3)
        indices.push_back(i);

    ExecutionEngine engine(4);
    const SampleSet gathered = gatherLandscape(synth, indices, &engine);
    ASSERT_EQ(gathered.size(), indices.size());
    for (std::size_t i = 0; i < indices.size(); ++i)
        EXPECT_EQ(gathered.values[i], synth.value(indices[i]));
}

TEST(Engine, NonCloneableCostFallsBackToSerial)
{
    LambdaCost cost(2, [](const std::vector<double>& p) {
        return p[0] * p[0] + p[1];
    });
    ASSERT_EQ(cost.clone(), nullptr);

    ExecutionEngine engine(4);
    const auto points = testPoints(32);
    const std::vector<double> values = engine.evaluate(cost, points);
    for (std::size_t i = 0; i < points.size(); ++i)
        EXPECT_EQ(values[i], points[i][0] * points[i][0] + points[i][1]);
    EXPECT_EQ(cost.numQueries(), points.size());
}

TEST(Engine, ThreadSafeLambdaRunsPooled)
{
    LambdaCost serial(
        2, [](const std::vector<double>& p) { return p[0] - p[1]; },
        /*thread_safe=*/true);
    ASSERT_NE(serial.clone(), nullptr);

    ExecutionEngine engine(4);
    const auto points = testPoints(64);
    const std::vector<double> values = engine.evaluate(serial, points);
    for (std::size_t i = 0; i < points.size(); ++i)
        EXPECT_EQ(values[i], points[i][0] - points[i][1]);
    EXPECT_EQ(serial.numQueries(), points.size());
}

TEST(Engine, QueryCountingIsThreadSafe)
{
    // Hammer one evaluator from many threads; the atomic counter must
    // see every single query.
    LambdaCost cost(
        1, [](const std::vector<double>& p) { return p[0]; },
        /*thread_safe=*/true);
    constexpr int kThreads = 8;
    constexpr int kPerThread = 500;
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t) {
        threads.emplace_back([&cost] {
            for (int i = 0; i < kPerThread; ++i)
                cost.evaluate({1.0});
        });
    }
    for (auto& t : threads)
        t.join();
    EXPECT_EQ(cost.numQueries(),
              static_cast<std::size_t>(kThreads) * kPerThread);
}

TEST(Engine, GatherCostMatchesScalarPath)
{
    const Graph g = testGraph();
    StatevectorCost scalar(qaoaCircuit(g, 1), maxcutHamiltonian(g));
    StatevectorCost batched(qaoaCircuit(g, 1), maxcutHamiltonian(g));
    const GridSpec grid = GridSpec::qaoaP1(10, 14);

    std::vector<std::size_t> indices;
    for (std::size_t i = 0; i < grid.numPoints(); i += 7)
        indices.push_back(i);

    ExecutionEngine engine(3);
    const SampleSet set = gatherCost(grid, batched, indices, &engine);
    ASSERT_EQ(set.size(), indices.size());
    for (std::size_t i = 0; i < indices.size(); ++i)
        EXPECT_EQ(set.values[i], scalar.evaluate(grid.pointAt(indices[i])));
}

TEST(Engine, ReconstructBitIdenticalAcrossThreadCounts)
{
    const Graph g = testGraph();
    const GridSpec grid = GridSpec::qaoaP1(20, 30);

    OscarOptions serial_options;
    serial_options.samplingFraction = 0.1;
    serial_options.seed = 42;
    serial_options.numThreads = 1;

    OscarOptions pooled_options = serial_options;
    pooled_options.numThreads = 4;

    // Deterministic backend.
    {
        StatevectorCost a(qaoaCircuit(g, 1), maxcutHamiltonian(g));
        StatevectorCost b(qaoaCircuit(g, 1), maxcutHamiltonian(g));
        const OscarResult serial =
            Oscar::reconstruct(grid, a, serial_options);
        const OscarResult pooled =
            Oscar::reconstruct(grid, b, pooled_options);
        ASSERT_EQ(serial.samples.indices, pooled.samples.indices);
        ASSERT_EQ(serial.samples.values, pooled.samples.values);
        for (std::size_t i = 0; i < serial.reconstructed.numPoints(); ++i)
            EXPECT_EQ(serial.reconstructed.value(i),
                      pooled.reconstructed.value(i));
    }

    // Stochastic backend: ordinal-keyed streams keep N-thread runs
    // bit-identical too.
    {
        SampledCost a(qaoaCircuit(g, 1), maxcutHamiltonian(g), 128,
                      NoiseModel{}, 3);
        SampledCost b(qaoaCircuit(g, 1), maxcutHamiltonian(g), 128,
                      NoiseModel{}, 3);
        const OscarResult serial =
            Oscar::reconstruct(grid, a, serial_options);
        const OscarResult pooled =
            Oscar::reconstruct(grid, b, pooled_options);
        ASSERT_EQ(serial.samples.values, pooled.samples.values);
    }
}

TEST(Engine, ParallelSamplingBitIdenticalAcrossThreadCounts)
{
    const Graph g = testGraph();
    const GridSpec grid = GridSpec::qaoaP1(16, 20);

    auto make_devices = [&] {
        std::vector<QpuDevice> devices;
        for (int d = 0; d < 2; ++d) {
            QpuDevice dev;
            dev.name = "qpu" + std::to_string(d);
            dev.cost = std::make_shared<SampledCost>(
                qaoaCircuit(g, 1), maxcutHamiltonian(g), 64, NoiseModel{},
                100 + d);
            dev.latency = LatencyModel{};
            devices.push_back(std::move(dev));
        }
        return devices;
    };

    std::vector<std::size_t> indices;
    for (std::size_t i = 0; i < grid.numPoints(); i += 5)
        indices.push_back(i);

    auto devices_serial = make_devices();
    Rng rng_serial(1234);
    const ParallelRunResult serial = runParallelSampling(
        grid, devices_serial, indices, rng_serial);

    auto devices_pooled = make_devices();
    Rng rng_pooled(1234);
    ExecutionEngine engine(4);
    const ParallelRunResult pooled = runParallelSampling(
        grid, devices_pooled, indices, rng_pooled,
        Assignment::RoundRobin, {}, &engine);

    ASSERT_EQ(serial.samples.size(), pooled.samples.size());
    EXPECT_EQ(serial.makespan, pooled.makespan);
    for (std::size_t i = 0; i < serial.samples.size(); ++i) {
        EXPECT_EQ(serial.samples[i].index, pooled.samples[i].index);
        EXPECT_EQ(serial.samples[i].value, pooled.samples[i].value);
        EXPECT_EQ(serial.samples[i].completionTime,
                  pooled.samples[i].completionTime);
    }
}

/** All grid points in prefix-friendly axis-major order for `cost`. */
std::vector<std::vector<double>>
axisMajorPoints(const GridSpec& grid, const CostFunction& cost)
{
    std::vector<std::size_t> indices(grid.numPoints());
    for (std::size_t i = 0; i < indices.size(); ++i)
        indices[i] = i;
    const auto perm =
        grid.prefixFriendlyPermutation(indices, cost.batchOrderHint());
    std::vector<std::vector<double>> points;
    points.reserve(indices.size());
    for (std::size_t p : perm)
        points.push_back(grid.pointAt(indices[p]));
    return points;
}

/**
 * Prefix-cache parity core: `batched` (cache as configured) evaluated
 * in batches of `batch_size` and through a 4-thread engine must match
 * a cache-off scalar reference bit for bit.
 */
void
expectPrefixCacheParity(CostFunction& reference, CostFunction& batched,
                        CostFunction& threaded,
                        const std::vector<std::vector<double>>& points,
                        std::size_t batch_size)
{
    KernelOptions no_cache;
    no_cache.prefixCache = false;
    reference.configureKernel(no_cache);

    std::vector<double> scalar;
    scalar.reserve(points.size());
    for (const auto& p : points)
        scalar.push_back(reference.evaluate(p));

    std::vector<double> chunked;
    for (std::size_t lo = 0; lo < points.size(); lo += batch_size) {
        const std::size_t hi = std::min(points.size(), lo + batch_size);
        const std::vector<std::vector<double>> batch(
            points.begin() + static_cast<std::ptrdiff_t>(lo),
            points.begin() + static_cast<std::ptrdiff_t>(hi));
        const auto values = batched.evaluateBatch(batch);
        chunked.insert(chunked.end(), values.begin(), values.end());
    }

    ExecutionEngine engine(4);
    const std::vector<double> pooled = engine.evaluate(threaded, points);

    ASSERT_EQ(scalar.size(), chunked.size());
    ASSERT_EQ(scalar.size(), pooled.size());
    for (std::size_t i = 0; i < scalar.size(); ++i) {
        EXPECT_EQ(scalar[i], chunked[i]) << "batch mismatch at " << i;
        EXPECT_EQ(scalar[i], pooled[i]) << "thread mismatch at " << i;
    }
}

TEST(Engine, StatevectorPrefixCacheParityAxisMajor)
{
    // p=2 QAOA: a 4-level parameter frontier, axis-major sweep, odd
    // batch size so batch boundaries land mid-run.
    Rng rng(31);
    const Graph g = random3RegularGraph(6, rng);
    const GridSpec grid = GridSpec::qaoaP2(3, 4);

    auto make = [&] {
        return StatevectorCost(qaoaCircuit(g, 2), maxcutHamiltonian(g));
    };
    StatevectorCost reference = make(), batched = make(),
                    threaded = make();
    const auto points = axisMajorPoints(grid, batched);
    expectPrefixCacheParity(reference, batched, threaded, points, 17);
    EXPECT_GT(batched.prefixCache().hits(), 0u);
}

TEST(Engine, StatevectorPrefixCacheParityShuffledAndDisabled)
{
    Rng rng(32);
    const Graph g = random3RegularGraph(6, rng);
    const GridSpec grid = GridSpec::qaoaP2(3, 3);

    auto make = [&] {
        return StatevectorCost(qaoaCircuit(g, 2), maxcutHamiltonian(g));
    };

    // Worst-case submission order: shuffled points still agree.
    auto points = axisMajorPoints(grid, make());
    Rng shuffle_rng(7);
    for (std::size_t i = points.size(); i > 1; --i)
        std::swap(points[i - 1],
                  points[shuffle_rng.uniformInt(i)]);
    {
        StatevectorCost reference = make(), batched = make(),
                        threaded = make();
        expectPrefixCacheParity(reference, batched, threaded, points, 13);
    }

    // Cache disabled on the batched side too.
    {
        StatevectorCost reference = make(), batched = make(),
                        threaded = make();
        KernelOptions off;
        off.prefixCache = false;
        batched.configureKernel(off);
        threaded.configureKernel(off);
        expectPrefixCacheParity(reference, batched, threaded, points, 13);
        EXPECT_EQ(batched.prefixCache().numEntries(), 0u);
    }
}

TEST(Engine, StatevectorPrefixCacheParityNonDiagonal)
{
    // Non-diagonal Hamiltonian: the expectation goes through the
    // general Pauli path instead of the diagonal table.
    PauliSum h(5);
    h.add(0.8, "XZIII");
    h.add(-0.6, "IYYII");
    h.add(0.4, "ZZIIZ");
    h.add(0.3, "IIXXI");
    ASSERT_FALSE(h.isDiagonal());

    const Circuit circuit = twoLocalCircuit(5, 1);
    auto make = [&] { return StatevectorCost(circuit, h); };

    // Points sharing long prefixes: only the trailing parameters vary.
    Rng rng(33);
    std::vector<std::vector<double>> points;
    std::vector<double> base(static_cast<std::size_t>(circuit.numParams()),
                             0.25);
    for (int i = 0; i < 9; ++i) {
        auto p = base;
        p[p.size() - 1] = rng.uniform(-1.0, 1.0);
        if (i % 3 == 0)
            p[p.size() - 2] = rng.uniform(-1.0, 1.0);
        if (i % 4 == 0)
            p[0] = rng.uniform(-1.0, 1.0);
        points.push_back(std::move(p));
    }

    StatevectorCost reference = make(), batched = make(),
                    threaded = make();
    expectPrefixCacheParity(reference, batched, threaded, points, 4);
}

TEST(Engine, AnalyticQaoaPrefixParity)
{
    const Graph g = testGraph();
    const GridSpec grid = GridSpec::qaoaP1(7, 9);

    AnalyticQaoaCost reference(g), batched(g), threaded(g);
    const auto points = axisMajorPoints(grid, batched);
    expectPrefixCacheParity(reference, batched, threaded, points, 11);

    // And with the gamma-factor memo disabled.
    AnalyticQaoaCost ref2(g), batch2(g), thread2(g);
    KernelOptions off;
    off.prefixCache = false;
    batch2.configureKernel(off);
    thread2.configureKernel(off);
    expectPrefixCacheParity(ref2, batch2, thread2, points, 11);
}

TEST(Engine, GridSearchPrefixOrderingMatchesScalar)
{
    // gridSearch submits in prefix-friendly order and scatters back;
    // the landscape must equal the naive row-major scalar sweep.
    Rng rng(34);
    const Graph g = random3RegularGraph(6, rng);
    const GridSpec grid = GridSpec::qaoaP2(3, 3);

    StatevectorCost searched(qaoaCircuit(g, 2), maxcutHamiltonian(g));
    const Landscape land = Landscape::gridSearch(grid, searched);

    StatevectorCost scalar(qaoaCircuit(g, 2), maxcutHamiltonian(g));
    KernelOptions off;
    off.prefixCache = false;
    scalar.configureKernel(off);
    for (std::size_t i = 0; i < grid.numPoints(); ++i)
        EXPECT_EQ(land.value(i), scalar.evaluate(grid.pointAt(i)))
            << "grid point " << i;
    EXPECT_EQ(searched.numQueries(), grid.numPoints());
}

TEST(Engine, PrefixFriendlyPermutationOrdersAxes)
{
    // 2x3 grid, priority {axis 1 slowest}: expect axis-1-major order.
    const GridSpec grid({{0.0, 1.0, 2}, {0.0, 1.0, 3}});
    std::vector<std::size_t> indices(grid.numPoints());
    for (std::size_t i = 0; i < indices.size(); ++i)
        indices[i] = i;

    const auto perm = grid.prefixFriendlyPermutation(indices, {1, 0});
    // Row-major flat = a0 * 3 + a1; axis-1-major order sorts by
    // (a1, a0): flats 0,3,1,4,2,5.
    const std::vector<std::size_t> expected = {0, 3, 1, 4, 2, 5};
    ASSERT_EQ(perm.size(), expected.size());
    for (std::size_t i = 0; i < perm.size(); ++i)
        EXPECT_EQ(indices[perm[i]], expected[i]);

    EXPECT_THROW(grid.prefixFriendlyPermutation(indices, {2}),
                 std::invalid_argument);
    EXPECT_THROW(grid.prefixFriendlyPermutation(indices, {0, 0}),
                 std::invalid_argument);
}

TEST(Engine, OptimizerWithEngineMatchesSerial)
{
    const Graph g = testGraph();
    StatevectorCost a(qaoaCircuit(g, 1), maxcutHamiltonian(g));
    StatevectorCost b(qaoaCircuit(g, 1), maxcutHamiltonian(g));

    AdamOptions options;
    options.maxIterations = 10;

    Adam serial(options);
    const OptimizerResult r1 = serial.minimize(a, {0.1, -0.2});

    ExecutionEngine engine(4);
    Adam pooled(options);
    pooled.setEngine(&engine);
    const OptimizerResult r2 = pooled.minimize(b, {0.1, -0.2});

    EXPECT_EQ(r1.bestValue, r2.bestValue);
    EXPECT_EQ(r1.bestParams, r2.bestParams);
    EXPECT_EQ(r1.numQueries, r2.numQueries);
}

// ----------------------------------------------------------------
// Asynchronous submission API
// ----------------------------------------------------------------

TEST(AsyncEngine, SubmitGetMatchesEvaluate)
{
    const Graph g = testGraph();
    SampledCost a(qaoaCircuit(g, 1), maxcutHamiltonian(g), 128,
                  NoiseModel{}, 5);
    SampledCost b(qaoaCircuit(g, 1), maxcutHamiltonian(g), 128,
                  NoiseModel{}, 5);
    const auto points = testPoints(24);

    const std::vector<double> reference = a.evaluateBatch(points);

    ExecutionEngine engine(4);
    BatchHandle handle = engine.submit(b, points);
    const std::vector<double> async = handle.get();
    ASSERT_EQ(reference, async);
    EXPECT_TRUE(handle.done());
    EXPECT_EQ(b.numQueries(), points.size());

    const BatchStats stats = handle.stats();
    EXPECT_EQ(stats.pointsTotal, points.size());
    EXPECT_EQ(stats.pointsCompleted, points.size());
    EXPECT_EQ(stats.pointsCancelled, 0u);

    // get() is repeatable.
    EXPECT_EQ(async, handle.get());
}

TEST(AsyncEngine, OverlappingBatchesAnyCompletionOrder)
{
    // Three batches in flight on one stochastic cost, collected in
    // reverse submission order: ordinals are reserved at submission,
    // so the concatenated results equal the serial stream regardless
    // of completion or collection order.
    const Graph g = testGraph();
    SampledCost serial(qaoaCircuit(g, 1), maxcutHamiltonian(g), 128,
                       NoiseModel{}, 17);
    SampledCost async(qaoaCircuit(g, 1), maxcutHamiltonian(g), 128,
                      NoiseModel{}, 17);

    const auto all = testPoints(60);
    const std::vector<std::vector<double>> batches[3] = {
        {all.begin(), all.begin() + 20},
        {all.begin() + 20, all.begin() + 40},
        {all.begin() + 40, all.end()},
    };

    const std::vector<double> reference = serial.evaluateBatch(all);

    ExecutionEngine engine(4);
    BatchHandle h0 = engine.submit(async, batches[0]);
    BatchHandle h1 = engine.submit(async, batches[1]);
    BatchHandle h2 = engine.submit(async, batches[2]);
    const std::vector<double> v2 = h2.get();
    const std::vector<double> v1 = h1.get();
    const std::vector<double> v0 = h0.get();

    std::vector<double> collected = v0;
    collected.insert(collected.end(), v1.begin(), v1.end());
    collected.insert(collected.end(), v2.begin(), v2.end());
    EXPECT_EQ(reference, collected);
    EXPECT_EQ(async.numQueries(), all.size());
}

TEST(AsyncEngine, OnCompleteStreamsEveryPointExactlyOnce)
{
    LambdaCost cost(
        2, [](const std::vector<double>& p) { return p[0] + 2.0 * p[1]; },
        /*thread_safe=*/true);
    const auto points = testPoints(64);

    std::mutex seen_mutex;
    std::map<std::size_t, double> seen;
    SubmitOptions options;
    options.onComplete = [&](std::size_t index, double value) {
        std::lock_guard<std::mutex> lock(seen_mutex);
        EXPECT_EQ(seen.count(index), 0u) << "duplicate callback";
        seen[index] = value;
    };

    ExecutionEngine engine(4);
    BatchHandle handle = engine.submit(cost, points, options);
    const std::vector<double> values = handle.get();

    // done() flips only after the last callback returned, so no lock
    // is needed to inspect the map now.
    ASSERT_EQ(seen.size(), points.size());
    for (std::size_t i = 0; i < points.size(); ++i)
        EXPECT_EQ(seen.at(i), values[i]);
}

TEST(AsyncEngine, StatsReportPrefixCacheTraffic)
{
    Rng rng(41);
    const Graph g = random3RegularGraph(6, rng);
    const GridSpec grid = GridSpec::qaoaP2(3, 4);
    StatevectorCost cost(qaoaCircuit(g, 2), maxcutHamiltonian(g));
    const auto points = axisMajorPoints(grid, cost);

    // Serial engine: the batch runs inline on the parent evaluator,
    // whose own cache counters must match the handle's delta.
    BatchHandle handle = ExecutionEngine::serial().submit(cost, points);
    const BatchStats stats = handle.stats(); // pre-wait: may be zero
    (void)stats;
    handle.wait();
    const BatchStats done = handle.stats();
    EXPECT_EQ(done.pointsCompleted, points.size());
    EXPECT_GT(done.kernel.cacheLookups, 0u);
    EXPECT_GT(done.kernel.cacheHits, 0u);
    if (done.pointsRemote == 0) {
        // In-process, the parent evaluator's own cache counters must
        // match the handle's delta. Under distributed execution
        // (OSCAR_DIST_WORKERS) the traffic happens in a worker
        // process, so the handle's delta is the only view -- asserted
        // nonzero above -- and the parent cache stays cold.
        EXPECT_EQ(done.kernel.cacheHits, cost.prefixCache().hits());
        EXPECT_EQ(done.kernel.cacheLookups,
                  cost.prefixCache().lookups());
    } else {
        EXPECT_EQ(cost.prefixCache().lookups(), 0u);
    }

    // A tiny checkpoint budget forces evictions, and they are visible
    // through the same stats path.
    StatevectorCost tiny(qaoaCircuit(g, 2), maxcutHamiltonian(g));
    KernelOptions small;
    small.prefixCacheBudgetBytes = 4096;
    tiny.configureKernel(small);
    BatchHandle tiny_handle =
        ExecutionEngine::serial().submit(tiny, points);
    tiny_handle.wait();
    EXPECT_GT(tiny_handle.stats().kernel.cacheEvictions, 0u);
    if (tiny_handle.stats().pointsRemote == 0) {
        EXPECT_EQ(tiny_handle.stats().kernel.cacheEvictions,
                  tiny.prefixCache().evictions());
    }
}

TEST(AsyncEngine, OscarResultSurfacesExecutionStats)
{
    const Graph g = testGraph();
    const GridSpec grid = GridSpec::qaoaP1(16, 24);
    StatevectorCost cost(qaoaCircuit(g, 1), maxcutHamiltonian(g));

    OscarOptions options;
    options.samplingFraction = 0.2;
    options.numThreads = 1;
    const OscarResult result = Oscar::reconstruct(grid, cost, options);
    EXPECT_EQ(result.execution.pointsTotal, result.samples.size());
    EXPECT_EQ(result.execution.pointsCompleted, result.samples.size());
    EXPECT_GT(result.execution.kernel.cacheLookups, 0u);
}

TEST(AsyncEngine, StreamingReconstructBitIdenticalAcrossThreadCounts)
{
    const Graph g = testGraph();
    const GridSpec grid = GridSpec::qaoaP1(20, 30);

    OscarOptions serial_options;
    serial_options.samplingFraction = 0.1;
    serial_options.seed = 42;
    serial_options.numThreads = 1;
    serial_options.streaming.shards = 4;
    serial_options.streaming.warmupIterations = 10;

    OscarOptions pooled_options = serial_options;
    pooled_options.numThreads = 4;

    StatevectorCost a(qaoaCircuit(g, 1), maxcutHamiltonian(g));
    StatevectorCost b(qaoaCircuit(g, 1), maxcutHamiltonian(g));
    const OscarResult serial = Oscar::reconstruct(grid, a, serial_options);
    const OscarResult pooled = Oscar::reconstruct(grid, b, pooled_options);
    ASSERT_EQ(serial.samples.indices, pooled.samples.indices);
    ASSERT_EQ(serial.samples.values, pooled.samples.values);
    for (std::size_t i = 0; i < serial.reconstructed.numPoints(); ++i)
        EXPECT_EQ(serial.reconstructed.value(i),
                  pooled.reconstructed.value(i));

    // The measured samples equal the synchronous pipeline's: shards
    // only re-slice the one global submission order.
    OscarOptions barrier_options = serial_options;
    barrier_options.streaming = StreamingOptions{};
    StatevectorCost c(qaoaCircuit(g, 1), maxcutHamiltonian(g));
    const OscarResult barrier =
        Oscar::reconstruct(grid, c, barrier_options);
    EXPECT_EQ(barrier.samples.indices, serial.samples.indices);
    EXPECT_EQ(barrier.samples.values, serial.samples.values);

    // Stochastic backend: ordinal-keyed streams stay bit-identical
    // under sharded submission too.
    {
        SampledCost sa(qaoaCircuit(g, 1), maxcutHamiltonian(g), 128,
                       NoiseModel{}, 3);
        SampledCost sb(qaoaCircuit(g, 1), maxcutHamiltonian(g), 128,
                       NoiseModel{}, 3);
        const OscarResult s1 =
            Oscar::reconstruct(grid, sa, serial_options);
        const OscarResult s2 =
            Oscar::reconstruct(grid, sb, pooled_options);
        ASSERT_EQ(s1.samples.values, s2.samples.values);
    }
}

TEST(AsyncEngine, PrefixPullSchedulerDeterministicAndPrefixAware)
{
    const Graph g = testGraph();
    const GridSpec grid = GridSpec::qaoaP1(12, 18);

    auto make_devices = [&] {
        std::vector<QpuDevice> devices;
        for (int d = 0; d < 3; ++d) {
            QpuDevice dev;
            dev.name = "qpu" + std::to_string(d);
            dev.cost = std::make_shared<AnalyticQaoaCost>(g);
            dev.latency = LatencyModel{};
            devices.push_back(std::move(dev));
        }
        return devices;
    };

    std::vector<std::size_t> indices;
    for (std::size_t i = 0; i < grid.numPoints(); i += 2)
        indices.push_back(i);

    auto devices_serial = make_devices();
    Rng rng_serial(77);
    const ParallelRunResult serial = runParallelSampling(
        grid, devices_serial, indices, rng_serial,
        Assignment::PrefixPull);

    auto devices_pooled = make_devices();
    Rng rng_pooled(77);
    ExecutionEngine engine(4);
    const ParallelRunResult pooled = runParallelSampling(
        grid, devices_pooled, indices, rng_pooled,
        Assignment::PrefixPull, {}, &engine);

    // Bit-identical for any engine thread count.
    ASSERT_EQ(serial.samples.size(), pooled.samples.size());
    EXPECT_EQ(serial.makespan, pooled.makespan);
    for (std::size_t i = 0; i < serial.samples.size(); ++i) {
        EXPECT_EQ(serial.samples[i].index, pooled.samples[i].index);
        EXPECT_EQ(serial.samples[i].value, pooled.samples[i].value);
        EXPECT_EQ(serial.samples[i].device, pooled.samples[i].device);
        EXPECT_EQ(serial.samples[i].completionTime,
                  pooled.samples[i].completionTime);
    }

    // Every requested index ran exactly once.
    std::vector<std::size_t> executed;
    for (const ParallelSample& s : serial.samples)
        executed.push_back(s.index);
    std::sort(executed.begin(), executed.end());
    EXPECT_EQ(executed, indices);

    // Prefix-aware placement: AnalyticQaoaCost's hint is {gamma,
    // beta}, so all samples sharing a gamma coordinate (one prefix
    // group) must land on a single device.
    std::map<std::size_t, std::size_t> device_of_gamma;
    for (const ParallelSample& s : serial.samples) {
        const std::size_t gamma = grid.coordsAt(s.index)[1];
        const auto it = device_of_gamma.find(gamma);
        if (it == device_of_gamma.end())
            device_of_gamma[gamma] = s.device;
        else
            EXPECT_EQ(it->second, s.device)
                << "gamma column " << gamma << " split across devices";
    }

    // And the values equal the static scheduler's (same evaluators,
    // device-local ordinal streams are deterministic per backend).
    std::size_t busy_devices = 0;
    for (std::size_t count : serial.perDeviceCounts)
        busy_devices += count > 0 ? 1 : 0;
    EXPECT_GT(busy_devices, 1u) << "pull queue never balanced load";
}

TEST(AsyncEngine, ReconstructParallelPrefixPullThreadInvariant)
{
    const Graph g = testGraph();
    const GridSpec grid = GridSpec::qaoaP1(16, 20);

    auto make_devices = [&] {
        std::vector<QpuDevice> devices;
        for (int d = 0; d < 2; ++d) {
            QpuDevice dev;
            dev.name = "qpu" + std::to_string(d);
            dev.cost = std::make_shared<SampledCost>(
                qaoaCircuit(g, 1), maxcutHamiltonian(g), 64, NoiseModel{},
                100 + d);
            dev.latency = LatencyModel{};
            devices.push_back(std::move(dev));
        }
        return devices;
    };

    OscarOptions options;
    options.samplingFraction = 0.15;
    options.parallelAssignment = Assignment::PrefixPull;

    auto devices_serial = make_devices();
    Rng rng_serial(5);
    ExecutionEngine serial_engine(1);
    const OscarResult serial = Oscar::reconstructParallel(
        grid, devices_serial, {0.5, 0.5}, false, 0.01, rng_serial,
        options, &serial_engine);

    auto devices_pooled = make_devices();
    Rng rng_pooled(5);
    ExecutionEngine pooled_engine(4);
    const OscarResult pooled = Oscar::reconstructParallel(
        grid, devices_pooled, {0.5, 0.5}, false, 0.01, rng_pooled,
        options, &pooled_engine);

    ASSERT_EQ(serial.samples.indices, pooled.samples.indices);
    ASSERT_EQ(serial.samples.values, pooled.samples.values);
    EXPECT_EQ(serial.execution.pointsCompleted,
              pooled.execution.pointsCompleted);
}

TEST(AsyncEngine, NelderMeadSpeculativeMatchesPlainOnDeterministicCost)
{
    const Graph g = testGraph();
    StatevectorCost plain_cost(qaoaCircuit(g, 1), maxcutHamiltonian(g));
    StatevectorCost spec_cost(qaoaCircuit(g, 1), maxcutHamiltonian(g));
    StatevectorCost spec_serial_cost(qaoaCircuit(g, 1),
                                     maxcutHamiltonian(g));

    NelderMeadOptions options;
    options.maxIterations = 25;

    NelderMead plain(options);
    const OptimizerResult reference =
        plain.minimize(plain_cost, {0.2, -0.4});

    // Speculative probes on a pooled engine: same trajectory, same
    // answer (deterministic backend; ordinals are irrelevant to it).
    NelderMeadOptions spec_options = options;
    spec_options.speculative = true;
    ExecutionEngine engine(4);
    NelderMead speculative(spec_options);
    speculative.setEngine(&engine);
    const OptimizerResult spec =
        speculative.minimize(spec_cost, {0.2, -0.4});
    EXPECT_EQ(reference.bestValue, spec.bestValue);
    EXPECT_EQ(reference.bestParams, spec.bestParams);
    EXPECT_EQ(reference.path, spec.path);

    // On a serial engine every cancel lands before the loser would
    // run, so speculation costs exactly zero extra queries.
    ExecutionEngine serial_engine(1);
    NelderMead spec_serial(spec_options);
    spec_serial.setEngine(&serial_engine);
    const OptimizerResult serial_run =
        spec_serial.minimize(spec_serial_cost, {0.2, -0.4});
    EXPECT_EQ(reference.bestValue, serial_run.bestValue);
    EXPECT_EQ(reference.numQueries, serial_run.numQueries);
}

TEST(AsyncEngine, ThreadCountDefaultsAreAligned)
{
    // One convention everywhere: 0 = hardware concurrency, 1 =
    // serial; both option structs default to 0.
    EXPECT_EQ(EngineOptions{}.numThreads, 0);
    EXPECT_EQ(OscarOptions{}.numThreads, 0);

    const int hardware = ExecutionEngine::resolveThreads(0);
    EXPECT_GE(hardware, 1);
    EXPECT_EQ(ExecutionEngine::resolveThreads(3), 3);
    EXPECT_EQ(ExecutionEngine::resolveThreads(1), 1);

    EXPECT_EQ(ExecutionEngine(EngineOptions{}).numThreads(), hardware);
    EXPECT_EQ(ExecutionEngine().numThreads(), hardware);
    EXPECT_EQ(ExecutionEngine::serial().numThreads(), 1);
}

TEST(AsyncEngine, OscarOptionsRoundTripIntoEngine)
{
    // The documented OscarOptions::numThreads -> engine mapping:
    // caller engine wins; 1 borrows the shared serial engine; k spawns
    // k threads; 0 spawns hardware concurrency.
    OscarOptions options;

    ExecutionEngine caller(2);
    EXPECT_EQ(PipelineEngine(&caller, options).get(), &caller);

    options.numThreads = 1;
    EXPECT_EQ(PipelineEngine(nullptr, options).get(),
              &ExecutionEngine::serial());

    options.numThreads = 3;
    EXPECT_EQ(PipelineEngine(nullptr, options).get()->numThreads(), 3);

    options.numThreads = 0;
    EXPECT_EQ(PipelineEngine(nullptr, options).get()->numThreads(),
              ExecutionEngine::resolveThreads(0));
}

} // namespace
} // namespace oscar
