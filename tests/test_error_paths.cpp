/**
 * @file
 * Failure-injection and error-path tests across modules: every public
 * entry point must reject malformed input with a clear exception
 * rather than corrupting state.
 */

#include <gtest/gtest.h>

#include <stdexcept>

#include "src/ansatz/qaoa.h"
#include "src/ansatz/two_local.h"
#include "src/backend/sampled_backend.h"
#include "src/backend/statevector_backend.h"
#include "src/core/oscar.h"
#include "src/graph/generators.h"
#include "src/hamiltonian/maxcut.h"
#include "src/landscape/metrics.h"
#include "src/mitigation/folding.h"
#include "src/parallel/scheduler.h"

namespace {

using namespace oscar;

TEST(ErrorPaths, CostFunctionRejectsWrongArity)
{
    LambdaCost cost(2, [](const std::vector<double>&) { return 0.0; });
    EXPECT_THROW(cost.evaluate({1.0}), std::invalid_argument);
    EXPECT_THROW(cost.evaluate({1.0, 2.0, 3.0}), std::invalid_argument);
    EXPECT_EQ(cost.numQueries(), 0u); // failed calls are not counted
}

TEST(ErrorPaths, GridSearchRejectsRankMismatch)
{
    LambdaCost cost(3, [](const std::vector<double>&) { return 0.0; });
    const GridSpec grid({{0.0, 1.0, 2}, {0.0, 1.0, 2}});
    EXPECT_THROW(Landscape::gridSearch(grid, cost),
                 std::invalid_argument);
}

TEST(ErrorPaths, OscarRejectsBadSamplingFraction)
{
    Rng rng(1);
    const Graph g = random3RegularGraph(4, rng);
    StatevectorCost cost(qaoaCircuit(g, 1), maxcutHamiltonian(g));
    const GridSpec grid = GridSpec::qaoaP1(6, 6);
    for (double fraction : {0.0, -0.5, 1.5}) {
        OscarOptions options;
        options.samplingFraction = fraction;
        EXPECT_THROW(Oscar::reconstruct(grid, cost, options),
                     std::invalid_argument)
            << fraction;
    }
}

TEST(ErrorPaths, ReconstructorRejectsOddRank)
{
    EXPECT_THROW(reconstructLandscape({4, 4, 4}, {0}, {1.0}),
                 std::invalid_argument);
}

TEST(ErrorPaths, FoldingRejectsSubUnitScale)
{
    Circuit c(1, 0);
    c.append(Gate::h(0));
    EXPECT_THROW(foldGlobal(c, 0.5), std::invalid_argument);
}

TEST(ErrorPaths, SchedulerRejectsBadFractions)
{
    Rng rng(2);
    const Graph g = random3RegularGraph(4, rng);
    std::vector<QpuDevice> devices(2);
    for (auto& d : devices)
        d.cost = std::make_shared<StatevectorCost>(
            qaoaCircuit(g, 1), maxcutHamiltonian(g));
    const GridSpec grid = GridSpec::qaoaP1(4, 4);
    const std::vector<std::size_t> indices{0, 1, 2, 3};

    EXPECT_THROW(runParallelSampling(grid, devices, indices, rng,
                                     Assignment::FractionSplit,
                                     {0.5}),
                 std::invalid_argument);
    EXPECT_THROW(runParallelSampling(grid, devices, indices, rng,
                                     Assignment::FractionSplit,
                                     {0.7, 0.7}),
                 std::invalid_argument);
    EXPECT_THROW(runParallelSampling(grid, devices, indices, rng,
                                     Assignment::FractionSplit,
                                     {-0.5, 1.5}),
                 std::invalid_argument);
    std::vector<QpuDevice> none;
    EXPECT_THROW(runParallelSampling(grid, none, indices, rng),
                 std::invalid_argument);
}

TEST(ErrorPaths, NcmRejectsTinyTrainingSets)
{
    EXPECT_THROW(NoiseCompensationModel::train({1.0}, {2.0}),
                 std::invalid_argument);
    EXPECT_THROW(NoiseCompensationModel::train({1.0, 2.0}, {1.0}),
                 std::invalid_argument);
}

TEST(ErrorPaths, AnsatzRejectsBadConfigs)
{
    Rng rng(3);
    const Graph g = random3RegularGraph(4, rng);
    EXPECT_THROW(qaoaCircuit(g, 0), std::invalid_argument);
    EXPECT_THROW(twoLocalCircuit(3, -1), std::invalid_argument);
}

TEST(ErrorPaths, BackendsRejectMismatchedHamiltonian)
{
    Rng rng(4);
    const Graph g4 = random3RegularGraph(4, rng);
    const Graph g6 = random3RegularGraph(6, rng);
    EXPECT_THROW(StatevectorCost(qaoaCircuit(g4, 1),
                                 maxcutHamiltonian(g6)),
                 std::invalid_argument);
    EXPECT_THROW(SampledCost(qaoaCircuit(g4, 1), maxcutHamiltonian(g6),
                             10, NoiseModel::idealModel(), 1),
                 std::invalid_argument);
}

TEST(ErrorPaths, StatevectorRejectsHugeRegisters)
{
    EXPECT_THROW(Statevector(40), std::invalid_argument);
    EXPECT_THROW(DensityMatrix(20), std::invalid_argument);
}

TEST(ErrorPaths, NrmseRejectsShapeMismatch)
{
    NdArray a({4});
    NdArray b({5});
    EXPECT_THROW(nrmse(a, b), std::invalid_argument);
}

TEST(ErrorPaths, ShotNoiseRejectsZeroShots)
{
    auto inner = std::make_shared<LambdaCost>(
        1, [](const std::vector<double>&) { return 0.0; });
    EXPECT_THROW(ShotNoiseCost(inner, 0, 1.0, 1),
                 std::invalid_argument);
}

TEST(ErrorPaths, GraphGeneratorBoundaries)
{
    Rng rng(5);
    EXPECT_THROW(meshGraph(0, 3), std::invalid_argument);
    EXPECT_THROW(Graph(0), std::invalid_argument);
    // Smallest valid 3-regular graph is K4.
    const Graph k4 = random3RegularGraph(4, rng);
    EXPECT_EQ(k4.numEdges(), 6u);
}

} // namespace
