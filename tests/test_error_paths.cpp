/**
 * @file
 * Failure-injection and error-path tests across modules: every public
 * entry point must reject malformed input with a clear exception
 * rather than corrupting state.
 */

#include <gtest/gtest.h>

#include <chrono>
#include <stdexcept>
#include <thread>

#include "src/ansatz/qaoa.h"
#include "src/ansatz/two_local.h"
#include "src/backend/sampled_backend.h"
#include "src/backend/statevector_backend.h"
#include "src/core/oscar.h"
#include "src/graph/generators.h"
#include "src/hamiltonian/maxcut.h"
#include "src/landscape/metrics.h"
#include "src/mitigation/folding.h"
#include "src/parallel/scheduler.h"

namespace {

using namespace oscar;

TEST(ErrorPaths, CostFunctionRejectsWrongArity)
{
    LambdaCost cost(2, [](const std::vector<double>&) { return 0.0; });
    EXPECT_THROW(cost.evaluate({1.0}), std::invalid_argument);
    EXPECT_THROW(cost.evaluate({1.0, 2.0, 3.0}), std::invalid_argument);
    EXPECT_EQ(cost.numQueries(), 0u); // failed calls are not counted
}

TEST(ErrorPaths, GridSearchRejectsRankMismatch)
{
    LambdaCost cost(3, [](const std::vector<double>&) { return 0.0; });
    const GridSpec grid({{0.0, 1.0, 2}, {0.0, 1.0, 2}});
    EXPECT_THROW(Landscape::gridSearch(grid, cost),
                 std::invalid_argument);
}

TEST(ErrorPaths, OscarRejectsBadSamplingFraction)
{
    Rng rng(1);
    const Graph g = random3RegularGraph(4, rng);
    StatevectorCost cost(qaoaCircuit(g, 1), maxcutHamiltonian(g));
    const GridSpec grid = GridSpec::qaoaP1(6, 6);
    for (double fraction : {0.0, -0.5, 1.5}) {
        OscarOptions options;
        options.samplingFraction = fraction;
        EXPECT_THROW(Oscar::reconstruct(grid, cost, options),
                     std::invalid_argument)
            << fraction;
    }
}

TEST(ErrorPaths, ReconstructorRejectsOddRank)
{
    EXPECT_THROW(reconstructLandscape({4, 4, 4}, {0}, {1.0}),
                 std::invalid_argument);
}

TEST(ErrorPaths, FoldingRejectsSubUnitScale)
{
    Circuit c(1, 0);
    c.append(Gate::h(0));
    EXPECT_THROW(foldGlobal(c, 0.5), std::invalid_argument);
}

TEST(ErrorPaths, SchedulerRejectsBadFractions)
{
    Rng rng(2);
    const Graph g = random3RegularGraph(4, rng);
    std::vector<QpuDevice> devices(2);
    for (auto& d : devices)
        d.cost = std::make_shared<StatevectorCost>(
            qaoaCircuit(g, 1), maxcutHamiltonian(g));
    const GridSpec grid = GridSpec::qaoaP1(4, 4);
    const std::vector<std::size_t> indices{0, 1, 2, 3};

    EXPECT_THROW(runParallelSampling(grid, devices, indices, rng,
                                     Assignment::FractionSplit,
                                     {0.5}),
                 std::invalid_argument);
    EXPECT_THROW(runParallelSampling(grid, devices, indices, rng,
                                     Assignment::FractionSplit,
                                     {0.7, 0.7}),
                 std::invalid_argument);
    EXPECT_THROW(runParallelSampling(grid, devices, indices, rng,
                                     Assignment::FractionSplit,
                                     {-0.5, 1.5}),
                 std::invalid_argument);
    std::vector<QpuDevice> none;
    EXPECT_THROW(runParallelSampling(grid, none, indices, rng),
                 std::invalid_argument);
}

TEST(ErrorPaths, NcmRejectsTinyTrainingSets)
{
    EXPECT_THROW(NoiseCompensationModel::train({1.0}, {2.0}),
                 std::invalid_argument);
    EXPECT_THROW(NoiseCompensationModel::train({1.0, 2.0}, {1.0}),
                 std::invalid_argument);
}

TEST(ErrorPaths, AnsatzRejectsBadConfigs)
{
    Rng rng(3);
    const Graph g = random3RegularGraph(4, rng);
    EXPECT_THROW(qaoaCircuit(g, 0), std::invalid_argument);
    EXPECT_THROW(twoLocalCircuit(3, -1), std::invalid_argument);
}

TEST(ErrorPaths, BackendsRejectMismatchedHamiltonian)
{
    Rng rng(4);
    const Graph g4 = random3RegularGraph(4, rng);
    const Graph g6 = random3RegularGraph(6, rng);
    EXPECT_THROW(StatevectorCost(qaoaCircuit(g4, 1),
                                 maxcutHamiltonian(g6)),
                 std::invalid_argument);
    EXPECT_THROW(SampledCost(qaoaCircuit(g4, 1), maxcutHamiltonian(g6),
                             10, NoiseModel::idealModel(), 1),
                 std::invalid_argument);
}

TEST(ErrorPaths, StatevectorRejectsHugeRegisters)
{
    EXPECT_THROW(Statevector(40), std::invalid_argument);
    EXPECT_THROW(DensityMatrix(20), std::invalid_argument);
}

TEST(ErrorPaths, NrmseRejectsShapeMismatch)
{
    NdArray a({4});
    NdArray b({5});
    EXPECT_THROW(nrmse(a, b), std::invalid_argument);
}

TEST(ErrorPaths, ShotNoiseRejectsZeroShots)
{
    auto inner = std::make_shared<LambdaCost>(
        1, [](const std::vector<double>&) { return 0.0; });
    EXPECT_THROW(ShotNoiseCost(inner, 0, 1.0, 1),
                 std::invalid_argument);
}

TEST(ErrorPaths, WorkerExceptionPropagatesThroughGet)
{
    // A cost that fails on some points: the first worker exception is
    // rethrown by get(), and the engine stays usable afterwards.
    auto make_points = [](std::size_t n) {
        std::vector<std::vector<double>> points;
        for (std::size_t i = 0; i < n; ++i)
            points.push_back({static_cast<double>(i)});
        return points;
    };
    LambdaCost fragile(
        1,
        [](const std::vector<double>& p) {
            if (p[0] >= 40.0)
                throw std::runtime_error("backend exploded");
            return p[0];
        },
        /*thread_safe=*/true);

    ExecutionEngine engine(4);
    BatchHandle handle = engine.submit(fragile, make_points(64));
    EXPECT_THROW(handle.get(), std::runtime_error);
    EXPECT_TRUE(handle.done());
    EXPECT_LT(handle.stats().pointsCompleted, 64u);

    // Same contract on the inline (serial / non-replicable) path.
    LambdaCost fragile_serial(1, [](const std::vector<double>& p) {
        if (p[0] >= 1.0)
            throw std::runtime_error("backend exploded");
        return p[0];
    });
    BatchHandle inline_handle =
        engine.submit(fragile_serial, make_points(8));
    EXPECT_THROW(inline_handle.get(), std::runtime_error);

    // The engine survives both failures.
    LambdaCost fine(
        1, [](const std::vector<double>& p) { return 2.0 * p[0]; },
        /*thread_safe=*/true);
    const std::vector<double> values =
        engine.evaluate(fine, make_points(32));
    for (std::size_t i = 0; i < values.size(); ++i)
        EXPECT_EQ(values[i], 2.0 * static_cast<double>(i));
}

TEST(ErrorPaths, ThrowingOnCompleteCallbackFailsBatchSafely)
{
    // A throwing streaming callback must fail the batch via get()
    // without terminating a worker or leaving the handle unfinished.
    LambdaCost cost(
        1, [](const std::vector<double>& p) { return p[0]; },
        /*thread_safe=*/true);
    std::vector<std::vector<double>> points;
    for (int i = 0; i < 32; ++i)
        points.push_back({static_cast<double>(i)});

    SubmitOptions options;
    options.onComplete = [](std::size_t index, double) {
        if (index >= 8)
            throw std::runtime_error("consumer exploded");
    };

    for (int engine_threads : {1, 4}) {
        ExecutionEngine engine(engine_threads);
        BatchHandle handle = engine.submit(cost, points, options);
        EXPECT_THROW(handle.get(), std::runtime_error);
        EXPECT_TRUE(handle.done());
        // The values themselves were computed and charged.
        EXPECT_EQ(handle.stats().pointsCompleted, points.size());
        // The engine and further submissions stay healthy.
        const std::vector<double> ok = engine.evaluate(cost, points);
        EXPECT_EQ(ok.size(), points.size());
    }
}

TEST(ErrorPaths, CancelKeepsQueriesAndStreamsConsistent)
{
    auto make_cost = [] {
        return ShotNoiseCost(
            std::make_shared<LambdaCost>(
                1,
                [](const std::vector<double>& p) { return p[0] * p[0]; },
                /*thread_safe=*/true),
            64, 1.0, 99);
    };
    std::vector<std::vector<double>> points;
    for (int i = 0; i < 8; ++i)
        points.push_back({0.1 * i});
    const std::vector<double> probe{0.77};

    // Reference stream: the batch runs to completion, then one more
    // evaluation consumes ordinal 8.
    ShotNoiseCost reference = make_cost();
    reference.evaluateBatch(points);
    const double reference_value = reference.evaluate(probe);
    EXPECT_EQ(reference.numQueries(), 9u);

    // Cancelled run: nothing of the batch executes (serial engine,
    // cancel lands before the deferred inline execution), queries are
    // refunded, but the 8 ordinals stay consumed -- so the follow-up
    // evaluation reproduces the reference stream bit for bit.
    ShotNoiseCost cancelled = make_cost();
    BatchHandle handle = ExecutionEngine::serial().submit(cancelled,
                                                          points);
    EXPECT_TRUE(handle.cancel());
    EXPECT_FALSE(handle.cancel()) << "second cancel must be a no-op";
    handle.wait();
    EXPECT_EQ(handle.stats().pointsCancelled, points.size());
    EXPECT_EQ(cancelled.numQueries(), 0u);
    EXPECT_THROW(handle.get(), std::runtime_error);

    EXPECT_EQ(cancelled.evaluate(probe), reference_value);
    EXPECT_EQ(cancelled.numQueries(), 1u);
}

TEST(ErrorPaths, DestroyEngineWithOutstandingHandlesDoesNotDeadlock)
{
    LambdaCost slow(
        1,
        [](const std::vector<double>& p) {
            std::this_thread::sleep_for(std::chrono::milliseconds(1));
            return p[0];
        },
        /*thread_safe=*/true);
    std::vector<std::vector<double>> points;
    for (int i = 0; i < 64; ++i)
        points.push_back({static_cast<double>(i)});

    BatchHandle handle;
    {
        ExecutionEngine engine(4);
        handle = engine.submit(slow, points);
        // Engine dies with the batch (at best) partially executed.
    }
    handle.wait(); // must return: destruction retired the batch
    EXPECT_TRUE(handle.done());
    const BatchStats stats = handle.stats();
    EXPECT_EQ(stats.pointsCompleted + stats.pointsCancelled,
              points.size());
    // Only executed points stay charged.
    EXPECT_EQ(slow.numQueries(), stats.pointsCompleted);
}

TEST(ErrorPaths, GraphGeneratorBoundaries)
{
    Rng rng(5);
    EXPECT_THROW(meshGraph(0, 3), std::invalid_argument);
    EXPECT_THROW(Graph(0), std::invalid_argument);
    // Smallest valid 3-regular graph is K4.
    const Graph k4 = random3RegularGraph(4, rng);
    EXPECT_EQ(k4.numEdges(), 6u);
}

} // namespace
