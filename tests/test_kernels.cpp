/**
 * @file
 * Tests for the ISA-dispatched, cache-blocked kernel layer:
 *
 *  - scalar vs AVX2 vs AVX-512 parity on randomized states and
 *    circuits (tolerance-based: different ISAs round differently),
 *  - bit-identical replay within a fixed ISA — straight runs,
 *    segmented checkpoint replays, and blocked vs unblocked plans all
 *    produce the same bits,
 *  - edge cases: dim smaller than the vector width, target qubit at
 *    the highest bit, block windows that split ops across the
 *    boundary (diagonal high-qubit resolution, high-control CX),
 *  - the batched diagonal expectation is bit-identical to per-point
 *    evaluation for every ISA, in the statevector backend and the
 *    analytic QAOA closed form,
 *  - the super-kernel primitives (rotX/rotY, diagonal table, dense
 *    matvec) and the batched Pauli contraction agree across tables,
 *    with the batched Pauli kernel bit-identical to the single-state
 *    kernel per state,
 *  - requesting an unavailable ISA throws, naming the available ones,
 *  - kernel ISA / blocked-pass / fusion counters surface through
 *    CostFunction::kernelStats and BatchHandle::stats,
 *  - amplitude and fused-payload storage is cache-line aligned.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "src/ansatz/qaoa.h"
#include "src/backend/analytic_qaoa.h"
#include "src/backend/engine.h"
#include "src/backend/statevector_backend.h"
#include "src/common/rng.h"
#include "src/graph/generators.h"
#include "src/hamiltonian/maxcut.h"
#include "src/landscape/grid.h"
#include "src/quantum/compiled_circuit.h"
#include "src/quantum/kernels.h"
#include "src/quantum/statevector.h"

namespace oscar {
namespace {

using kernels::KernelIsa;
using kernels::KernelTable;

/** Normalized random amplitude vector (reproducible). */
AlignedVector<cplx>
randomAmps(std::size_t dim, Rng& rng)
{
    AlignedVector<cplx> amps(dim);
    double norm2 = 0.0;
    for (std::size_t i = 0; i < dim; ++i) {
        amps[i] = cplx(rng.uniform(-1.0, 1.0), rng.uniform(-1.0, 1.0));
        norm2 += std::norm(amps[i]);
    }
    const double inv = 1.0 / std::sqrt(norm2);
    for (cplx& a : amps)
        a *= inv;
    return amps;
}

void
expectAmpsNear(const AlignedVector<cplx>& a, const AlignedVector<cplx>& b,
               double tol)
{
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_NEAR(a[i].real(), b[i].real(), tol) << "amp " << i;
        EXPECT_NEAR(a[i].imag(), b[i].imag(), tol) << "amp " << i;
    }
}

void
expectAmpsIdentical(const AlignedVector<cplx>& a,
                    const AlignedVector<cplx>& b)
{
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i)
        EXPECT_EQ(a[i], b[i]) << "amp " << i;
}

/** Tables to exercise: scalar always, wide ISAs when this host has them. */
std::vector<const KernelTable*>
availableTables()
{
    std::vector<const KernelTable*> tables = {
        &kernels::scalarKernelTable()};
    if (kernels::avx2Available())
        tables.push_back(&kernels::kernelTable(KernelIsa::Avx2));
    if (kernels::avx512Available())
        tables.push_back(&kernels::kernelTable(KernelIsa::Avx512));
    return tables;
}

TEST(Kernels, ScalarAvx2ParityRandomized)
{
    if (!kernels::avx2Available())
        GTEST_SKIP() << "no AVX2 on this host/build";
    const KernelTable& scalar = kernels::scalarKernelTable();
    const KernelTable& avx2 = kernels::kernelTable(KernelIsa::Avx2);
    ASSERT_EQ(avx2.isa, KernelIsa::Avx2);

    Rng rng(41);
    const std::array<cplx, 4> m = {cplx(0.6, 0.1), cplx(-0.2, 0.77),
                                   cplx(0.77, 0.2), cplx(0.3, -0.6)};
    const cplx p0 = std::exp(cplx(0.0, -0.37));
    const cplx p1 = std::exp(cplx(0.0, 0.37));

    // Every qubit position including the highest bit, for dims from
    // below the vector width (n = 1: one pair) upward.
    for (int n = 1; n <= 7; ++n) {
        const std::size_t dim = std::size_t{1} << n;
        for (int q = 0; q < n; ++q) {
            AlignedVector<cplx> a = randomAmps(dim, rng);
            AlignedVector<cplx> b = a;
            scalar.matrix1q(a.data(), dim, q, m);
            avx2.matrix1q(b.data(), dim, q, m);
            expectAmpsNear(a, b, 1e-14);

            a = randomAmps(dim, rng);
            b = a;
            scalar.diag1q(a.data(), dim, q, p0, p1);
            avx2.diag1q(b.data(), dim, q, p0, p1);
            expectAmpsNear(a, b, 1e-14);
        }
        for (int qa = 0; qa < n; ++qa) {
            for (int qb = qa + 1; qb < n; ++qb) {
                AlignedVector<cplx> a = randomAmps(dim, rng);
                AlignedVector<cplx> b = a;
                scalar.phaseZZ(a.data(), dim, qa, qb, p0, p1);
                avx2.phaseZZ(b.data(), dim, qa, qb, p0, p1);
                expectAmpsNear(a, b, 1e-14);
            }
        }
        {
            AlignedVector<cplx> a = randomAmps(dim, rng);
            AlignedVector<cplx> b = a;
            scalar.scale(a.data(), dim, p1);
            avx2.scale(b.data(), dim, p1);
            expectAmpsNear(a, b, 1e-14);
        }
        {
            const AlignedVector<cplx> amps = randomAmps(dim, rng);
            std::vector<double> diag(dim);
            for (std::size_t i = 0; i < dim; ++i)
                diag[i] = rng.uniform(-2.0, 2.0);
            const double es = scalar.expectationDiagonal(
                amps.data(), diag.data(), dim);
            const double ev = avx2.expectationDiagonal(
                amps.data(), diag.data(), dim);
            EXPECT_NEAR(es, ev, 1e-13);
        }
    }
}

TEST(Kernels, ParityOnRandomizedCircuits)
{
    if (!kernels::avx2Available())
        GTEST_SKIP() << "no AVX2 on this host/build";
    Rng rng(7);
    const Graph g = random3RegularGraph(8, rng);
    const Circuit circuit = qaoaCircuit(g, 2);
    const CompiledCircuit compiled(circuit);
    std::vector<double> params(circuit.numParams());
    for (double& p : params)
        p = rng.uniform(-2.0, 2.0);

    AlignedVector<cplx> scalar_amps(std::size_t{1} << 8, cplx(0, 0));
    scalar_amps[0] = 1.0;
    AlignedVector<cplx> avx2_amps = scalar_amps;
    compiled.runRange(scalar_amps.data(), scalar_amps.size(), 0,
                      compiled.numOps(), params.data(),
                      kernels::scalarKernelTable());
    compiled.runRange(avx2_amps.data(), avx2_amps.size(), 0,
                      compiled.numOps(), params.data(),
                      kernels::kernelTable(KernelIsa::Avx2));
    expectAmpsNear(scalar_amps, avx2_amps, 1e-12);
}

TEST(Kernels, BitIdenticalSegmentedReplayPerIsa)
{
    // The prefix-cache invariant under blocking and ISA dispatch:
    // for every available table, running [0, L) then [L, end) — which
    // can split a blocked run — reproduces the straight run bit for
    // bit.
    Rng rng(9);
    const Graph g = random3RegularGraph(6, rng);
    const Circuit circuit = qaoaCircuit(g, 2);
    CompiledCircuit compiled(circuit);
    ASSERT_GT(compiled.numBlockedGroups(), 0u);
    std::vector<double> params(circuit.numParams());
    for (double& p : params)
        p = rng.uniform(-2.0, 2.0);
    const std::size_t dim = std::size_t{1} << 6;

    for (const KernelTable* table : availableTables()) {
        AlignedVector<cplx> straight(dim, cplx(0, 0));
        straight[0] = 1.0;
        compiled.runRange(straight.data(), dim, 0, compiled.numOps(),
                          params.data(), *table);
        for (std::size_t level : compiled.frontierLevels()) {
            AlignedVector<cplx> resumed(dim, cplx(0, 0));
            resumed[0] = 1.0;
            compiled.runRange(resumed.data(), dim, 0, level,
                              params.data(), *table);
            compiled.runRange(resumed.data(), dim, level,
                              compiled.numOps(), params.data(), *table);
            expectAmpsIdentical(straight, resumed);
        }
    }
}

TEST(Kernels, BlockedVsUnblockedBitIdentical)
{
    // A circuit that exercises every boundary case of the blocking
    // pass under a tiny window (k = 2): diagonal ops entirely above
    // the window, diagonal ops straddling it, CX with a high control
    // and low target (blockable) and the reverse (not blockable),
    // plus in-window matrix and swap ops. Blocked and unblocked plans
    // must agree bit for bit on every available table.
    const int n = 6;
    Circuit circuit(n, 2);
    for (int q = 0; q < n; ++q)
        circuit.append(Gate::h(q));
    circuit.append(Gate::rzz(0, 1, 0.3));  // in-window diagonal
    circuit.append(Gate::rzz(1, 5, -0.8)); // straddles the window
    circuit.append(Gate::rzz(4, 5, 1.1));  // fully above the window
    circuit.append(Gate::cz(0, 4));        // partial CZ
    circuit.append(Gate::cz(4, 5));        // high CZ
    circuit.append(Gate::s(5));            // diagonal above the window
    circuit.append(Gate::rzParam(3, 0));   // parameterized high diag
    circuit.append(Gate::cx(5, 1));        // high control, low target
    circuit.append(Gate::cx(1, 5));        // low control, high target:
                                           // breaks the blocked run
    circuit.append(Gate::swap(0, 1));      // in-window swap
    circuit.append(Gate::rx(1, 0.9));
    circuit.append(Gate::ryParam(0, 1, -1.5));
    circuit.append(Gate::rzz(2, 3, 0.25)); // odd boundary: q = k..k+1
    const std::vector<double> params = {0.77, -0.41};

    CompiledCircuit blocked(circuit, CompileOptions{.blockWindow = 2});
    CompiledCircuit plain(circuit, CompileOptions{.blockWindow = 0});
    ASSERT_GT(blocked.numBlockedGroups(), 0u);
    ASSERT_EQ(plain.numBlockedGroups(), 0u);

    const std::size_t dim = std::size_t{1} << n;
    for (const KernelTable* table : availableTables()) {
        AlignedVector<cplx> a(dim, cplx(0, 0)), b(dim, cplx(0, 0));
        a[0] = b[0] = 1.0;
        ReplayCounters counters;
        blocked.runRange(a.data(), dim, 0, blocked.numOps(),
                         params.data(), *table, &counters);
        plain.runRange(b.data(), dim, 0, plain.numOps(), params.data(),
                       *table);
        EXPECT_GT(counters.blockedGroupRuns, 0u);
        EXPECT_GT(counters.blockedOpsApplied, 0u);
        expectAmpsIdentical(a, b);
    }
}

TEST(Kernels, DimSmallerThanVectorWidth)
{
    // A 1-qubit system holds one amplitude pair — half an AVX2
    // register. Every table must handle it.
    const std::array<cplx, 4> h = {cplx(M_SQRT1_2, 0), cplx(M_SQRT1_2, 0),
                                   cplx(M_SQRT1_2, 0),
                                   cplx(-M_SQRT1_2, 0)};
    const std::vector<double> diag = {1.0, -1.0};
    for (const KernelTable* table : availableTables()) {
        AlignedVector<cplx> amps = {cplx(1, 0), cplx(0, 0)};
        table->matrix1q(amps.data(), 2, 0, h);
        EXPECT_NEAR(amps[0].real(), M_SQRT1_2, 1e-15);
        EXPECT_NEAR(amps[1].real(), M_SQRT1_2, 1e-15);
        table->diag1q(amps.data(), 2, 0, cplx(1, 0), cplx(0, 1));
        EXPECT_NEAR(amps[1].imag(), M_SQRT1_2, 1e-15);
        // <Z> of an equal superposition with a relative phase: 0.
        EXPECT_NEAR(table->expectationDiagonal(amps.data(), diag.data(),
                                               2),
                    0.0, 1e-15);
    }
}

TEST(Kernels, BatchedExpectationBitIdenticalPerIsa)
{
    Rng rng(13);
    const std::size_t dim = std::size_t{1} << 9;
    std::vector<double> diag(dim);
    for (double& d : diag)
        d = rng.uniform(-3.0, 3.0);
    std::vector<AlignedVector<cplx>> states;
    std::vector<const cplx*> ptrs;
    for (int s = 0; s < 7; ++s) {
        states.push_back(randomAmps(dim, rng));
        ptrs.push_back(states.back().data());
    }
    for (const KernelTable* table : availableTables()) {
        std::vector<double> batched(states.size());
        table->expectationDiagonalBatch(ptrs.data(), ptrs.size(),
                                        diag.data(), dim,
                                        batched.data());
        for (std::size_t s = 0; s < states.size(); ++s) {
            const double single = table->expectationDiagonal(
                ptrs[s], diag.data(), dim);
            EXPECT_EQ(single, batched[s])
                << kernels::isaName(table->isa) << " state " << s;
        }
    }
}

/** Axis-major points of a 6-qubit p=2 QAOA sweep (beta2 fastest). */
std::vector<std::vector<double>>
axisMajorPoints(const StatevectorCost& probe)
{
    const GridSpec grid = GridSpec::qaoaP2(3, 4);
    std::vector<std::size_t> indices(grid.numPoints());
    for (std::size_t i = 0; i < indices.size(); ++i)
        indices[i] = i;
    const auto perm = grid.prefixFriendlyPermutation(
        indices, probe.batchOrderHint());
    std::vector<std::vector<double>> points;
    points.reserve(perm.size());
    for (std::size_t p : perm)
        points.push_back(grid.pointAt(p));
    return points;
}

TEST(Kernels, StatevectorCostBatchedPathsBitIdentical)
{
    // For every ISA: one-by-one evaluation, the grouped batched path
    // (fused expectation), the cache-off path, and the
    // blocking-disabled path all agree bit for bit.
    Rng rng(21);
    const Graph g = random3RegularGraph(6, rng);
    const Circuit circuit = qaoaCircuit(g, 2);
    const PauliSum ham = maxcutHamiltonian(g);

    std::vector<KernelIsa> isas = {KernelIsa::Scalar};
    if (kernels::avx2Available())
        isas.push_back(KernelIsa::Avx2);
    if (kernels::avx512Available())
        isas.push_back(KernelIsa::Avx512);

    for (KernelIsa isa : isas) {
        KernelOptions base;
        base.isa = isa;

        StatevectorCost one_by_one(circuit, ham);
        one_by_one.configureKernel(base);
        const auto points = axisMajorPoints(one_by_one);
        std::vector<double> reference;
        for (const auto& p : points)
            reference.push_back(one_by_one.evaluate(p));

        StatevectorCost batched(circuit, ham);
        batched.configureKernel(base);
        const auto grouped = batched.evaluateBatch(points);
        const KernelStats stats = batched.kernelStats();
        EXPECT_EQ(stats.isa, isa);
        EXPECT_GT(stats.batchedExpectationPoints, 0u);
        EXPECT_GT(stats.blockedGroupRuns, 0u);

        KernelOptions no_cache = base;
        no_cache.prefixCache = false;
        StatevectorCost uncached(circuit, ham);
        uncached.configureKernel(no_cache);
        const auto uncached_values = uncached.evaluateBatch(points);

        KernelOptions no_block = base;
        no_block.blockWindow = 0;
        no_block.batchedExpectation = false;
        StatevectorCost plain(circuit, ham);
        plain.configureKernel(no_block);
        const auto plain_values = plain.evaluateBatch(points);

        for (std::size_t i = 0; i < points.size(); ++i) {
            EXPECT_EQ(reference[i], grouped[i]) << "point " << i;
            EXPECT_EQ(reference[i], uncached_values[i]) << "point " << i;
            EXPECT_EQ(reference[i], plain_values[i]) << "point " << i;
        }
    }
}

TEST(Kernels, ScalarVsAvx2CostValuesAgreeWithinTolerance)
{
    if (!kernels::avx2Available())
        GTEST_SKIP() << "no AVX2 on this host/build";
    Rng rng(23);
    const Graph g = random3RegularGraph(8, rng);
    const Circuit circuit = qaoaCircuit(g, 1);
    const PauliSum ham = maxcutHamiltonian(g);

    StatevectorCost scalar(circuit, ham);
    KernelOptions scalar_opts;
    scalar_opts.isa = KernelIsa::Scalar;
    scalar.configureKernel(scalar_opts);

    StatevectorCost avx2(circuit, ham);
    KernelOptions avx2_opts;
    avx2_opts.isa = KernelIsa::Avx2;
    avx2.configureKernel(avx2_opts);

    for (int trial = 0; trial < 20; ++trial) {
        const std::vector<double> p = {rng.uniform(-1.0, 1.0),
                                       rng.uniform(-2.0, 2.0)};
        EXPECT_NEAR(scalar.evaluate(p), avx2.evaluate(p), 1e-11);
    }
}

TEST(Kernels, AnalyticBatchedSameGammaBitIdentical)
{
    Rng rng(31);
    const Graph g = random3RegularGraph(10, rng);
    AnalyticQaoaCost one_by_one(g);
    AnalyticQaoaCost batched(g);

    // Axis-major: gamma constant over runs of betas.
    std::vector<std::vector<double>> points;
    for (double gamma : {0.3, 0.9, 1.4}) {
        for (int b = 0; b < 5; ++b)
            points.push_back({-1.0 + 0.37 * b, gamma});
    }
    std::vector<double> reference;
    for (const auto& p : points)
        reference.push_back(one_by_one.evaluate(p));
    const auto values = batched.evaluateBatch(points);
    for (std::size_t i = 0; i < points.size(); ++i)
        EXPECT_EQ(reference[i], values[i]) << "point " << i;
    EXPECT_EQ(batched.kernelStats().batchedExpectationPoints,
              points.size());
}

TEST(Kernels, StatsSurfaceThroughBatchHandle)
{
    Rng rng(17);
    const Graph g = random3RegularGraph(6, rng);
    StatevectorCost cost(qaoaCircuit(g, 2), maxcutHamiltonian(g));
    const auto points = axisMajorPoints(cost);

    ExecutionEngine engine(2);
    BatchHandle handle = engine.submit(cost, points);
    handle.get();
    const BatchStats stats = handle.stats();
    EXPECT_EQ(stats.kernel.isa, cost.kernelTable().isa);
    EXPECT_GT(stats.kernel.blockedGroupRuns, 0u);
    EXPECT_GT(stats.kernel.blockedOpsApplied,
              stats.kernel.blockedGroupRuns);
}

TEST(Kernels, ForcedScalarIgnoresHostIsa)
{
    Rng rng(19);
    const Graph g = random3RegularGraph(6, rng);
    StatevectorCost cost(qaoaCircuit(g, 1), maxcutHamiltonian(g));
    KernelOptions options;
    options.isa = KernelIsa::Scalar;
    cost.configureKernel(options);
    EXPECT_EQ(cost.kernelTable().isa, KernelIsa::Scalar);
    EXPECT_EQ(cost.kernelStats().isa, KernelIsa::Scalar);
}

/** Reference <psi|P|psi> straight from the matrix-element definition. */
double
referencePauliExpectation(const AlignedVector<cplx>& amps,
                          const PauliString& pauli)
{
    const int n = pauli.numQubits();
    std::uint64_t flip = 0;
    for (int q = 0; q < n; ++q) {
        const PauliOp op = pauli.op(q);
        if (op == PauliOp::X || op == PauliOp::Y)
            flip |= std::uint64_t{1} << q;
    }
    cplx acc(0.0, 0.0);
    const cplx im(0.0, 1.0);
    for (std::size_t i = 0; i < amps.size(); ++i) {
        const std::size_t j = i ^ flip;
        cplx elem(1.0, 0.0);
        for (int q = 0; q < n; ++q) {
            const bool bit_j = (j >> q) & 1ULL;
            switch (pauli.op(q)) {
              case PauliOp::I:
              case PauliOp::X:
                break;
              case PauliOp::Y:
                elem *= bit_j ? -im : im;
                break;
              case PauliOp::Z:
                if (bit_j)
                    elem = -elem;
                break;
            }
        }
        acc += std::conj(amps[i]) * elem * amps[j];
    }
    return acc.real();
}

PauliString
randomPauli(int num_qubits, Rng& rng, bool force_nondiagonal)
{
    for (;;) {
        PauliString pauli(num_qubits);
        for (int q = 0; q < num_qubits; ++q)
            pauli.setOp(q, static_cast<PauliOp>(rng.uniformInt(4)));
        if (!force_nondiagonal || !pauli.isDiagonal())
            return pauli;
    }
}

TEST(Kernels, PauliExpectationMatchesReferenceOnEveryTable)
{
    Rng rng(1234);
    for (const int n : {1, 2, 3, 6, 9}) {
        const std::size_t dim = std::size_t{1} << n;
        for (int rep = 0; rep < 20; ++rep) {
            const AlignedVector<cplx> amps = randomAmps(dim, rng);
            const PauliString pauli = randomPauli(n, rng, false);
            const PauliMasks m = pauli.masks();
            const double want = referencePauliExpectation(amps, pauli);
            static const cplx kPhases[4] = {
                {1.0, 0.0}, {0.0, 1.0}, {-1.0, 0.0}, {0.0, -1.0}};
            const cplx phase = kPhases[m.numY & 3];
            for (const KernelTable* table : availableTables()) {
                const double got = table->expectationPauli(
                    amps.data(), dim, m.flip, m.sign, phase);
                EXPECT_NEAR(got, want, 1e-12)
                    << kernels::isaName(table->isa) << " n=" << n
                    << " pauli=" << pauli.toLabel();
            }
        }
    }
}

TEST(Kernels, PauliExpectationScalarAvx2Parity)
{
    if (!kernels::avx2Available())
        GTEST_SKIP() << "no AVX2 on this host/build";
    const KernelTable& scalar = kernels::scalarKernelTable();
    const KernelTable& avx2 = kernels::kernelTable(KernelIsa::Avx2);
    Rng rng(77);
    for (const int n : {2, 4, 7, 10}) {
        const std::size_t dim = std::size_t{1} << n;
        for (int rep = 0; rep < 25; ++rep) {
            const AlignedVector<cplx> amps = randomAmps(dim, rng);
            const PauliString pauli = randomPauli(n, rng, true);
            const PauliMasks m = pauli.masks();
            static const cplx kPhases[4] = {
                {1.0, 0.0}, {0.0, 1.0}, {-1.0, 0.0}, {0.0, -1.0}};
            const cplx phase = kPhases[m.numY & 3];
            const double s = scalar.expectationPauli(
                amps.data(), dim, m.flip, m.sign, phase);
            const double v = avx2.expectationPauli(
                amps.data(), dim, m.flip, m.sign, phase);
            EXPECT_NEAR(s, v, 1e-12) << pauli.toLabel();
        }
    }
}

TEST(Kernels, NonDiagonalPauliSumRoutesThroughPinnedTable)
{
    // A transverse-field mixer term makes the sum non-diagonal; the
    // cost must agree across ISAs within rounding and stay
    // deterministic per ISA.
    Rng rng(5);
    const Graph g = random3RegularGraph(8, rng);
    PauliSum mixed = maxcutHamiltonian(g);
    for (int q = 0; q < 8; ++q)
        mixed.add(0.35, PauliString::single(8, q, PauliOp::X));
    ASSERT_FALSE(mixed.isDiagonal());

    const Circuit circuit = qaoaCircuit(g, 1);
    std::vector<std::vector<double>> points;
    Rng prng(6);
    for (int i = 0; i < 6; ++i)
        points.push_back({prng.uniform(0.0, 3.0), prng.uniform(0.0, 3.0)});

    StatevectorCost scalar_cost(circuit, mixed);
    KernelOptions scalar_opts;
    scalar_opts.isa = KernelIsa::Scalar;
    scalar_cost.configureKernel(scalar_opts);
    const std::vector<double> scalar_vals =
        scalar_cost.evaluateBatch(points);

    StatevectorCost scalar_again(circuit, mixed);
    scalar_again.configureKernel(scalar_opts);
    const std::vector<double> scalar_rerun =
        scalar_again.evaluateBatch(points);
    for (std::size_t i = 0; i < points.size(); ++i)
        EXPECT_EQ(scalar_vals[i], scalar_rerun[i]); // bitwise per ISA

    if (kernels::avx2Available()) {
        StatevectorCost avx2_cost(circuit, mixed);
        KernelOptions avx2_opts;
        avx2_opts.isa = KernelIsa::Avx2;
        avx2_cost.configureKernel(avx2_opts);
        const std::vector<double> avx2_vals =
            avx2_cost.evaluateBatch(points);
        for (std::size_t i = 0; i < points.size(); ++i)
            EXPECT_NEAR(scalar_vals[i], avx2_vals[i], 1e-9);
    }
}

TEST(Kernels, DiagonalPauliStringExpectationIsBitExactAcrossIsas)
{
    // flip == 0 strings move no amplitudes and multiply by exact +-1
    // signs, so even the AVX2 kernel must reproduce the scalar bits.
    Rng rng(42);
    for (const int n : {3, 8}) {
        const std::size_t dim = std::size_t{1} << n;
        const AlignedVector<cplx> amps = randomAmps(dim, rng);
        for (int rep = 0; rep < 10; ++rep) {
            PauliString pauli(n);
            for (int q = 0; q < n; ++q)
                pauli.setOp(q, rng.uniform() < 0.5 ? PauliOp::I
                                                   : PauliOp::Z);
            const PauliMasks m = pauli.masks();
            double want = 0.0, got_scalar = 0.0;
            want = referencePauliExpectation(amps, pauli);
            got_scalar = kernels::scalarKernelTable().expectationPauli(
                amps.data(), dim, m.flip, m.sign, cplx(1.0, 0.0));
            EXPECT_NEAR(got_scalar, want, 1e-12);
            // And the historical per-eigenvalue loop, bit for bit.
            double legacy = 0.0;
            for (std::size_t i = 0; i < dim; ++i)
                legacy += std::norm(amps[i]) *
                          pauli.diagonalEigenvalue(i);
            EXPECT_EQ(got_scalar, legacy);
        }
    }
}

TEST(Kernels, SuperKernelPrimitivesAgreeAcrossTables)
{
    // rotX/rotY, the fused diagonal table, and the dense matvec match
    // the scalar reference on every table, including dims at and below
    // the AVX-512 vector width (2 and 4 amplitudes — the masked-tail
    // paths) and payload dims smaller than one vector.
    const KernelTable& scalar = kernels::scalarKernelTable();
    Rng rng(57);
    const double c = std::cos(0.41), sn = std::sin(0.41);
    for (const KernelTable* table : availableTables()) {
        for (int n = 1; n <= 6; ++n) {
            const std::size_t dim = std::size_t{1} << n;
            for (int q = 0; q < n; ++q) {
                AlignedVector<cplx> a = randomAmps(dim, rng);
                AlignedVector<cplx> b = a;
                scalar.rotX(a.data(), dim, q, c, sn);
                table->rotX(b.data(), dim, q, c, sn);
                expectAmpsNear(a, b, 1e-14);

                a = randomAmps(dim, rng);
                b = a;
                scalar.rotY(a.data(), dim, q, c, sn);
                table->rotY(b.data(), dim, q, c, sn);
                expectAmpsNear(a, b, 1e-14);
            }
            {
                AlignedVector<cplx> diag(dim);
                for (cplx& d : diag)
                    d = std::exp(cplx(0.0, rng.uniform(-3.0, 3.0)));
                AlignedVector<cplx> a = randomAmps(dim, rng);
                AlignedVector<cplx> b = a;
                scalar.applyDiagTable(a.data(), dim, diag.data());
                table->applyDiagTable(b.data(), dim, diag.data());
                expectAmpsNear(a, b, 1e-14);
            }
            for (int fbits = 1; fbits <= std::min(n, 3); ++fbits) {
                const std::size_t fdim = std::size_t{1} << fbits;
                AlignedVector<cplx> m(fdim * fdim);
                for (cplx& e : m)
                    e = cplx(rng.uniform(-1.0, 1.0),
                             rng.uniform(-1.0, 1.0));
                AlignedVector<cplx> a = randomAmps(dim, rng);
                AlignedVector<cplx> b = a;
                AlignedVector<cplx> scratch(fdim);
                scalar.matvecDense(a.data(), dim, fbits, m.data(),
                                   scratch.data());
                table->matvecDense(b.data(), dim, fbits, m.data(),
                                   scratch.data());
                expectAmpsNear(a, b, 1e-13);
            }
        }
    }
}

TEST(Kernels, PairedRotationsBitIdenticalToSingles)
{
    // rotX2/rotY2 promise bit-identity (not mere closeness) to the two
    // single-rotation calls on the same table: the replay paths pair
    // adjacent rotations opportunistically, so chunk and checkpoint
    // boundaries may split a pair and the result must not move by one
    // bit. Exercise every (qa, qb) pair in both orders, including the
    // low qubits that take the in-vector fallback paths, and dims at
    // and below the vector widths.
    Rng rng(91);
    const double ca = std::cos(0.37), sa = std::sin(0.37);
    const double cb = std::cos(-1.21), sb = std::sin(-1.21);
    for (const KernelTable* table : availableTables()) {
        for (int n = 1; n <= 7; ++n) {
            const std::size_t dim = std::size_t{1} << n;
            for (int qa = 0; qa < n; ++qa) {
                for (int qb = 0; qb < n; ++qb) {
                    if (qa == qb)
                        continue;
                    AlignedVector<cplx> a = randomAmps(dim, rng);
                    AlignedVector<cplx> b = a;
                    table->rotX(a.data(), dim, qa, ca, sa);
                    table->rotX(a.data(), dim, qb, cb, sb);
                    table->rotX2(b.data(), dim, qa, qb, ca, sa, cb, sb);
                    expectAmpsIdentical(a, b);

                    a = randomAmps(dim, rng);
                    b = a;
                    table->rotY(a.data(), dim, qa, ca, sa);
                    table->rotY(a.data(), dim, qb, cb, sb);
                    table->rotY2(b.data(), dim, qa, qb, ca, sa, cb, sb);
                    expectAmpsIdentical(a, b);
                }
            }
        }
    }
}

TEST(Kernels, BatchedPauliBitIdenticalToSinglePerTable)
{
    // The batched Pauli kernel runs the identical per-state operation
    // sequence as the single-state kernel, so each lane reproduces the
    // single-state bits exactly — including tail dims 2 and 4.
    Rng rng(61);
    static const cplx kPhases[4] = {
        {1.0, 0.0}, {0.0, 1.0}, {-1.0, 0.0}, {0.0, -1.0}};
    for (const int n : {1, 2, 3, 6, 9}) {
        const std::size_t dim = std::size_t{1} << n;
        std::vector<AlignedVector<cplx>> states;
        std::vector<const cplx*> ptrs;
        for (int st = 0; st < 6; ++st) {
            states.push_back(randomAmps(dim, rng));
            ptrs.push_back(states.back().data());
        }
        for (int rep = 0; rep < 10; ++rep) {
            const PauliString pauli = randomPauli(n, rng, false);
            const PauliMasks m = pauli.masks();
            const cplx phase = kPhases[m.numY & 3];
            for (const KernelTable* table : availableTables()) {
                std::vector<double> batched(ptrs.size());
                table->expectationPauliBatch(ptrs.data(), ptrs.size(),
                                             dim, m.flip, m.sign, phase,
                                             batched.data());
                for (std::size_t st = 0; st < ptrs.size(); ++st) {
                    const double single = table->expectationPauli(
                        ptrs[st], dim, m.flip, m.sign, phase);
                    EXPECT_EQ(single, batched[st])
                        << kernels::isaName(table->isa) << " n=" << n
                        << " pauli=" << pauli.toLabel() << " state "
                        << st;
                }
            }
        }
    }
}

TEST(Kernels, NonDiagonalBatchedExpectationBitIdentical)
{
    // The batched-expectation path of a non-diagonal Hamiltonian
    // (expectationPauliBatch per term) is bit-identical to per-point
    // evaluation and shows up in the batchedPauliPoints counter.
    Rng rng(67);
    const Graph g = random3RegularGraph(6, rng);
    PauliSum mixed = maxcutHamiltonian(g);
    for (int q = 0; q < 6; ++q)
        mixed.add(0.35, PauliString::single(6, q, PauliOp::X));
    ASSERT_FALSE(mixed.isDiagonal());
    const Circuit circuit = qaoaCircuit(g, 2);

    std::vector<KernelIsa> isas = {KernelIsa::Scalar};
    if (kernels::avx2Available())
        isas.push_back(KernelIsa::Avx2);
    if (kernels::avx512Available())
        isas.push_back(KernelIsa::Avx512);
    for (const KernelIsa isa : isas) {
        KernelOptions base;
        base.isa = isa;
        StatevectorCost one_by_one(circuit, mixed);
        one_by_one.configureKernel(base);
        const auto points = axisMajorPoints(one_by_one);
        std::vector<double> reference;
        for (const auto& p : points)
            reference.push_back(one_by_one.evaluate(p));

        StatevectorCost batched(circuit, mixed);
        batched.configureKernel(base);
        const auto values = batched.evaluateBatch(points);
        EXPECT_GT(batched.kernelStats().batchedPauliPoints, 0u)
            << kernels::isaName(isa);
        for (std::size_t i = 0; i < points.size(); ++i)
            EXPECT_EQ(reference[i], values[i])
                << kernels::isaName(isa) << " point " << i;
    }
}

TEST(Kernels, FusedReplayPathsBitIdenticalPerIsa)
{
    // With super-kernel fusion on, one-by-one evaluation, the grouped
    // batched path, and the cache-off path still agree bit for bit per
    // ISA (they replay the identical fusion plan), the fused counters
    // surface, and fused values agree with the unfused replay within
    // rounding.
    Rng rng(71);
    const Graph g = random3RegularGraph(6, rng);
    const Circuit circuit = qaoaCircuit(g, 2);
    const PauliSum ham = maxcutHamiltonian(g);

    std::vector<KernelIsa> isas = {KernelIsa::Scalar};
    if (kernels::avx2Available())
        isas.push_back(KernelIsa::Avx2);
    if (kernels::avx512Available())
        isas.push_back(KernelIsa::Avx512);
    for (const KernelIsa isa : isas) {
        KernelOptions fused;
        fused.isa = isa;
        fused.blockWindow = 4;
        fused.fuseWindow = 4;

        StatevectorCost one_by_one(circuit, ham);
        one_by_one.configureKernel(fused);
        const auto points = axisMajorPoints(one_by_one);
        std::vector<double> reference;
        for (const auto& p : points)
            reference.push_back(one_by_one.evaluate(p));
        EXPECT_GT(one_by_one.kernelStats().fusedSuperKernels, 0u)
            << kernels::isaName(isa);
        EXPECT_GT(one_by_one.kernelStats().fusedOpsCollapsed,
                  one_by_one.kernelStats().fusedSuperKernels);

        StatevectorCost batched(circuit, ham);
        batched.configureKernel(fused);
        const auto grouped = batched.evaluateBatch(points);

        KernelOptions no_cache = fused;
        no_cache.prefixCache = false;
        StatevectorCost uncached(circuit, ham);
        uncached.configureKernel(no_cache);
        const auto uncached_values = uncached.evaluateBatch(points);

        KernelOptions plain = fused;
        plain.fuseWindow = 0;
        StatevectorCost unfused(circuit, ham);
        unfused.configureKernel(plain);
        const auto unfused_values = unfused.evaluateBatch(points);

        for (std::size_t i = 0; i < points.size(); ++i) {
            EXPECT_EQ(reference[i], grouped[i])
                << kernels::isaName(isa) << " point " << i;
            EXPECT_EQ(reference[i], uncached_values[i])
                << kernels::isaName(isa) << " point " << i;
            EXPECT_NEAR(reference[i], unfused_values[i], 1e-11)
                << kernels::isaName(isa) << " point " << i;
        }
    }
}

TEST(Kernels, ParseIsaNameAcceptsOnlyKnownNames)
{
    EXPECT_EQ(kernels::parseIsaName("scalar"), KernelIsa::Scalar);
    EXPECT_EQ(kernels::parseIsaName("avx2"), KernelIsa::Avx2);
    EXPECT_EQ(kernels::parseIsaName("avx512"), KernelIsa::Avx512);
    EXPECT_EQ(kernels::parseIsaName("auto"), KernelIsa::Auto);
    EXPECT_THROW(kernels::parseIsaName("AVX2"), std::invalid_argument);
    EXPECT_THROW(kernels::parseIsaName("sse"), std::invalid_argument);
    EXPECT_THROW(kernels::parseIsaName(""), std::invalid_argument);
    EXPECT_THROW(kernels::parseIsaName(nullptr), std::invalid_argument);
    try {
        kernels::parseIsaName("avx1024");
        FAIL() << "expected invalid_argument";
    } catch (const std::invalid_argument& e) {
        // The error must teach the valid vocabulary.
        const std::string what = e.what();
        EXPECT_NE(what.find("scalar"), std::string::npos);
        EXPECT_NE(what.find("avx2"), std::string::npos);
        EXPECT_NE(what.find("avx512"), std::string::npos);
    }
}

TEST(Kernels, UnavailableIsaRequestThrows)
{
    // kernelTable() is strict: a concrete ISA the host (or build)
    // lacks throws instead of silently downgrading, and the message
    // lists what is available. Auto never selects an unsupported tier.
    EXPECT_EQ(kernels::kernelTable(KernelIsa::Scalar).isa,
              KernelIsa::Scalar);
    const KernelIsa resolved = kernels::defaultKernelTable().isa;
    EXPECT_EQ(&kernels::kernelTable(resolved),
              &kernels::defaultKernelTable());
    for (const KernelIsa isa : {KernelIsa::Avx2, KernelIsa::Avx512}) {
        const bool available = isa == KernelIsa::Avx2
                                   ? kernels::avx2Available()
                                   : kernels::avx512Available();
        if (available) {
            EXPECT_EQ(kernels::kernelTable(isa).isa, isa);
            continue;
        }
        try {
            kernels::kernelTable(isa);
            FAIL() << "expected runtime_error for "
                   << kernels::isaName(isa);
        } catch (const std::runtime_error& e) {
            const std::string what = e.what();
            EXPECT_NE(what.find("not available"), std::string::npos);
            EXPECT_NE(what.find("scalar"), std::string::npos);
        }
    }
}

TEST(Kernels, AmplitudeStorageIsCacheLineAligned)
{
    for (int n : {1, 3, 8}) {
        Statevector sv(n);
        EXPECT_EQ(reinterpret_cast<std::uintptr_t>(sv.amps().data()) % 64,
                  0u)
            << n << " qubits";
    }
    AlignedVector<double> v(17);
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(v.data()) % 64, 0u);
}

} // namespace
} // namespace oscar
