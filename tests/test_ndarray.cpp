/**
 * @file
 * Tests for the NdArray container.
 */

#include <gtest/gtest.h>

#include <stdexcept>

#include "src/common/ndarray.h"

namespace oscar {
namespace {

TEST(NdArray, ZeroInitialized)
{
    NdArray a({2, 3});
    EXPECT_EQ(a.size(), 6u);
    EXPECT_EQ(a.rank(), 2u);
    for (std::size_t i = 0; i < a.size(); ++i)
        EXPECT_EQ(a[i], 0.0);
}

TEST(NdArray, WrapData)
{
    NdArray a({2, 2}, {1, 2, 3, 4});
    EXPECT_EQ(a.at({0, 0}), 1.0);
    EXPECT_EQ(a.at({0, 1}), 2.0);
    EXPECT_EQ(a.at({1, 0}), 3.0);
    EXPECT_EQ(a.at({1, 1}), 4.0);
}

TEST(NdArray, WrapRejectsSizeMismatch)
{
    EXPECT_THROW(NdArray({2, 2}, {1, 2, 3}), std::invalid_argument);
}

TEST(NdArray, OffsetUnravelRoundTrip)
{
    NdArray a({3, 4, 5});
    for (std::size_t i = 0; i < a.size(); ++i) {
        const auto idx = a.unravel(i);
        EXPECT_EQ(a.offset(idx), i);
    }
}

TEST(NdArray, RowMajorLayout)
{
    NdArray a({2, 3});
    a.at({1, 2}) = 7.0;
    EXPECT_EQ(a[1 * 3 + 2], 7.0);
}

TEST(NdArray, ReshapePreservesData)
{
    NdArray a({2, 6}, {0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11});
    const NdArray b = a.reshape({3, 4});
    for (std::size_t i = 0; i < 12; ++i)
        EXPECT_EQ(b[i], static_cast<double>(i));
    EXPECT_EQ(b.dim(0), 3u);
    EXPECT_EQ(b.dim(1), 4u);
}

TEST(NdArray, ReshapeRejectsBadSize)
{
    NdArray a({2, 3});
    EXPECT_THROW(a.reshape({4, 2}), std::invalid_argument);
}

TEST(NdArray, Reshape4dTo2dMatchesPaperConcatenation)
{
    // (2,2,3,3) -> (4,9): the paper's p=2 concatenation. Row-major
    // flattening must be identical before and after.
    NdArray a({2, 2, 3, 3});
    for (std::size_t i = 0; i < a.size(); ++i)
        a[i] = static_cast<double>(i);
    const NdArray b = a.reshape({4, 9});
    EXPECT_EQ(b.at({1, 2}), a.at({0, 1, 0, 2}));
    EXPECT_EQ(b.at({3, 8}), a.at({1, 1, 2, 2}));
}

TEST(NdArray, Arithmetic)
{
    NdArray a({2}, {1, 2});
    NdArray b({2}, {10, 20});
    a += b;
    EXPECT_EQ(a[0], 11.0);
    a -= b;
    EXPECT_EQ(a[1], 2.0);
    a *= 3.0;
    EXPECT_EQ(a[0], 3.0);
}

TEST(NdArray, MinMax)
{
    NdArray a({4}, {3, -1, 7, 2});
    EXPECT_EQ(a.min(), -1.0);
    EXPECT_EQ(a.max(), 7.0);
}

TEST(NdArray, FillOverwrites)
{
    NdArray a({3});
    a.fill(2.5);
    for (std::size_t i = 0; i < 3; ++i)
        EXPECT_EQ(a[i], 2.5);
}

} // namespace
} // namespace oscar
