/**
 * @file
 * Tests for the gate and circuit IR: factories, parameter binding,
 * inverses, and validation.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

#include "src/quantum/circuit.h"
#include "src/quantum/gate.h"

namespace oscar {
namespace {

TEST(Gate, ArityClassification)
{
    EXPECT_EQ(gateArity(GateKind::H), 1);
    EXPECT_EQ(gateArity(GateKind::RZ), 1);
    EXPECT_EQ(gateArity(GateKind::CX), 2);
    EXPECT_EQ(gateArity(GateKind::RZZ), 2);
    EXPECT_EQ(gateArity(GateKind::SWAP), 2);
}

TEST(Gate, ParameterizedClassification)
{
    EXPECT_TRUE(gateIsParameterized(GateKind::RX));
    EXPECT_TRUE(gateIsParameterized(GateKind::RZZ));
    EXPECT_FALSE(gateIsParameterized(GateKind::H));
    EXPECT_FALSE(gateIsParameterized(GateKind::CZ));
}

TEST(Gate, ResolvedAngleFixed)
{
    const Gate g = Gate::rx(0, 1.5);
    EXPECT_DOUBLE_EQ(g.resolvedAngle({}), 1.5);
}

TEST(Gate, ResolvedAngleBound)
{
    const Gate g = Gate::rzzParam(0, 1, 2, -3.0);
    EXPECT_DOUBLE_EQ(g.resolvedAngle({0.0, 0.0, 0.5}), -1.5);
}

TEST(Gate, InverseOfRotationNegatesAngle)
{
    const Gate g = Gate::ry(0, 0.8);
    EXPECT_DOUBLE_EQ(g.inverse().angle, -0.8);
}

TEST(Gate, InverseOfBoundRotationNegatesCoeff)
{
    const Gate g = Gate::rxParam(0, 1, 2.0);
    const Gate inv = g.inverse();
    EXPECT_DOUBLE_EQ(inv.coeff, -2.0);
    EXPECT_DOUBLE_EQ(inv.resolvedAngle({0.0, 0.7}), -1.4);
}

TEST(Gate, SInverseIsSdg)
{
    EXPECT_EQ(Gate::s(0).inverse().kind, GateKind::Sdg);
    EXPECT_EQ(Gate::sdg(0).inverse().kind, GateKind::S);
}

TEST(Gate, Matrix1qIsUnitary)
{
    for (GateKind kind : {GateKind::H, GateKind::X, GateKind::Y,
                          GateKind::Z, GateKind::S, GateKind::Sdg,
                          GateKind::RX, GateKind::RY, GateKind::RZ}) {
        Gate g;
        g.kind = kind;
        g.qubits = {0, -1};
        const auto m = g.matrix1q(0.73);
        // U U^dag = I.
        const cplx a = m[0] * std::conj(m[0]) + m[1] * std::conj(m[1]);
        const cplx b = m[0] * std::conj(m[2]) + m[1] * std::conj(m[3]);
        const cplx d = m[2] * std::conj(m[2]) + m[3] * std::conj(m[3]);
        EXPECT_NEAR(std::abs(a - 1.0), 0.0, 1e-12) << gateName(kind);
        EXPECT_NEAR(std::abs(b), 0.0, 1e-12) << gateName(kind);
        EXPECT_NEAR(std::abs(d - 1.0), 0.0, 1e-12) << gateName(kind);
    }
}

TEST(Circuit, AppendValidatesQubits)
{
    Circuit c(2, 0);
    EXPECT_THROW(c.append(Gate::h(2)), std::out_of_range);
    EXPECT_THROW(c.append(Gate::cx(0, 0)), std::invalid_argument);
}

TEST(Circuit, AppendValidatesParamIndex)
{
    Circuit c(2, 1);
    EXPECT_NO_THROW(c.append(Gate::rxParam(0, 0)));
    EXPECT_THROW(c.append(Gate::rxParam(0, 1)), std::out_of_range);
}

TEST(Circuit, BindResolvesAllAngles)
{
    Circuit c(2, 2);
    c.append(Gate::rxParam(0, 0, 2.0));
    c.append(Gate::rzzParam(0, 1, 1, -1.0));
    c.append(Gate::h(0));

    const Circuit bound = c.bind({0.5, 0.25});
    EXPECT_EQ(bound.numParams(), 0);
    EXPECT_DOUBLE_EQ(bound.gates()[0].angle, 1.0);
    EXPECT_DOUBLE_EQ(bound.gates()[1].angle, -0.25);
    EXPECT_EQ(bound.gates()[0].paramIndex, -1);
}

TEST(Circuit, BindRejectsWrongCount)
{
    Circuit c(1, 2);
    EXPECT_THROW(c.bind({1.0}), std::invalid_argument);
}

TEST(Circuit, InverseReversesOrder)
{
    Circuit c(2, 0);
    c.append(Gate::h(0));
    c.append(Gate::cx(0, 1));
    c.append(Gate::s(1));
    const Circuit inv = c.inverse();
    ASSERT_EQ(inv.numGates(), 3u);
    EXPECT_EQ(inv.gates()[0].kind, GateKind::Sdg);
    EXPECT_EQ(inv.gates()[1].kind, GateKind::CX);
    EXPECT_EQ(inv.gates()[2].kind, GateKind::H);
}

TEST(Circuit, CountTwoQubitGates)
{
    Circuit c(3, 0);
    c.append(Gate::h(0));
    c.append(Gate::cx(0, 1));
    c.append(Gate::rzz(1, 2, 0.3));
    c.append(Gate::ry(2, 0.1));
    EXPECT_EQ(c.countTwoQubitGates(), 2u);
}

TEST(Circuit, ToStringMentionsGates)
{
    Circuit c(2, 1);
    c.append(Gate::h(0));
    c.append(Gate::rzzParam(0, 1, 0, -2.0));
    const std::string s = c.toString();
    EXPECT_NE(s.find("h q0"), std::string::npos);
    EXPECT_NE(s.find("rzz q0, q1"), std::string::npos);
    EXPECT_NE(s.find("p[0]"), std::string::npos);
}

TEST(Circuit, AppendCircuitMergesGates)
{
    Circuit a(2, 1);
    a.append(Gate::h(0));
    Circuit b(2, 1);
    b.append(Gate::rxParam(1, 0));
    a.append(b);
    EXPECT_EQ(a.numGates(), 2u);
}

TEST(Circuit, AppendCircuitRejectsQubitMismatch)
{
    Circuit a(2, 0);
    Circuit b(3, 0);
    EXPECT_THROW(a.append(b), std::invalid_argument);
}

} // namespace
} // namespace oscar
