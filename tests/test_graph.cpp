/**
 * @file
 * Tests for graphs and problem-instance generators.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "src/common/rng.h"
#include "src/graph/generators.h"
#include "src/graph/graph.h"

namespace oscar {
namespace {

TEST(Graph, AddAndQueryEdges)
{
    Graph g(4);
    g.addEdge(0, 1);
    g.addEdge(1, 2, 2.5);
    EXPECT_TRUE(g.hasEdge(0, 1));
    EXPECT_TRUE(g.hasEdge(1, 0));
    EXPECT_FALSE(g.hasEdge(0, 2));
    EXPECT_EQ(g.numEdges(), 2u);
    EXPECT_EQ(g.degree(1), 2);
    EXPECT_EQ(g.degree(3), 0);
}

TEST(Graph, RejectsBadEdges)
{
    Graph g(3);
    g.addEdge(0, 1);
    EXPECT_THROW(g.addEdge(0, 1), std::invalid_argument); // duplicate
    EXPECT_THROW(g.addEdge(1, 0), std::invalid_argument); // reversed dup
    EXPECT_THROW(g.addEdge(2, 2), std::invalid_argument); // self loop
    EXPECT_THROW(g.addEdge(0, 3), std::out_of_range);
}

TEST(Graph, CommonNeighbors)
{
    // Triangle 0-1-2 plus pendant 3 on vertex 0.
    Graph g(4);
    g.addEdge(0, 1);
    g.addEdge(1, 2);
    g.addEdge(0, 2);
    g.addEdge(0, 3);
    EXPECT_EQ(g.commonNeighbors(0, 1), 1); // vertex 2
    EXPECT_EQ(g.commonNeighbors(0, 3), 0);
}

TEST(Graph, CutValue)
{
    Graph g(3);
    g.addEdge(0, 1, 1.0);
    g.addEdge(1, 2, 2.0);
    // assignment 0b001: vertex 0 on one side, 1 and 2 on the other.
    EXPECT_DOUBLE_EQ(g.cutValue(0b001), 1.0);
    EXPECT_DOUBLE_EQ(g.cutValue(0b010), 3.0);
    EXPECT_DOUBLE_EQ(g.cutValue(0b000), 0.0);
}

TEST(Graph, MaxCutBruteForcePath)
{
    // Path 0-1-2: max cut = 2 (vertex 1 alone).
    Graph g(3);
    g.addEdge(0, 1);
    g.addEdge(1, 2);
    EXPECT_DOUBLE_EQ(g.maxCutBruteForce(), 2.0);
}

class RegularGraphProperty : public ::testing::TestWithParam<int>
{
};

TEST_P(RegularGraphProperty, EveryVertexHasDegreeThree)
{
    Rng rng(GetParam());
    const Graph g = random3RegularGraph(12, rng);
    EXPECT_EQ(g.numEdges(), 18u); // n * d / 2
    for (int v = 0; v < 12; ++v)
        EXPECT_EQ(g.degree(v), 3);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RegularGraphProperty,
                         ::testing::Range(0, 10));

TEST(Generators, RegularRejectsOddProduct)
{
    Rng rng(1);
    EXPECT_THROW(randomRegularGraph(5, 3, rng), std::invalid_argument);
    EXPECT_THROW(randomRegularGraph(4, 4, rng), std::invalid_argument);
}

TEST(Generators, MeshGraphStructure)
{
    const Graph g = meshGraph(3, 4);
    EXPECT_EQ(g.numVertices(), 12);
    // Edges: 3 rows * 3 horizontal + 2 * 4 vertical = 9 + 8 = 17.
    EXPECT_EQ(g.numEdges(), 17u);
    // Corner degree 2, edge degree 3, interior degree 4.
    EXPECT_EQ(g.degree(0), 2);
    EXPECT_EQ(g.degree(1), 3);
    EXPECT_EQ(g.degree(5), 4);
}

TEST(Generators, CompleteGraphEdgeCount)
{
    const Graph g = completeGraph(6);
    EXPECT_EQ(g.numEdges(), 15u);
}

TEST(Generators, SkInstanceIsCompleteWithGaussianWeights)
{
    Rng rng(5);
    const Graph g = skInstance(8, rng);
    EXPECT_EQ(g.numEdges(), 28u);
    // Weights scaled by 1/sqrt(n): empirical std should be near that.
    double sum2 = 0.0;
    for (const Edge& e : g.edges())
        sum2 += e.weight * e.weight;
    const double emp_std = std::sqrt(sum2 / g.numEdges());
    EXPECT_NEAR(emp_std, 1.0 / std::sqrt(8.0), 0.15);
}

TEST(Generators, ErdosRenyiDensity)
{
    Rng rng(6);
    const Graph g = erdosRenyiGraph(40, 0.3, rng);
    const double max_edges = 40.0 * 39.0 / 2.0;
    EXPECT_NEAR(static_cast<double>(g.numEdges()) / max_edges, 0.3, 0.06);
}

} // namespace
} // namespace oscar
