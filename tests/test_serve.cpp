/**
 * @file
 * Serving-daemon tests:
 *
 *  - protocol payload round trips (Request/Response/Progress), strict
 *    rejection of malformed payloads, and content addressing: the
 *    encoder resolves KernelIsa::Auto and stamps the cost id exactly
 *    like the distributed pool;
 *  - OSCAR_SERVE_SOCKET resolution (explicit > env > default;
 *    malformed settings throw);
 *  - the serving guarantees, end to end over a real Unix socket:
 *      determinism -- cold (computed) and warm (store) answers are
 *        bit-identical to a fresh in-process Oscar::reconstruct;
 *      dedupe -- N identical concurrent requests cost exactly ONE
 *        pool evaluation, everyone gets the same bits;
 *      progress -- frames are monotonic and end at completed == total;
 *      fetch -- never computes: Miss when cold, Store hit when warm;
 *      isolation -- a malformed client loses its connection, the
 *        daemon keeps serving everyone else;
 *      graceful drain -- stop() after admission still answers.
 */

#include <gtest/gtest.h>

#include <stdlib.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <bit>
#include <cstring>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "src/ansatz/qaoa.h"
#include "src/backend/statevector_backend.h"
#include "src/core/oscar.h"
#include "src/graph/generators.h"
#include "src/hamiltonian/maxcut.h"
#include "src/quantum/kernels.h"
#include "src/serve/client.h"
#include "src/serve/protocol.h"
#include "src/serve/server.h"

namespace oscar {
namespace serve {
namespace {

namespace fs = std::filesystem;

struct TempDir
{
    TempDir()
    {
        char tmpl[] = "/tmp/oscar-test-serve-XXXXXX";
        if (!::mkdtemp(tmpl))
            throw std::runtime_error("mkdtemp failed");
        path = tmpl;
    }

    ~TempDir()
    {
        std::error_code ec;
        fs::remove_all(path, ec);
    }

    std::string path;
};

struct ScopedEnv
{
    ScopedEnv(const char* name_in, const char* value) : name(name_in)
    {
        const char* old = ::getenv(name);
        hadOld = old != nullptr;
        if (hadOld)
            oldValue = old;
        if (value)
            ::setenv(name, value, 1);
        else
            ::unsetenv(name);
    }

    ~ScopedEnv()
    {
        if (hadOld)
            ::setenv(name, oldValue.c_str(), 1);
        else
            ::unsetenv(name);
    }

    const char* name;
    bool hadOld = false;
    std::string oldValue;
};

/** The test workload: tiny 6-qubit QAOA, ~12 sampled executions. */
RequestMsg
makeRequest(std::uint64_t seed)
{
    RequestMsg msg;
    msg.kind = RequestKind::Reconstruct;
    Rng rng(3);
    const Graph graph = random3RegularGraph(6, rng);
    msg.cost.circuit = qaoaCircuit(graph, 1);
    msg.cost.hamiltonian = maxcutHamiltonian(graph);
    msg.grid = GridSpec({{-0.785, 0.785, 10}, {-1.571, 1.571, 12}});
    msg.samplingFraction = 0.1;
    msg.sampleSeed = seed;
    return msg;
}

/** A fresh in-process reconstruction of the same request. */
store::StoredLandscape
freshReconstruction(std::uint64_t seed)
{
    RequestMsg req = makeRequest(seed);
    StatevectorCost cost(std::move(req.cost.circuit),
                         std::move(req.cost.hamiltonian));
    OscarOptions opts;
    opts.samplingFraction = req.samplingFraction;
    opts.seed = req.sampleSeed;
    opts.kernel = req.cost.kernel;
    opts.kernel.isa = kernels::kernelTable(opts.kernel.isa).isa;
    const OscarResult result = Oscar::reconstruct(req.grid, cost, opts);
    store::StoredLandscape entry;
    entry.sampleIndices.assign(result.samples.indices.begin(),
                               result.samples.indices.end());
    entry.sampleValues = result.samples.values;
    entry.reconstructed = result.reconstructed.values().flat();
    return entry;
}

void
expectBitIdentical(const std::vector<double>& got,
                   const std::vector<double>& want)
{
    ASSERT_EQ(got.size(), want.size());
    for (std::size_t i = 0; i < got.size(); ++i)
        EXPECT_EQ(std::bit_cast<std::uint64_t>(got[i]),
                  std::bit_cast<std::uint64_t>(want[i]))
            << "value " << i;
}

/** Value of one metric line (`name value`) in a Prometheus text
 * exposition; fails the test when the metric is absent. */
std::uint64_t
promValue(const std::string& text, const std::string& name)
{
    const std::string needle = name + " ";
    std::size_t at = text.find(needle);
    while (at != std::string::npos && at != 0 && text[at - 1] != '\n')
        at = text.find(needle, at + 1);
    EXPECT_NE(at, std::string::npos) << "metric " << name << " missing:\n"
                                     << text;
    if (at == std::string::npos)
        return 0;
    return ::strtoull(text.c_str() + at + needle.size(), nullptr, 10);
}

/** A running daemon on a scratch socket + store, torn down in order. */
struct ServerFixture
{
    explicit ServerFixture(bool with_store = true, int job_threads = 2)
    {
        ServeOptions options;
        options.socketPath = dir.path + "/serve.sock";
        if (with_store)
            options.storeDir = dir.path + "/store";
        options.jobThreads = job_threads;
        options.oscar.numThreads = 0;
        server = std::make_unique<ServeServer>(options);
        thread = std::thread([this] { server->run(); });
    }

    ~ServerFixture()
    {
        server->stop();
        thread.join();
        server.reset();
    }

    const std::string& socket() const { return server->socketPath(); }

    TempDir dir;
    std::unique_ptr<ServeServer> server;
    std::thread thread;
};

// ---------------------------------------------------------------------
// Protocol payloads
// ---------------------------------------------------------------------

TEST(ServeProtocolTest, RequestRoundTripResolvesContentAddress)
{
    RequestMsg msg = makeRequest(42);
    msg.tag = 77;
    msg.wantProgress = true;
    ASSERT_EQ(msg.cost.costId, 0u);

    const std::vector<std::uint8_t> payload = encodeRequest(msg);
    // The encoder stamps the content hash and resolves Auto to the
    // concrete host ISA -- the hash must name the computation.
    EXPECT_NE(msg.cost.costId, 0u);
    EXPECT_NE(msg.cost.kernel.isa, kernels::KernelIsa::Auto);

    const RequestMsg decoded = decodeRequest(payload);
    EXPECT_EQ(decoded.kind, RequestKind::Reconstruct);
    EXPECT_EQ(decoded.tag, 77u);
    EXPECT_TRUE(decoded.wantProgress);
    EXPECT_EQ(decoded.cost.costId, msg.cost.costId);
    EXPECT_EQ(decoded.cost.circuit.gates().size(),
              msg.cost.circuit.gates().size());
    EXPECT_EQ(decoded.grid.numPoints(), msg.grid.numPoints());
    EXPECT_EQ(decoded.samplingFraction, 0.1);
    EXPECT_EQ(decoded.sampleSeed, 42u);

    // The store key is a pure function of the request.
    RequestMsg again = makeRequest(42);
    encodeRequest(again);
    const store::StoreKey a = storeKeyFor(msg);
    const store::StoreKey b = storeKeyFor(again);
    EXPECT_EQ(a.costId, b.costId);
    EXPECT_EQ(a.gridHash, b.gridHash);
    EXPECT_EQ(a.cfgHash, b.cfgHash);

    RequestMsg other_seed = makeRequest(43);
    encodeRequest(other_seed);
    EXPECT_NE(storeKeyFor(other_seed).cfgHash, a.cfgHash);
    EXPECT_EQ(storeKeyFor(other_seed).costId, a.costId);
}

TEST(ServeProtocolTest, MalformedRequestsAreRejected)
{
    RequestMsg msg = makeRequest(42);
    const std::vector<std::uint8_t> payload = encodeRequest(msg);

    for (std::size_t len = 0; len < payload.size(); ++len) {
        EXPECT_THROW(decodeRequest({payload.data(), len}),
                     dist::WireError)
            << "prefix " << len;
    }
    std::vector<std::uint8_t> extra = payload;
    extra.push_back(0);
    EXPECT_THROW(decodeRequest(extra), dist::WireError);

    // Unknown request kind (first payload byte).
    std::vector<std::uint8_t> bad_kind = payload;
    bad_kind[0] = 9;
    EXPECT_THROW(decodeRequest(bad_kind), dist::WireError);

    // Out-of-range sampling fraction.
    for (const double bad : {0.0, -0.5, 1.5}) {
        RequestMsg m = makeRequest(42);
        m.samplingFraction = bad;
        EXPECT_THROW(decodeRequest(encodeRequest(m)), dist::WireError)
            << "fraction " << bad;
    }
}

TEST(ServeProtocolTest, ResponseRoundTrips)
{
    // Ok with a landscape (NaN and -0.0 must survive bit-exactly).
    {
        ResponseMsg msg;
        msg.status = ResponseStatus::Ok;
        msg.tag = 5;
        msg.servedFrom = ServedFrom::Store;
        msg.landscape.grid = GridSpec({{0.0, 1.0, 2}, {0.0, 1.0, 2}});
        msg.landscape.sampleIndices = {0, 3};
        msg.landscape.sampleValues = {1.5, -2.5};
        msg.landscape.reconstructed = {
            std::bit_cast<double>(std::uint64_t{0x7FF8DEADBEEF0001ull}),
            -0.0, 3.5, 4.5};
        msg.landscape.samplingFraction = 0.5;
        msg.landscape.sampleSeed = 9;
        msg.landscape.queriesUsed = 2;
        msg.landscape.querySpeedup = 2.0;

        const ResponseMsg decoded =
            decodeResponse(encodeResponse(msg));
        EXPECT_EQ(decoded.status, ResponseStatus::Ok);
        EXPECT_EQ(decoded.tag, 5u);
        EXPECT_EQ(decoded.servedFrom, ServedFrom::Store);
        EXPECT_EQ(decoded.landscape.sampleIndices,
                  msg.landscape.sampleIndices);
        expectBitIdentical(decoded.landscape.reconstructed,
                           msg.landscape.reconstructed);
        EXPECT_EQ(decoded.landscape.sampleSeed, 9u);
    }
    // Error with a message.
    {
        ResponseMsg msg;
        msg.status = ResponseStatus::Error;
        msg.tag = 6;
        msg.error = "boom";
        const ResponseMsg decoded =
            decodeResponse(encodeResponse(msg));
        EXPECT_EQ(decoded.status, ResponseStatus::Error);
        EXPECT_EQ(decoded.error, "boom");
    }
    // Stats with counters.
    {
        ResponseMsg msg;
        msg.status = ResponseStatus::Stats;
        msg.counters.requests = 10;
        msg.counters.evaluations = 3;
        msg.counters.dedupWaiters = 2;
        msg.counters.store.hits = 4;
        msg.counters.store.containersRemoved = 1;
        const ResponseMsg decoded =
            decodeResponse(encodeResponse(msg));
        EXPECT_EQ(decoded.status, ResponseStatus::Stats);
        EXPECT_EQ(decoded.counters.requests, 10u);
        EXPECT_EQ(decoded.counters.evaluations, 3u);
        EXPECT_EQ(decoded.counters.dedupWaiters, 2u);
        EXPECT_EQ(decoded.counters.store.hits, 4u);
        EXPECT_EQ(decoded.counters.store.containersRemoved, 1u);
    }
}

TEST(ServeProtocolTest, ProgressRoundTripsAndValidates)
{
    ProgressMsg msg;
    msg.tag = 8;
    msg.completed = 3;
    msg.total = 12;
    const ProgressMsg decoded = decodeProgress(encodeProgress(msg));
    EXPECT_EQ(decoded.tag, 8u);
    EXPECT_EQ(decoded.completed, 3u);
    EXPECT_EQ(decoded.total, 12u);

    msg.completed = 13; // beyond total
    EXPECT_THROW(decodeProgress(encodeProgress(msg)), dist::WireError);
}

TEST(ServeProtocolTest, ResolveSocketPath)
{
    {
        ScopedEnv env("OSCAR_SERVE_SOCKET", nullptr);
        EXPECT_EQ(resolveSocketPath(""), "/tmp/oscar-serve.sock");
        EXPECT_EQ(resolveSocketPath("/x/y.sock"), "/x/y.sock");
    }
    {
        ScopedEnv env("OSCAR_SERVE_SOCKET", "/env/serve.sock");
        EXPECT_EQ(resolveSocketPath(""), "/env/serve.sock");
        EXPECT_EQ(resolveSocketPath("/explicit.sock"), "/explicit.sock");
    }
    {
        ScopedEnv env("OSCAR_SERVE_SOCKET", "");
        EXPECT_THROW(resolveSocketPath(""), std::runtime_error);
    }
    {
        const std::string too_long(sizeof(sockaddr_un{}.sun_path), 'x');
        ScopedEnv env("OSCAR_SERVE_SOCKET", too_long.c_str());
        EXPECT_THROW(resolveSocketPath(""), std::runtime_error);
    }
}

// ---------------------------------------------------------------------
// End to end
// ---------------------------------------------------------------------

TEST(ServeServerTest, ColdAndWarmAnswersAreBitIdenticalToFresh)
{
    ServerFixture fixture;
    const store::StoredLandscape fresh = freshReconstruction(42);

    ServeClient client(fixture.socket());

    // Cold: computed on the daemon's pool.
    const ResponseMsg cold = client.call(makeRequest(42));
    ASSERT_EQ(cold.status, ResponseStatus::Ok) << cold.error;
    EXPECT_EQ(cold.servedFrom, ServedFrom::Computed);
    EXPECT_EQ(cold.landscape.sampleIndices, fresh.sampleIndices);
    expectBitIdentical(cold.landscape.sampleValues, fresh.sampleValues);
    expectBitIdentical(cold.landscape.reconstructed,
                       fresh.reconstructed);

    // Warm: the persistent store, same bits, no pool touch.
    const ResponseMsg warm = client.call(makeRequest(42));
    ASSERT_EQ(warm.status, ResponseStatus::Ok) << warm.error;
    EXPECT_EQ(warm.servedFrom, ServedFrom::Store);
    expectBitIdentical(warm.landscape.reconstructed,
                       fresh.reconstructed);

    const ServeCounters counters = fixture.server->counters();
    EXPECT_EQ(counters.requests, 2u);
    EXPECT_EQ(counters.responses, 2u);
    EXPECT_EQ(counters.evaluations, 1u);
    EXPECT_EQ(counters.storeHits, 1u);
    EXPECT_EQ(counters.store.puts, 1u);
}

TEST(ServeServerTest, WithoutStoreEveryRequestComputes)
{
    ServerFixture fixture(/*with_store=*/false);
    ServeClient client(fixture.socket());
    const ResponseMsg first = client.call(makeRequest(42));
    const ResponseMsg second = client.call(makeRequest(42));
    ASSERT_EQ(first.status, ResponseStatus::Ok);
    ASSERT_EQ(second.status, ResponseStatus::Ok);
    EXPECT_EQ(second.servedFrom, ServedFrom::Computed);
    expectBitIdentical(second.landscape.reconstructed,
                       first.landscape.reconstructed);
    EXPECT_EQ(fixture.server->counters().evaluations, 2u);
}

TEST(ServeServerTest, ConcurrentIdenticalRequestsShareOneEvaluation)
{
    constexpr int kClients = 4;
    ServerFixture fixture(/*with_store=*/true, /*job_threads=*/kClients);

    std::vector<ResponseMsg> responses(kClients);
    std::vector<std::thread> threads;
    for (int c = 0; c < kClients; ++c) {
        threads.emplace_back([&fixture, &responses, c] {
            ServeClient client(fixture.socket());
            responses[static_cast<std::size_t>(c)] =
                client.call(makeRequest(42));
        });
    }
    for (std::thread& t : threads)
        t.join();

    for (const ResponseMsg& r : responses) {
        ASSERT_EQ(r.status, ResponseStatus::Ok) << r.error;
        expectBitIdentical(r.landscape.reconstructed,
                           responses[0].landscape.reconstructed);
    }

    // The dedupe contract, exactly: one pool evaluation; every other
    // request either attached to it in flight or hit the store after
    // the put-before-unregister window.
    const ServeCounters counters = fixture.server->counters();
    EXPECT_EQ(counters.evaluations, 1u);
    EXPECT_EQ(counters.storeHits + counters.dedupWaiters,
              static_cast<std::uint64_t>(kClients - 1));
    EXPECT_EQ(counters.responses, static_cast<std::uint64_t>(kClients));

    // The live metrics exposition must agree with the authoritative
    // counters -- same daemon, scraped over the wire.
    ServeClient scraper(fixture.socket());
    const std::string text = scraper.metrics();
    EXPECT_NE(text.find("# TYPE oscar_serve_requests_total counter"),
              std::string::npos)
        << text;
    EXPECT_EQ(promValue(text, "oscar_serve_requests_total"),
              counters.requests);
    EXPECT_EQ(promValue(text, "oscar_serve_responses_total"),
              counters.responses);
    EXPECT_EQ(promValue(text, "oscar_serve_evaluations_total"), 1u);
    EXPECT_EQ(promValue(text, "oscar_serve_store_hits_total") +
                  promValue(text, "oscar_serve_dedup_waiters_total"),
              static_cast<std::uint64_t>(kClients - 1));
    EXPECT_EQ(promValue(text, "oscar_serve_errors_total"), 0u);
}

TEST(ServeServerTest, ProgressFramesAreMonotonicAndComplete)
{
    ServerFixture fixture;
    ServeClient client(fixture.socket());
    RequestMsg msg = makeRequest(42);
    msg.wantProgress = true;

    std::vector<ProgressMsg> progress;
    const ResponseMsg response = client.call(
        msg, [&progress](const ProgressMsg& p) {
            progress.push_back(p);
        });
    ASSERT_EQ(response.status, ResponseStatus::Ok) << response.error;
    ASSERT_FALSE(progress.empty());
    for (std::size_t i = 1; i < progress.size(); ++i) {
        EXPECT_LE(progress[i - 1].completed, progress[i].completed);
        EXPECT_EQ(progress[i].total, progress[0].total);
    }
    EXPECT_EQ(progress.back().completed, progress.back().total);
    EXPECT_EQ(progress.back().total,
              response.landscape.sampleValues.size());

    // A request that did not opt in gets no Progress frames.
    bool saw_progress = false;
    client.call(makeRequest(43), [&saw_progress](const ProgressMsg&) {
        saw_progress = true;
    });
    EXPECT_FALSE(saw_progress);
}

TEST(ServeServerTest, FetchNeverComputes)
{
    ServerFixture fixture;
    ServeClient client(fixture.socket());

    RequestMsg fetch = makeRequest(42);
    fetch.kind = RequestKind::Fetch;
    const ResponseMsg miss = client.call(fetch);
    EXPECT_EQ(miss.status, ResponseStatus::Miss);
    EXPECT_EQ(fixture.server->counters().evaluations, 0u);

    ASSERT_EQ(client.call(makeRequest(42)).status, ResponseStatus::Ok);

    RequestMsg again = makeRequest(42);
    again.kind = RequestKind::Fetch;
    const ResponseMsg hit = client.call(again);
    ASSERT_EQ(hit.status, ResponseStatus::Ok) << hit.error;
    EXPECT_EQ(hit.servedFrom, ServedFrom::Store);
    EXPECT_EQ(fixture.server->counters().evaluations, 1u);
}

TEST(ServeServerTest, StatsRequestReturnsCounters)
{
    ServerFixture fixture;
    ServeClient client(fixture.socket());
    ASSERT_EQ(client.call(makeRequest(42)).status, ResponseStatus::Ok);

    RequestMsg stats;
    stats.kind = RequestKind::Stats;
    const ResponseMsg response = client.call(stats);
    ASSERT_EQ(response.status, ResponseStatus::Stats);
    EXPECT_EQ(response.counters.requests, 2u); // reconstruct + stats
    EXPECT_EQ(response.counters.evaluations, 1u);
    EXPECT_EQ(response.counters.store.puts, 1u);
}

TEST(ServeServerTest, MalformedClientLosesOnlyItsConnection)
{
    ServerFixture fixture;

    // A raw connection that speaks garbage: the daemon must close it.
    const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    ASSERT_GE(fd, 0);
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    std::memcpy(addr.sun_path, fixture.socket().c_str(),
                fixture.socket().size() + 1);
    ASSERT_EQ(::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                        sizeof(addr)),
              0);
    const char garbage[] = "this is not an OSCW frame";
    ASSERT_GT(::send(fd, garbage, sizeof(garbage), MSG_NOSIGNAL), 0);
    char buf[16];
    EXPECT_EQ(::recv(fd, buf, sizeof(buf), 0), 0); // orderly EOF
    ::close(fd);

    // Everyone else is still being served.
    ServeClient client(fixture.socket());
    EXPECT_EQ(client.call(makeRequest(42)).status, ResponseStatus::Ok);
}

TEST(ServeServerTest, GracefulDrainAnswersAdmittedRequests)
{
    ServerFixture fixture;

    ResponseMsg response;
    std::thread requester([&fixture, &response] {
        ServeClient client(fixture.socket());
        response = client.call(makeRequest(42));
    });

    // Wait until the daemon has admitted the request, then stop: the
    // drain contract says the answer is still delivered.
    while (fixture.server->counters().requests == 0)
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
    fixture.server->stop();
    requester.join();

    ASSERT_EQ(response.status, ResponseStatus::Ok) << response.error;
    EXPECT_EQ(fixture.server->counters().responses, 1u);
}

} // namespace
} // namespace serve
} // namespace oscar
