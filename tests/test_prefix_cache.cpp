/**
 * @file
 * Tests of the lock-free fixed-slot PrefixCache:
 *
 *  - semantics: a hit returns the bit-exact checkpoint for exactly the
 *    queried key (full-key verification, not just the hash tag);
 *    eviction accounting under a tiny budget; budgets too small for
 *    one slot disable the cache; clear() drops entries but keeps the
 *    cumulative counters; reconfiguring with an unchanged shape keeps
 *    entries while a shape change drops them;
 *  - concurrency: threads hammering insert/find/reclaim over a key
 *    universe larger than the table never observe a wrong value --
 *    every hit's payload must match the value deterministically
 *    derived from its key. Run under ThreadSanitizer in CI.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <thread>
#include <vector>

#include "src/backend/prefix_cache.h"

namespace oscar {
namespace {

/** The unique checkpoint payload for a key: derived, so verifiable. */
AlignedVector<cplx>
payloadFor(const PrefixKey& key, std::size_t amp_count)
{
    AlignedVector<cplx> amps(amp_count);
    double seed = static_cast<double>(key.depth) * 1e3;
    for (std::uint64_t w : key.paramBits)
        seed += static_cast<double>(w % 9973);
    for (std::size_t j = 0; j < amp_count; ++j)
        amps[j] = cplx(seed + static_cast<double>(j), -seed);
    return amps;
}

bool
bitIdentical(const AlignedVector<cplx>& a, const AlignedVector<cplx>& b)
{
    return a.size() == b.size() &&
           std::memcmp(a.data(), b.data(), a.size() * sizeof(cplx)) == 0;
}

PrefixKey
keyOf(std::size_t depth, std::initializer_list<std::uint64_t> bits)
{
    PrefixKey key;
    key.depth = depth;
    key.paramBits.assign(bits);
    return key;
}

TEST(PrefixCacheTest, InsertThenFindReturnsExactAmplitudes)
{
    PrefixCache cache(1 << 20);
    cache.configure(16, 2);
    ASSERT_GT(cache.numSlots(), 0u);

    const PrefixKey key = keyOf(3, {0x3ff0000000000000ull, 42});
    const AlignedVector<cplx> amps = payloadFor(key, 16);
    const PrefixInsertResult ins = cache.insert(key, amps);
    EXPECT_TRUE(ins.inserted);
    EXPECT_FALSE(ins.reclaimed);
    EXPECT_EQ(cache.numEntries(), 1u);

    AlignedVector<cplx> out;
    ASSERT_TRUE(cache.find(key, out));
    EXPECT_TRUE(bitIdentical(out, amps));
    EXPECT_EQ(cache.hits(), 1u);
    EXPECT_EQ(cache.lookups(), 1u);

    // A re-insert of a present key is dropped, not duplicated.
    const PrefixInsertResult dup = cache.insert(key, amps);
    EXPECT_FALSE(dup.inserted);
    EXPECT_EQ(cache.numEntries(), 1u);
}

TEST(PrefixCacheTest, MissOnDifferentDepthOrBits)
{
    PrefixCache cache(1 << 20);
    cache.configure(8, 1);
    const PrefixKey key = keyOf(5, {123});
    cache.insert(key, payloadFor(key, 8));

    AlignedVector<cplx> out;
    EXPECT_FALSE(cache.find(keyOf(4, {123}), out));
    EXPECT_FALSE(cache.find(keyOf(5, {124}), out));
    EXPECT_FALSE(cache.find(keyOf(5, {123, 7}), out));
    EXPECT_TRUE(cache.find(key, out));
}

TEST(PrefixCacheTest, TinyBudgetEvictsAndCounts)
{
    // A 4096-byte budget over 64-amplitude checkpoints leaves only a
    // few slots; pushing many distinct keys through must reclaim.
    PrefixCache cache(4096);
    cache.configure(64, 1);
    ASSERT_GT(cache.numSlots(), 0u);
    ASSERT_LT(cache.numSlots(), 8u);
    EXPECT_LE(cache.sizeBytes(), cache.budgetBytes());

    bool saw_reclaim = false;
    for (std::uint64_t i = 0; i < 64; ++i) {
        const PrefixKey key = keyOf(2, {i});
        saw_reclaim |= cache.insert(key, payloadFor(key, 64)).reclaimed;
    }
    EXPECT_TRUE(saw_reclaim);
    EXPECT_GT(cache.evictions(), 0u);
    EXPECT_LE(cache.numEntries(), cache.numSlots());

    // Whatever survived must still be exact.
    for (std::uint64_t i = 0; i < 64; ++i) {
        const PrefixKey key = keyOf(2, {i});
        AlignedVector<cplx> out;
        if (cache.find(key, out)) {
            EXPECT_TRUE(bitIdentical(out, payloadFor(key, 64)));
        }
    }
}

TEST(PrefixCacheTest, BudgetTooSmallForOneSlotDisables)
{
    PrefixCache cache(64); // far below one 64-amplitude slot
    cache.configure(64, 1);
    EXPECT_EQ(cache.numSlots(), 0u);
    const PrefixKey key = keyOf(1, {9});
    const PrefixInsertResult ins = cache.insert(key, payloadFor(key, 64));
    EXPECT_FALSE(ins.inserted);
    AlignedVector<cplx> out;
    EXPECT_FALSE(cache.find(key, out));
}

TEST(PrefixCacheTest, ClearDropsEntriesKeepsCounters)
{
    PrefixCache cache(1 << 20);
    cache.configure(8, 1);
    const PrefixKey key = keyOf(2, {11});
    cache.insert(key, payloadFor(key, 8));
    AlignedVector<cplx> out;
    ASSERT_TRUE(cache.find(key, out));
    const std::size_t hits = cache.hits();
    const std::size_t lookups = cache.lookups();

    cache.clear();
    EXPECT_EQ(cache.numEntries(), 0u);
    EXPECT_FALSE(cache.find(key, out));
    EXPECT_EQ(cache.hits(), hits);
    EXPECT_EQ(cache.lookups(), lookups + 1);
}

TEST(PrefixCacheTest, ReconfigureSameShapeKeepsEntries)
{
    PrefixCache cache(1 << 20);
    cache.configure(8, 2);
    const PrefixKey key = keyOf(2, {21, 22});
    cache.insert(key, payloadFor(key, 8));

    cache.configure(8, 2); // identical shape: a no-op
    AlignedVector<cplx> out;
    EXPECT_TRUE(cache.find(key, out));

    cache.configure(16, 2); // shape change: entries dropped
    EXPECT_EQ(cache.numEntries(), 0u);
    EXPECT_FALSE(cache.find(key, out));
}

TEST(PrefixCacheTest, KeysWiderThanConfiguredAreIgnored)
{
    PrefixCache cache(1 << 20);
    cache.configure(8, 1);
    const PrefixKey wide = keyOf(2, {1, 2, 3});
    EXPECT_FALSE(cache.insert(wide, payloadFor(wide, 8)).inserted);
    AlignedVector<cplx> out;
    EXPECT_FALSE(cache.find(wide, out));
}

/**
 * The distributed-determinism load-bearing property: under concurrent
 * insert / lookup / reclamation pressure, a hit NEVER yields a value
 * other than the one deterministically derived from its key. Torn or
 * raced reads must surface as misses. TSan-clean by construction
 * (every shared word goes through atomics); this test is part of the
 * thread-sanitize CI leg.
 */
TEST(PrefixCacheTest, ConcurrentInsertFindReclaimNeverWrongValue)
{
    constexpr std::size_t kAmps = 32;
    constexpr std::size_t kKeys = 512; // universe >> table
    PrefixCache cache(16 * 1024);      // a handful of slots: reclaim-heavy
    cache.configure(kAmps, 1);
    ASSERT_GT(cache.numSlots(), 0u);

    const unsigned hw = std::thread::hardware_concurrency();
    const std::size_t num_threads = hw > 4 ? 4 : (hw > 0 ? hw + 1 : 2);
    std::atomic<std::size_t> wrong{0};
    std::atomic<std::size_t> total_hits{0};

    std::vector<std::thread> threads;
    for (std::size_t t = 0; t < num_threads; ++t) {
        threads.emplace_back([&, t] {
            AlignedVector<cplx> out;
            std::uint64_t state = 0x9e3779b97f4a7c15ull * (t + 1);
            for (int iter = 0; iter < 20000; ++iter) {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                PrefixKey key;
                key.depth = 1 + (state % 7);
                key.paramBits = {state % kKeys};
                const AlignedVector<cplx> expect =
                    payloadFor(key, kAmps);
                // Branch on a high bit: the low bits feed the key, and
                // reusing one for the insert/find split would make the
                // two populations disjoint.
                if ((state >> 60) & 1) {
                    cache.insert(key, expect);
                } else if (cache.find(key, out)) {
                    total_hits.fetch_add(1,
                                         std::memory_order_relaxed);
                    if (!bitIdentical(out, expect))
                        wrong.fetch_add(1,
                                        std::memory_order_relaxed);
                }
            }
        });
    }
    for (std::thread& th : threads)
        th.join();

    EXPECT_EQ(wrong.load(), 0u);
    EXPECT_GT(total_hits.load(), 0u);
    EXPECT_GT(cache.evictions(), 0u);
    EXPECT_LE(cache.numEntries(), cache.numSlots());

    // The table must still be coherent after the storm.
    const PrefixKey key = keyOf(1, {kKeys + 1});
    ASSERT_TRUE(cache.insert(key, payloadFor(key, kAmps)).inserted);
    AlignedVector<cplx> out;
    ASSERT_TRUE(cache.find(key, out));
    EXPECT_TRUE(bitIdentical(out, payloadFor(key, kAmps)));
}

} // namespace
} // namespace oscar
