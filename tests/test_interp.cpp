/**
 * @file
 * Tests for cubic spline and bicubic grid interpolation.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "src/interp/bicubic.h"
#include "src/interp/cubic_spline.h"

namespace oscar {
namespace {

TEST(CubicSpline, ExactAtKnots)
{
    const std::vector<double> x{0, 1, 2, 3, 4};
    const std::vector<double> y{1, -1, 0, 2, 1};
    const CubicSpline s(x, y);
    for (std::size_t i = 0; i < x.size(); ++i)
        EXPECT_NEAR(s(x[i]), y[i], 1e-12);
}

TEST(CubicSpline, ReproducesLinearFunctionExactly)
{
    const std::vector<double> x{0, 0.5, 1.7, 3};
    std::vector<double> y;
    for (double xi : x)
        y.push_back(2.0 * xi - 1.0);
    const CubicSpline s(x, y);
    for (double t : {0.2, 0.9, 2.4, 2.99})
        EXPECT_NEAR(s(t), 2.0 * t - 1.0, 1e-12);
}

TEST(CubicSpline, TwoKnotsDegenerateToLine)
{
    const CubicSpline s({0.0, 2.0}, {1.0, 5.0});
    EXPECT_NEAR(s(1.0), 3.0, 1e-12);
    EXPECT_NEAR(s(0.5), 2.0, 1e-12);
}

TEST(CubicSpline, ApproximatesSmoothFunction)
{
    std::vector<double> x, y;
    for (int i = 0; i <= 40; ++i) {
        x.push_back(i * 0.1);
        y.push_back(std::sin(x.back()));
    }
    const CubicSpline s(x, y);
    for (double t = 0.05; t < 4.0; t += 0.173)
        EXPECT_NEAR(s(t), std::sin(t), 1e-4);
}

TEST(CubicSpline, DerivativeApproximatesCosine)
{
    std::vector<double> x, y;
    for (int i = 0; i <= 60; ++i) {
        x.push_back(i * 0.05);
        y.push_back(std::sin(x.back()));
    }
    const CubicSpline s(x, y);
    for (double t = 0.3; t < 2.7; t += 0.21)
        EXPECT_NEAR(s.derivative(t), std::cos(t), 1e-3);
}

TEST(CubicSpline, RejectsBadKnots)
{
    EXPECT_THROW(CubicSpline({0.0}, {1.0}), std::invalid_argument);
    EXPECT_THROW(CubicSpline({0.0, 0.0}, {1.0, 2.0}),
                 std::invalid_argument);
    EXPECT_THROW(CubicSpline({1.0, 0.0}, {1.0, 2.0}),
                 std::invalid_argument);
}

TEST(BicubicSpline, ExactAtGridPoints)
{
    const std::vector<double> rows{0, 1, 2};
    const std::vector<double> cols{0, 1, 2, 3};
    NdArray values({3, 4});
    for (std::size_t i = 0; i < 12; ++i)
        values[i] = static_cast<double>(i * i % 7);
    const BicubicSpline s(rows, cols, values);
    for (std::size_t r = 0; r < 3; ++r) {
        for (std::size_t c = 0; c < 4; ++c)
            EXPECT_NEAR(s(rows[r], cols[c]), values[r * 4 + c], 1e-10);
    }
}

TEST(BicubicSpline, ReproducesBilinearExactly)
{
    const std::vector<double> rows{0, 1, 2, 3};
    const std::vector<double> cols{0, 2, 4};
    NdArray values({4, 3});
    for (std::size_t r = 0; r < 4; ++r) {
        for (std::size_t c = 0; c < 3; ++c)
            values[r * 3 + c] = 2.0 * rows[r] + 0.5 * cols[c] - 1.0;
    }
    const BicubicSpline s(rows, cols, values);
    EXPECT_NEAR(s(1.5, 3.0), 2.0 * 1.5 + 0.5 * 3.0 - 1.0, 1e-10);
    EXPECT_NEAR(s(0.25, 0.7), 2.0 * 0.25 + 0.5 * 0.7 - 1.0, 1e-10);
}

TEST(BicubicSpline, ApproximatesSmoothSurface)
{
    const std::size_t nr = 25, nc = 25;
    std::vector<double> rows(nr), cols(nc);
    NdArray values({nr, nc});
    for (std::size_t r = 0; r < nr; ++r)
        rows[r] = r * 0.1;
    for (std::size_t c = 0; c < nc; ++c)
        cols[c] = c * 0.1;
    for (std::size_t r = 0; r < nr; ++r) {
        for (std::size_t c = 0; c < nc; ++c)
            values[r * nc + c] = std::sin(rows[r]) * std::cos(cols[c]);
    }
    const BicubicSpline s(rows, cols, values);
    for (double x = 0.1; x < 2.3; x += 0.37) {
        for (double y = 0.15; y < 2.3; y += 0.41) {
            EXPECT_NEAR(s(x, y), std::sin(x) * std::cos(y), 1e-3);
        }
    }
}

TEST(InterpolatedLandscapeCost, MatchesLandscapeValuesOnGrid)
{
    const GridSpec grid({{-1.0, 1.0, 9}, {-1.0, 1.0, 9}});
    NdArray values(grid.shape());
    for (std::size_t i = 0; i < values.size(); ++i) {
        const auto p = grid.pointAt(i);
        values[i] = p[0] * p[0] + 2.0 * p[1] * p[1];
    }
    const Landscape ls(grid, std::move(values));
    InterpolatedLandscapeCost cost(ls);
    for (std::size_t i = 0; i < ls.numPoints(); i += 11) {
        const auto p = grid.pointAt(i);
        EXPECT_NEAR(cost.evaluate(p), ls.value(i), 1e-9);
    }
    // Off-grid query is close to the analytic function.
    EXPECT_NEAR(cost.evaluate({0.13, -0.42}),
                0.13 * 0.13 + 2.0 * 0.42 * 0.42, 1e-2);
}

TEST(InterpolatedLandscapeCost, RejectsNon2dGrid)
{
    const GridSpec grid(
        {{0.0, 1.0, 3}, {0.0, 1.0, 3}, {0.0, 1.0, 3}, {0.0, 1.0, 3}});
    const Landscape ls(grid, NdArray(grid.shape()));
    EXPECT_THROW(InterpolatedLandscapeCost cost(ls), std::invalid_argument);
}

} // namespace
} // namespace oscar
