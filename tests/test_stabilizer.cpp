/**
 * @file
 * Tests for the stabilizer (tableau) simulator, cross-validated
 * against the state-vector simulator on random Clifford circuits.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "src/common/rng.h"
#include "src/quantum/stabilizer.h"
#include "src/quantum/statevector.h"

namespace {

using namespace oscar;

TEST(Stabilizer, InitialStateExpectations)
{
    StabilizerState state(3);
    EXPECT_DOUBLE_EQ(state.expectation(PauliString::fromLabel("ZII")),
                     1.0);
    EXPECT_DOUBLE_EQ(state.expectation(PauliString::fromLabel("IZZ")),
                     1.0);
    EXPECT_DOUBLE_EQ(state.expectation(PauliString::fromLabel("XII")),
                     0.0);
    EXPECT_DOUBLE_EQ(state.expectation(PauliString::fromLabel("IYI")),
                     0.0);
}

TEST(Stabilizer, PlusStateAfterH)
{
    StabilizerState state(1);
    state.applyH(0);
    EXPECT_DOUBLE_EQ(state.expectation(PauliString::fromLabel("X")), 1.0);
    EXPECT_DOUBLE_EQ(state.expectation(PauliString::fromLabel("Z")), 0.0);
}

TEST(Stabilizer, XFlipsSign)
{
    StabilizerState state(1);
    state.applyX(0);
    EXPECT_DOUBLE_EQ(state.expectation(PauliString::fromLabel("Z")),
                     -1.0);
}

TEST(Stabilizer, YEigenstateViaSH)
{
    // S H |0> is the +1 eigenstate of Y.
    StabilizerState state(1);
    state.applyH(0);
    state.applyS(0);
    EXPECT_DOUBLE_EQ(state.expectation(PauliString::fromLabel("Y")), 1.0);
}

TEST(Stabilizer, BellStateCorrelations)
{
    StabilizerState state(2);
    state.applyH(0);
    state.applyCX(0, 1);
    EXPECT_DOUBLE_EQ(state.expectation(PauliString::fromLabel("ZZ")),
                     1.0);
    EXPECT_DOUBLE_EQ(state.expectation(PauliString::fromLabel("XX")),
                     1.0);
    EXPECT_DOUBLE_EQ(state.expectation(PauliString::fromLabel("YY")),
                     -1.0);
    EXPECT_DOUBLE_EQ(state.expectation(PauliString::fromLabel("ZI")),
                     0.0);
}

TEST(Stabilizer, CliffordAngleDetection)
{
    const double pi = std::numbers::pi;
    EXPECT_TRUE(StabilizerState::isCliffordAngle(0.0));
    EXPECT_TRUE(StabilizerState::isCliffordAngle(pi / 2));
    EXPECT_TRUE(StabilizerState::isCliffordAngle(-pi));
    EXPECT_TRUE(StabilizerState::isCliffordAngle(7 * pi / 2));
    EXPECT_FALSE(StabilizerState::isCliffordAngle(0.3));
    EXPECT_FALSE(StabilizerState::isCliffordAngle(pi / 4));
}

TEST(Stabilizer, NonCliffordRotationThrows)
{
    StabilizerState state(1);
    EXPECT_THROW(state.applyGate(Gate::rz(0, 0.3)),
                 std::invalid_argument);
}

TEST(Stabilizer, RzQuarterMatchesS)
{
    // RZ(pi/2) ~ S up to global phase: check on |+>.
    const double pi = std::numbers::pi;
    StabilizerState a(1), b(1);
    a.applyH(0);
    a.applyGate(Gate::rz(0, pi / 2));
    b.applyH(0);
    b.applyS(0);
    for (const char* label : {"X", "Y", "Z"}) {
        EXPECT_DOUBLE_EQ(a.expectation(PauliString::fromLabel(label)),
                         b.expectation(PauliString::fromLabel(label)))
            << label;
    }
}

/**
 * Property test: random Clifford circuits produce identical Pauli
 * expectations on the tableau and on the state vector.
 */
class StabilizerVsStatevector : public ::testing::TestWithParam<int>
{
};

TEST_P(StabilizerVsStatevector, RandomCliffordCircuitAgrees)
{
    const double pi = std::numbers::pi;
    Rng rng(5000 + GetParam());
    const int n = 2 + static_cast<int>(rng.uniformInt(4));

    Circuit circuit(n, 0);
    for (int g = 0; g < 30; ++g) {
        const int q = static_cast<int>(rng.uniformInt(n));
        int q2 = static_cast<int>(rng.uniformInt(n));
        if (q2 == q)
            q2 = (q + 1) % n;
        const int k = 1 + static_cast<int>(rng.uniformInt(3));
        switch (rng.uniformInt(9)) {
          case 0: circuit.append(Gate::h(q)); break;
          case 1: circuit.append(Gate::s(q)); break;
          case 2: circuit.append(Gate::sdg(q)); break;
          case 3: circuit.append(Gate::cx(q, q2)); break;
          case 4: circuit.append(Gate::cz(q, q2)); break;
          case 5: circuit.append(Gate::rz(q, k * pi / 2)); break;
          case 6: circuit.append(Gate::rx(q, k * pi / 2)); break;
          case 7: circuit.append(Gate::ry(q, k * pi / 2)); break;
          case 8: circuit.append(Gate::rzz(q, q2, k * pi / 2)); break;
        }
    }

    StabilizerState tableau(n);
    tableau.run(circuit);
    Statevector sv(n);
    sv.run(circuit);

    // Compare expectations of random Pauli strings.
    for (int trial = 0; trial < 12; ++trial) {
        PauliString p(n);
        for (int q = 0; q < n; ++q) {
            p.setOp(q,
                    static_cast<PauliOp>(rng.uniformInt(4)));
        }
        EXPECT_NEAR(tableau.expectation(p), sv.expectation(p), 1e-9)
            << "pauli=" << p.toLabel();
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, StabilizerVsStatevector,
                         ::testing::Range(0, 16));

TEST(Stabilizer, LargeCircuitIsFast)
{
    // 60 qubits, 600 gates: far beyond any state vector, instant on
    // the tableau.
    Rng rng(9);
    const int n = 60;
    StabilizerState state(n);
    Circuit circuit(n, 0);
    for (int q = 0; q < n; ++q)
        circuit.append(Gate::h(q));
    for (int g = 0; g < 540; ++g) {
        const int q = static_cast<int>(rng.uniformInt(n));
        const int q2 = (q + 1 + static_cast<int>(rng.uniformInt(n - 1))) %
                       n;
        circuit.append(g % 3 == 0 ? Gate::cx(q, q2) : Gate::s(q));
    }
    state.run(circuit);
    PauliString zz(n);
    zz.setOp(0, PauliOp::Z);
    zz.setOp(1, PauliOp::Z);
    const double e = state.expectation(zz);
    EXPECT_GE(e, -1.0);
    EXPECT_LE(e, 1.0);
}

} // namespace
