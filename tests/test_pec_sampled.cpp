/**
 * @file
 * Tests for PEC mitigation and the multinomial sampled backend.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "src/ansatz/qaoa.h"
#include "src/backend/density_backend.h"
#include "src/backend/sampled_backend.h"
#include "src/backend/statevector_backend.h"
#include "src/common/rng.h"
#include "src/graph/generators.h"
#include "src/hamiltonian/maxcut.h"
#include "src/mitigation/pec.h"

namespace {

using namespace oscar;

TEST(PecChannelInverse, IdealNoiseHasUnitGamma)
{
    const auto inv = PecChannelInverse::depolarizing1(0.0);
    EXPECT_DOUBLE_EQ(inv.alpha, 1.0);
    EXPECT_DOUBLE_EQ(inv.beta, 0.0);
    EXPECT_DOUBLE_EQ(inv.gamma, 1.0);
}

TEST(PecChannelInverse, InverseUndoesContraction)
{
    // The inverse map's Pauli-transfer factor must be 1/f exactly.
    for (double p : {0.01, 0.05, 0.2}) {
        const auto inv = PecChannelInverse::depolarizing1(p);
        const double f = 1.0 - 4.0 * p / 3.0;
        // Pauli-transfer factor of alpha*Id + (beta/3) sum_P P.P is
        // alpha - beta/3 (the Pauli sum maps W -> -W).
        const double factor = inv.alpha - inv.beta / 3.0;
        EXPECT_NEAR(factor * f, 1.0, 1e-12) << p;
        EXPECT_GT(inv.gamma, 1.0);
    }
    for (double p : {0.01, 0.1}) {
        const auto inv = PecChannelInverse::depolarizing2(p);
        const double f = 1.0 - 16.0 * p / 15.0;
        const double factor = inv.alpha - inv.beta / 15.0;
        EXPECT_NEAR(factor * f, 1.0, 1e-12) << p;
    }
}

TEST(PecChannelInverse, RejectsOutOfRangeRates)
{
    EXPECT_THROW(PecChannelInverse::depolarizing1(0.75),
                 std::invalid_argument);
    EXPECT_THROW(PecChannelInverse::depolarizing1(-0.1),
                 std::invalid_argument);
}

TEST(Pec, UnbiasedTowardIdealValue)
{
    Rng rng(1);
    const Graph g = random3RegularGraph(4, rng);
    const PauliSum h = maxcutHamiltonian(g);
    const Circuit c = qaoaCircuit(g, 1);
    const NoiseModel noise = NoiseModel::depolarizing(0.01, 0.03);
    const std::vector<double> params{0.3, -0.6};

    StatevectorCost ideal(c, h);
    DensityCost noisy(c, h, noise);
    const double target = ideal.evaluate(params);
    const double raw = noisy.evaluate(params);

    PecOptions options;
    options.numSamples = 30000;
    options.seed = 5;
    PecCost pec(c, h, noise, options);
    const double mitigated = pec.evaluate(params);

    EXPECT_GT(pec.totalGamma(), 1.0);
    EXPECT_LT(std::abs(mitigated - target), std::abs(raw - target));
    // 30k samples with gamma ~ 2.4: statistical error well under 0.2.
    EXPECT_NEAR(mitigated, target, 0.2);
}

TEST(Pec, GammaGrowsWithNoiseAndGateCount)
{
    Rng rng(2);
    const Graph g = random3RegularGraph(4, rng);
    const PauliSum h = maxcutHamiltonian(g);

    PecCost mild(qaoaCircuit(g, 1), h,
                 NoiseModel::depolarizing(0.002, 0.005), {10, 1});
    PecCost heavy(qaoaCircuit(g, 1), h,
                  NoiseModel::depolarizing(0.01, 0.03), {10, 1});
    PecCost deep(qaoaCircuit(g, 2), h,
                 NoiseModel::depolarizing(0.002, 0.005), {10, 1});
    EXPECT_GT(heavy.totalGamma(), mild.totalGamma());
    EXPECT_GT(deep.totalGamma(), mild.totalGamma());
}

TEST(Pec, NoNoiseReducesToExactValue)
{
    Rng rng(3);
    const Graph g = random3RegularGraph(4, rng);
    const PauliSum h = maxcutHamiltonian(g);
    const Circuit c = qaoaCircuit(g, 1);

    StatevectorCost ideal(c, h);
    PecCost pec(c, h, NoiseModel::idealModel(), {4, 9});
    const std::vector<double> params{0.2, 0.4};
    EXPECT_NEAR(pec.evaluate(params), ideal.evaluate(params), 1e-10);
}

TEST(SampledBackend, ConvergesToExactExpectation)
{
    Rng rng(4);
    const Graph g = random3RegularGraph(6, rng);
    const PauliSum h = maxcutHamiltonian(g);
    const Circuit c = qaoaCircuit(g, 1);
    const std::vector<double> params{0.25, -0.45};

    StatevectorCost exact(c, h);
    SampledCost sampled(c, h, 100000, NoiseModel::idealModel(), 7);
    EXPECT_NEAR(sampled.evaluate(params), exact.evaluate(params), 0.1);
}

TEST(SampledBackend, VarianceShrinksWithShots)
{
    Rng rng(5);
    const Graph g = random3RegularGraph(4, rng);
    const PauliSum h = maxcutHamiltonian(g);
    const Circuit c = qaoaCircuit(g, 1);
    const std::vector<double> params{0.3, 0.7};

    StatevectorCost exact(c, h);
    const double target = exact.evaluate(params);

    auto spread = [&](std::size_t shots) {
        double acc = 0.0;
        for (int rep = 0; rep < 30; ++rep) {
            SampledCost cost(c, h, shots, NoiseModel::idealModel(),
                             100 + rep);
            const double err = cost.evaluate(params) - target;
            acc += err * err;
        }
        return acc / 30.0;
    };
    EXPECT_GT(spread(64), 3.0 * spread(4096));
}

TEST(SampledBackend, ReadoutBiasAppears)
{
    // Strong readout error on the all-zeros state shifts <ZZ...>.
    Graph g(4);
    g.addEdge(0, 1);
    g.addEdge(1, 2);
    g.addEdge(2, 3);
    const PauliSum h = maxcutHamiltonian(g);
    Circuit c(4, 1);
    c.append(Gate::rzParam(0, 0)); // effectively |0000> state

    NoiseModel readout;
    readout.readout01 = 0.2;
    SampledCost clean(c, h, 40000, NoiseModel::idealModel(), 8);
    SampledCost biased(c, h, 40000, readout, 9);
    const std::vector<double> params{0.0};
    // |0000> has cost 0 (no cut edges); readout flips create cuts,
    // lowering the (negative) MaxCut energy.
    EXPECT_NEAR(clean.evaluate(params), 0.0, 1e-9);
    EXPECT_LT(biased.evaluate(params), -0.3);
}

TEST(SampledBackend, RejectsNonDiagonal)
{
    PauliSum h(1);
    h.add(1.0, "X");
    Circuit c(1, 0);
    c.append(Gate::h(0));
    EXPECT_THROW(
        SampledCost(c, h, 10, NoiseModel::idealModel(), 1),
        std::invalid_argument);
}

} // namespace
