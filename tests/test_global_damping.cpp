/**
 * @file
 * Tests for the global-depolarizing approximation backend.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "src/ansatz/qaoa.h"
#include "src/backend/density_backend.h"
#include "src/backend/global_damping.h"
#include "src/common/rng.h"
#include "src/graph/generators.h"
#include "src/hamiltonian/maxcut.h"

namespace oscar {
namespace {

TEST(GlobalDamping, IdealNoiseIsExactPassThrough)
{
    Rng rng(1);
    const Graph g = random3RegularGraph(6, rng);
    const Circuit c = qaoaCircuit(g, 2);
    const PauliSum h = maxcutHamiltonian(g);

    GlobalDampingCost damped(c, h, NoiseModel::idealModel());
    StatevectorCost ideal(c, h);
    EXPECT_DOUBLE_EQ(damped.damping(), 1.0);
    const std::vector<double> params{0.2, -0.1, 0.5, 0.3};
    EXPECT_NEAR(damped.evaluate(params), ideal.evaluate(params), 1e-12);
}

TEST(GlobalDamping, MixedExpectationIsHalfEdgeWeight)
{
    Rng rng(2);
    const Graph g = random3RegularGraph(8, rng);
    GlobalDampingCost cost(qaoaCircuit(g, 1), maxcutHamiltonian(g),
                           NoiseModel::depolarizing(0.001, 0.01));
    double expected = 0.0;
    for (const Edge& e : g.edges())
        expected -= e.weight / 2.0;
    EXPECT_NEAR(cost.mixedExpectation(), expected, 1e-12);
}

TEST(GlobalDamping, DampingCountsGates)
{
    Rng rng(3);
    const Graph g = random3RegularGraph(6, rng); // 9 edges
    const Circuit c = qaoaCircuit(g, 1); // 6 H + 9 RZZ + 6 RX
    GlobalDampingCost cost(c, maxcutHamiltonian(g),
                           NoiseModel::depolarizing(0.01, 0.02));
    EXPECT_NEAR(cost.damping(),
                std::pow(0.99, 12) * std::pow(0.98, 9), 1e-12);
}

TEST(GlobalDamping, TracksExactChannelWithinTolerance)
{
    // On a small instance the white-noise approximation should sit
    // within a few percent of the exact density-matrix energy.
    Rng rng(4);
    const Graph g = random3RegularGraph(6, rng);
    const Circuit c = qaoaCircuit(g, 1);
    const PauliSum h = maxcutHamiltonian(g);
    const NoiseModel noise = NoiseModel::depolarizing(0.002, 0.008);

    DensityCost exact(c, h, noise);
    GlobalDampingCost approx(c, h, noise);
    for (double beta : {0.2, -0.35}) {
        for (double gamma : {0.4, -0.8}) {
            const std::vector<double> params{beta, gamma};
            EXPECT_NEAR(approx.evaluate(params), exact.evaluate(params),
                        0.2)
                << beta << " " << gamma;
        }
    }
}

TEST(GlobalDamping, MoreNoiseFlattensLandscape)
{
    Rng rng(5);
    const Graph g = random3RegularGraph(8, rng);
    const Circuit c = qaoaCircuit(g, 2);
    const PauliSum h = maxcutHamiltonian(g);

    GlobalDampingCost mild(c, h, NoiseModel::depolarizing(0.001, 0.003));
    GlobalDampingCost heavy(c, h, NoiseModel::depolarizing(0.01, 0.03));
    const std::vector<double> params{0.2, 0.1, -0.4, 0.6};
    const double mixed = mild.mixedExpectation();
    EXPECT_GT(std::abs(mild.evaluate(params) - mixed),
              std::abs(heavy.evaluate(params) - mixed));
}

} // namespace
} // namespace oscar
