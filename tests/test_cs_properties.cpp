/**
 * @file
 * Property-style sweeps of the compressed-sensing stack: recovery
 * rate vs measurement count (the empirical RIP story), folding
 * consistency for parameterized circuits, and the combined
 * parallel + NCM + eager pipeline.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "src/ansatz/qaoa.h"
#include "src/backend/analytic_qaoa.h"
#include "src/common/rng.h"
#include "src/core/oscar.h"
#include "src/cs/fista.h"
#include "src/graph/generators.h"
#include "src/landscape/metrics.h"
#include "src/mitigation/folding.h"
#include "src/parallel/eager.h"
#include "src/quantum/statevector.h"

namespace {

using namespace oscar;

/** Relative L2 reconstruction error of one random sparse instance. */
double
sparseRecoveryError(std::size_t m, std::size_t sparsity,
                    std::uint64_t seed)
{
    const std::size_t nr = 16, nc = 16;
    Rng rng(seed);
    Dct2d dct(nr, nc);
    NdArray coeffs({nr, nc});
    for (std::size_t idx : rng.sampleWithoutReplacement(nr * nc,
                                                        sparsity))
        coeffs[idx] = rng.uniform(0.5, 2.0);
    const NdArray signal = dct.inverse(coeffs);

    const auto indices = rng.sampleWithoutReplacement(nr * nc, m);
    std::vector<double> values;
    for (std::size_t idx : indices)
        values.push_back(signal[idx]);
    const auto result = fistaSolve(dct, indices, values);
    const NdArray recon = dct.inverse(result.coefficients);

    double err = 0.0, norm = 0.0;
    for (std::size_t i = 0; i < signal.size(); ++i) {
        err += (recon[i] - signal[i]) * (recon[i] - signal[i]);
        norm += signal[i] * signal[i];
    }
    return std::sqrt(err / norm);
}

/** Recovery succeeds when the relative error is below 5%. */
class RecoveryRate
    : public ::testing::TestWithParam<std::size_t> // measurements
{
};

TEST_P(RecoveryRate, ImprovesWithMeasurements)
{
    // CS theory: recovery of an s-sparse signal needs
    // m >~ C s log(n/s) random measurements. With s = 6 and n = 256,
    // m = 96 should succeed nearly always; m = 24 should mostly fail.
    const std::size_t m = GetParam();
    int successes = 0;
    const int trials = 10;
    for (int t = 0; t < trials; ++t) {
        if (sparseRecoveryError(m, 6, 10 * m + t) < 0.05)
            ++successes;
    }
    if (m >= 96)
        EXPECT_GE(successes, 9) << "m=" << m;
    else if (m <= 24)
        EXPECT_LE(successes, 4) << "m=" << m;
}

INSTANTIATE_TEST_SUITE_P(MeasurementCounts, RecoveryRate,
                         ::testing::Values(16, 24, 96, 128));

TEST(CsProperties, RecoveryMonotoneInMeasurements)
{
    double prev = 1e9;
    for (std::size_t m : {24u, 64u, 128u, 220u}) {
        double acc = 0.0;
        for (int t = 0; t < 5; ++t)
            acc += sparseRecoveryError(m, 8, 555 + t);
        acc /= 5.0;
        EXPECT_LE(acc, prev * 1.25) << m; // allow small non-monotone
        prev = acc;
    }
    EXPECT_LT(prev, 0.02); // fully determined at high m
}

TEST(Folding, ParameterizedFoldConsistentWithBoundFold)
{
    // Folding then binding must equal binding then folding.
    Rng rng(4);
    const Graph g = random3RegularGraph(6, rng);
    const Circuit circuit = qaoaCircuit(g, 1);
    const std::vector<double> params{0.37, -0.92};
    for (double scale : {1.8, 3.0}) {
        const Circuit fold_then_bind =
            foldGlobal(circuit, scale).bind(params);
        const Circuit bind_then_fold =
            foldGlobal(circuit.bind(params), scale);
        Statevector a(6), b(6);
        a.run(fold_then_bind);
        b.run(bind_then_fold);
        EXPECT_NEAR(std::abs(a.innerProduct(b)), 1.0, 1e-10) << scale;
    }
}

TEST(ParallelPipeline, EagerPlusNcmEndToEnd)
{
    // Full combined flow: two noisy QPUs with heavy-tailed latency,
    // NCM-transformed secondary samples, eager cutoff at q=0.9, then
    // reconstruction -- must still land close to the QPU-1 landscape.
    Rng rng(6);
    const Graph g = random3RegularGraph(12, rng);
    const GridSpec grid = GridSpec::qaoaP1(24, 48);

    std::vector<QpuDevice> devices;
    {
        QpuDevice d;
        d.name = "ref";
        d.noise = NoiseModel::depolarizing(0.001, 0.005);
        d.cost = std::make_shared<AnalyticQaoaCost>(g, d.noise);
        d.latency = {0.0, 1.0, 1.2};
        devices.push_back(std::move(d));
    }
    {
        QpuDevice d;
        d.name = "helper";
        d.noise = NoiseModel::depolarizing(0.003, 0.007);
        d.cost = std::make_shared<AnalyticQaoaCost>(g, d.noise);
        d.latency = {0.0, 1.0, 1.2};
        devices.push_back(std::move(d));
    }

    AnalyticQaoaCost ref_cost(g, devices[0].noise);
    const Landscape target = Landscape::gridSearch(grid, ref_cost);

    const auto ncm = NoiseCompensationModel::trainOnDevices(
        grid, devices[0], devices[1], 0.02, rng);

    const auto indices =
        chooseSampleIndices(grid.numPoints(), 0.15, rng);
    const auto run = runParallelSampling(grid, devices, indices, rng);
    const auto eager = eagerCutoffQuantile(run, 0.9);

    // NCM-transform the retained samples that came from the helper.
    SampleSet merged;
    for (const ParallelSample& s : run.samples) {
        if (s.completionTime > eager.deadline)
            continue;
        merged.indices.push_back(s.index);
        merged.values.push_back(
            s.device == 0 ? s.value : ncm.transform(s.value));
    }
    const Landscape recon =
        Oscar::reconstructFromSamples(grid, merged);
    EXPECT_LT(nrmse(target.values(), recon.values()), 0.05);
}

TEST(CsProperties, ReconstructionIsDeterministicGivenSeed)
{
    Rng rng(7);
    const Graph g = random3RegularGraph(10, rng);
    AnalyticQaoaCost cost(g);
    const GridSpec grid = GridSpec::qaoaP1(20, 40);

    OscarOptions options;
    options.samplingFraction = 0.1;
    options.seed = 99;
    const auto a = Oscar::reconstruct(grid, cost, options);
    const auto b = Oscar::reconstruct(grid, cost, options);
    for (std::size_t i = 0; i < a.reconstructed.numPoints(); ++i)
        EXPECT_DOUBLE_EQ(a.reconstructed.value(i),
                         b.reconstructed.value(i));
}

} // namespace
