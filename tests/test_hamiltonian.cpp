/**
 * @file
 * Tests for problem Hamiltonians: MaxCut, SK, and molecules.
 */

#include <gtest/gtest.h>

#include <algorithm>

#include "src/common/rng.h"
#include "src/graph/generators.h"
#include "src/hamiltonian/maxcut.h"
#include "src/hamiltonian/molecules.h"
#include "src/hamiltonian/sk_model.h"
#include "src/quantum/statevector.h"

namespace oscar {
namespace {

TEST(MaxcutHamiltonian, EnergyEqualsMinusCut)
{
    Rng rng(1);
    const Graph g = random3RegularGraph(8, rng);
    const PauliSum h = maxcutHamiltonian(g);
    ASSERT_TRUE(h.isDiagonal());
    const auto table = h.diagonalTable();
    for (std::uint64_t z = 0; z < table.size(); ++z)
        EXPECT_NEAR(table[z], -g.cutValue(z), 1e-12);
}

TEST(MaxcutHamiltonian, GroundEnergyIsMinusMaxcut)
{
    Rng rng(2);
    const Graph g = random3RegularGraph(10, rng);
    const PauliSum h = maxcutHamiltonian(g);
    EXPECT_NEAR(h.diagonalMinimum(), -g.maxCutBruteForce(), 1e-12);
}

TEST(MaxcutHamiltonian, OffsetMatchesEdgeWeights)
{
    Graph g(3);
    g.addEdge(0, 1, 2.0);
    g.addEdge(1, 2, 3.0);
    EXPECT_DOUBLE_EQ(maxcutOffset(g), -2.5);
}

TEST(SkHamiltonian, DiagonalWithAllPairTerms)
{
    Rng rng(3);
    const PauliSum h = randomSkHamiltonian(5, rng);
    EXPECT_TRUE(h.isDiagonal());
    EXPECT_EQ(h.numTerms(), 10u); // C(5,2)
}

TEST(SkHamiltonian, SpinFlipSymmetry)
{
    // SK energies are invariant under global spin flip.
    Rng rng(4);
    const PauliSum h = randomSkHamiltonian(6, rng);
    const auto table = h.diagonalTable();
    const std::uint64_t mask = (1ULL << 6) - 1;
    for (std::uint64_t z = 0; z < table.size(); ++z)
        EXPECT_NEAR(table[z], table[z ^ mask], 1e-12);
}

TEST(H2Hamiltonian, HartreeFockEnergy)
{
    // The Hartree-Fock state of the parity-reduced Hamiltonian is
    // |01> (qubit 0 = 1), with E_HF ~ -1.8370 Ha at 0.735 A.
    const PauliSum h = h2Hamiltonian();
    Statevector sv(2);
    sv.applyGate(Gate::x(0));
    EXPECT_NEAR(h.expectation(sv), -1.8370, 5e-3);
}

TEST(H2Hamiltonian, GroundEnergyMatchesFci)
{
    // The ground state lives in span{|01>, |10>}; scanning the block
    // must reach the FCI energy ~ -1.8573 Ha.
    const PauliSum h = h2Hamiltonian();
    double best = 1e9;
    for (int k = 0; k <= 400; ++k) {
        const double t = -1.0 + 2.0 * k / 400.0;
        Statevector sv(2);
        sv.amps()[0] = 0.0;
        sv.amps()[1] = std::cos(t / 2);
        sv.amps()[2] = std::sin(t / 2);
        best = std::min(best, h.expectation(sv));
    }
    EXPECT_NEAR(best, -1.8573, 2e-3);
}

TEST(LihHamiltonian, StructureAndScale)
{
    const PauliSum h = lihHamiltonian();
    EXPECT_EQ(h.numQubits(), 4);
    EXPECT_GT(h.numTerms(), 10u);
    EXPECT_FALSE(h.isDiagonal());
    // The identity coefficient dominates (core energy ~ -7.5 Ha).
    Statevector sv(4);
    EXPECT_LT(h.expectation(sv), -6.0);
}

} // namespace
} // namespace oscar
