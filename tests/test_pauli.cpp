/**
 * @file
 * Tests for Pauli strings and Pauli sums.
 */

#include <gtest/gtest.h>

#include "src/hamiltonian/pauli_sum.h"
#include "src/quantum/pauli.h"
#include "src/quantum/statevector.h"

namespace oscar {
namespace {

TEST(PauliString, LabelRoundTrip)
{
    const auto p = PauliString::fromLabel("IXYZ");
    EXPECT_EQ(p.numQubits(), 4);
    EXPECT_EQ(p.op(0), PauliOp::I);
    EXPECT_EQ(p.op(1), PauliOp::X);
    EXPECT_EQ(p.op(2), PauliOp::Y);
    EXPECT_EQ(p.op(3), PauliOp::Z);
    EXPECT_EQ(p.toLabel(), "IXYZ");
}

TEST(PauliString, BadLabelThrows)
{
    EXPECT_THROW(PauliString::fromLabel("IXQ"), std::invalid_argument);
}

TEST(PauliString, DiagonalDetection)
{
    EXPECT_TRUE(PauliString::fromLabel("IZZI").isDiagonal());
    EXPECT_FALSE(PauliString::fromLabel("IZXI").isDiagonal());
    EXPECT_FALSE(PauliString::fromLabel("YIII").isDiagonal());
}

TEST(PauliString, Weight)
{
    EXPECT_EQ(PauliString::fromLabel("IIII").weight(), 0);
    EXPECT_EQ(PauliString::fromLabel("XYZI").weight(), 3);
}

TEST(PauliString, DiagonalEigenvalue)
{
    const auto zz = PauliString::fromLabel("ZZ");
    EXPECT_EQ(zz.diagonalEigenvalue(0b00), 1);
    EXPECT_EQ(zz.diagonalEigenvalue(0b01), -1);
    EXPECT_EQ(zz.diagonalEigenvalue(0b10), -1);
    EXPECT_EQ(zz.diagonalEigenvalue(0b11), 1);
}

TEST(PauliString, ZStringFactory)
{
    const auto p = PauliString::zString(4, {1, 3});
    EXPECT_EQ(p.toLabel(), "IZIZ");
}

TEST(PauliSum, DiagonalTableMatchesEigenvalues)
{
    PauliSum h(2);
    h.add(0.5, "ZZ");
    h.add(-1.0, "IZ");
    h.add(0.25, "II");
    const auto table = h.diagonalTable();
    // basis state z: bit k = qubit k; label char k = qubit k.
    // |00>: 0.5 - 1.0 + 0.25
    EXPECT_DOUBLE_EQ(table[0], -0.25);
    // |q1=1, q0=0> = index 2: ZZ -> -1, IZ (Z on qubit 1) -> -1.
    EXPECT_DOUBLE_EQ(table[2], -0.5 + 1.0 + 0.25);
}

TEST(PauliSum, DiagonalMinimum)
{
    PauliSum h(2);
    h.add(1.0, "ZZ");
    EXPECT_DOUBLE_EQ(h.diagonalMinimum(), -1.0);
}

TEST(PauliSum, ExpectationMixesDiagonalAndOffDiagonal)
{
    // H = X0 + Z0 on |+>: <X> = 1, <Z> = 0.
    PauliSum h(1);
    h.add(2.0, "X");
    h.add(5.0, "Z");
    Statevector sv(1);
    sv.applyGate(Gate::h(0));
    EXPECT_NEAR(h.expectation(sv), 2.0, 1e-12);
}

TEST(PauliSum, QubitMismatchThrows)
{
    PauliSum h(2);
    EXPECT_THROW(h.add(1.0, PauliString::fromLabel("ZZZ")),
                 std::invalid_argument);
}

TEST(PauliSum, NonDiagonalTableThrows)
{
    PauliSum h(1);
    h.add(1.0, "X");
    EXPECT_THROW(h.diagonalTable(), std::logic_error);
}

} // namespace
} // namespace oscar
