/**
 * @file
 * Cross-validation of the closed-form depth-1 QAOA evaluator against
 * the exact state-vector simulation -- the correctness anchor for all
 * large-qubit experiments (paper Fig. 4).
 */

#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "src/ansatz/qaoa.h"
#include "src/backend/analytic_qaoa.h"
#include "src/backend/density_backend.h"
#include "src/backend/statevector_backend.h"
#include "src/common/rng.h"
#include "src/graph/generators.h"
#include "src/hamiltonian/maxcut.h"

namespace oscar {
namespace {

/** Exact vs analytic across graph families and angles. */
class AnalyticVsStatevector
    : public ::testing::TestWithParam<std::tuple<int, int>>
{
  protected:
    Graph
    makeGraph(int family, Rng& rng) const
    {
        switch (family) {
          case 0: return random3RegularGraph(8, rng);
          case 1: return meshGraph(2, 4);
          case 2: return skInstance(6, rng);
          case 3: return erdosRenyiGraph(7, 0.5, rng);
          case 4: { // triangle: the f > 0 (common-neighbor) case
              Graph g(3);
              g.addEdge(0, 1);
              g.addEdge(1, 2);
              g.addEdge(0, 2);
              return g;
          }
          default: { // path graph
              Graph g(5);
              for (int i = 0; i < 4; ++i)
                  g.addEdge(i, i + 1);
              return g;
          }
        }
    }
};

TEST_P(AnalyticVsStatevector, EnergyMatchesExactSimulation)
{
    const auto [family, angle_seed] = GetParam();
    Rng rng(1000 + family);
    const Graph g = makeGraph(family, rng);

    const Circuit circuit = qaoaCircuit(g, 1);
    StatevectorCost exact(circuit, maxcutHamiltonian(g));
    AnalyticQaoaCost analytic(g);

    Rng angles(angle_seed);
    for (int trial = 0; trial < 5; ++trial) {
        const double beta = angles.uniform(-std::numbers::pi / 4,
                                           std::numbers::pi / 4);
        const double gamma = angles.uniform(-std::numbers::pi / 2,
                                            std::numbers::pi / 2);
        const std::vector<double> params{beta, gamma};
        EXPECT_NEAR(analytic.evaluate(params), exact.evaluate(params),
                    1e-9)
            << "family=" << family << " beta=" << beta
            << " gamma=" << gamma;
    }
}

INSTANTIATE_TEST_SUITE_P(
    GraphFamilies, AnalyticVsStatevector,
    ::testing::Combine(::testing::Range(0, 6), ::testing::Values(1, 2)));

TEST(AnalyticQaoa, ZeroAnglesGiveZeroExpectation)
{
    // At beta = gamma = 0 the state is |+>^n: every <ZZ> = 0 and the
    // energy is -sum w / 2.
    Rng rng(3);
    const Graph g = random3RegularGraph(10, rng);
    AnalyticQaoaCost cost(g);
    double half_weight = 0.0;
    for (const Edge& e : g.edges())
        half_weight += e.weight / 2.0;
    EXPECT_NEAR(cost.evaluate({0.0, 0.0}), -half_weight, 1e-12);
}

TEST(AnalyticQaoa, LandscapeSymmetry)
{
    // QAOA MaxCut landscapes obey C(-beta, -gamma) = C(beta, gamma).
    Rng rng(4);
    const Graph g = random3RegularGraph(12, rng);
    AnalyticQaoaCost cost(g);
    for (double beta : {0.2, -0.5}) {
        for (double gamma : {0.3, 1.1}) {
            EXPECT_NEAR(cost.evaluate({beta, gamma}),
                        cost.evaluate({-beta, -gamma}), 1e-12);
        }
    }
}

TEST(AnalyticQaoa, NoiseDampsTowardMixedEnergy)
{
    Rng rng(5);
    const Graph g = random3RegularGraph(8, rng);
    AnalyticQaoaCost ideal(g);
    AnalyticQaoaCost noisy(g, NoiseModel::depolarizing(0.003, 0.007));

    double half_weight = 0.0;
    for (const Edge& e : g.edges())
        half_weight += e.weight / 2.0;

    const std::vector<double> params{0.3, -0.6};
    const double e_ideal = ideal.evaluate(params);
    const double e_noisy = noisy.evaluate(params);
    // Depolarizing pulls every <ZZ> toward zero, i.e. the energy
    // toward the maximally-mixed value -sum w / 2.
    EXPECT_GT(std::abs(e_ideal + half_weight),
              std::abs(e_noisy + half_weight));
}

TEST(AnalyticQaoa, LightConeDampingTracksDensityMatrix)
{
    // The Pauli-twirl light-cone model should approximate the exact
    // noisy expectation to within a few percent at realistic error
    // rates on a small instance.
    Rng rng(6);
    const Graph g = random3RegularGraph(6, rng);
    const NoiseModel noise = NoiseModel::depolarizing(0.002, 0.008);

    const Circuit circuit = qaoaCircuit(g, 1);
    DensityCost exact(circuit, maxcutHamiltonian(g), noise);
    AnalyticQaoaCost approx(g, noise);

    for (double beta : {0.25, -0.4}) {
        for (double gamma : {0.5, -0.9}) {
            const std::vector<double> params{beta, gamma};
            const double e_exact = exact.evaluate(params);
            const double e_approx = approx.evaluate(params);
            // Energies are O(|E|/2) ~ 4.5; agree to a few percent.
            EXPECT_NEAR(e_approx, e_exact, 0.15)
                << "beta=" << beta << " gamma=" << gamma;
        }
    }
}

TEST(AnalyticQaoa, WeightedTriangleMatchesExact)
{
    // Weighted graph with a triangle: exercises both w_uk + w_vk and
    // w_uk - w_vk product terms.
    Graph g(4);
    g.addEdge(0, 1, 0.8);
    g.addEdge(1, 2, -1.3);
    g.addEdge(0, 2, 0.4);
    g.addEdge(2, 3, 2.0);

    const Circuit circuit = qaoaCircuit(g, 1);
    StatevectorCost exact(circuit, maxcutHamiltonian(g));
    AnalyticQaoaCost analytic(g);

    for (double beta : {0.17, -0.33}) {
        for (double gamma : {0.71, -1.2}) {
            const std::vector<double> params{beta, gamma};
            EXPECT_NEAR(analytic.evaluate(params), exact.evaluate(params),
                        1e-9);
        }
    }
}

TEST(AnalyticQaoa, QueryCounting)
{
    Rng rng(7);
    const Graph g = random3RegularGraph(8, rng);
    AnalyticQaoaCost cost(g);
    EXPECT_EQ(cost.numQueries(), 0u);
    cost.evaluate({0.1, 0.2});
    cost.evaluate({0.3, 0.4});
    EXPECT_EQ(cost.numQueries(), 2u);
    cost.resetQueries();
    EXPECT_EQ(cost.numQueries(), 0u);
}

} // namespace
} // namespace oscar
