/**
 * @file
 * Tests for the density-matrix simulator and its agreement with the
 * state-vector (pure) and trajectory (noisy) backends.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "src/backend/density_backend.h"
#include "src/backend/statevector_backend.h"
#include "src/backend/trajectory_backend.h"
#include "src/common/rng.h"
#include "src/graph/generators.h"
#include "src/hamiltonian/maxcut.h"
#include "src/quantum/density_matrix.h"
#include "src/quantum/statevector.h"

namespace oscar {
namespace {

TEST(DensityMatrix, InitialStateIsPure)
{
    DensityMatrix rho(2);
    EXPECT_NEAR(rho.trace(), 1.0, 1e-12);
    EXPECT_NEAR(rho.purity(), 1.0, 1e-12);
    EXPECT_NEAR(rho.element(0, 0).real(), 1.0, 1e-12);
}

TEST(DensityMatrix, PureEvolutionMatchesStatevector)
{
    Circuit c(3, 0);
    c.append(Gate::h(0));
    c.append(Gate::cx(0, 1));
    c.append(Gate::ry(2, 0.9));
    c.append(Gate::rzz(1, 2, 1.1));
    c.append(Gate::rx(0, -0.4));

    Statevector sv(3);
    sv.run(c);
    DensityMatrix rho(3);
    rho.run(c, NoiseModel::idealModel());

    for (std::size_t r = 0; r < 8; ++r) {
        for (std::size_t col = 0; col < 8; ++col) {
            const cplx expected = sv.amp(r) * std::conj(sv.amp(col));
            EXPECT_NEAR(std::abs(rho.element(r, col) - expected), 0.0,
                        1e-10);
        }
    }
    EXPECT_NEAR(rho.purity(), 1.0, 1e-10);
}

TEST(DensityMatrix, DepolarizingShrinksBlochVector)
{
    // |+> under 1-qubit depolarizing: <X> = 1 - 4p/3.
    DensityMatrix rho(1);
    rho.applyGate(Gate::h(0));
    const double p = 0.15;
    rho.applyDepolarizing1(0, p);
    EXPECT_NEAR(rho.expectation(PauliString::fromLabel("X")),
                1.0 - 4.0 * p / 3.0, 1e-12);
    EXPECT_NEAR(rho.trace(), 1.0, 1e-12);
}

TEST(DensityMatrix, FullDepolarizingGivesMaximallyMixed)
{
    // p = 3/4 gives lambda = 1: the fully mixed single-qubit state.
    DensityMatrix rho(1);
    rho.applyGate(Gate::h(0));
    rho.applyDepolarizing1(0, 0.75);
    EXPECT_NEAR(rho.element(0, 0).real(), 0.5, 1e-12);
    EXPECT_NEAR(rho.element(1, 1).real(), 0.5, 1e-12);
    EXPECT_NEAR(std::abs(rho.element(0, 1)), 0.0, 1e-12);
    EXPECT_NEAR(rho.purity(), 0.5, 1e-12);
}

TEST(DensityMatrix, TwoQubitDepolarizingDampsZZ)
{
    // Bell state <ZZ> = 1; after 2q depolarizing <ZZ> = 1 - 16p/15.
    DensityMatrix rho(2);
    rho.applyGate(Gate::h(0));
    rho.applyGate(Gate::cx(0, 1));
    const double p = 0.12;
    rho.applyDepolarizing2(0, 1, p);
    EXPECT_NEAR(rho.expectation(PauliString::fromLabel("ZZ")),
                1.0 - 16.0 * p / 15.0, 1e-12);
    EXPECT_NEAR(rho.trace(), 1.0, 1e-12);
}

TEST(DensityMatrix, TracePreservedUnderNoisyCircuit)
{
    Rng rng(2);
    const Graph g = random3RegularGraph(6, rng);
    Circuit c(6, 0);
    for (const Edge& e : g.edges())
        c.append(Gate::rzz(e.u, e.v, 0.7));
    for (int q = 0; q < 6; ++q)
        c.append(Gate::rx(q, 0.5));

    DensityMatrix rho(6);
    rho.run(c, NoiseModel::depolarizing(0.01, 0.03));
    EXPECT_NEAR(rho.trace(), 1.0, 1e-9);
    EXPECT_LT(rho.purity(), 1.0);
}

TEST(DensityMatrix, ProbabilitiesMatchStatevectorWhenIdeal)
{
    Circuit c(2, 0);
    c.append(Gate::ry(0, 0.8));
    c.append(Gate::cx(0, 1));

    Statevector sv(2);
    sv.run(c);
    DensityMatrix rho(2);
    rho.run(c, NoiseModel::idealModel());

    const auto p_sv = sv.probabilities();
    const auto p_dm = rho.probabilities();
    for (std::size_t i = 0; i < 4; ++i)
        EXPECT_NEAR(p_sv[i], p_dm[i], 1e-12);
}

TEST(DensityBackend, MatchesStatevectorBackendWhenIdeal)
{
    Rng rng(7);
    const Graph g = random3RegularGraph(4, rng);
    const Circuit c = [&] {
        Circuit qc(4, 2);
        for (int q = 0; q < 4; ++q)
            qc.append(Gate::h(q));
        for (const Edge& e : g.edges())
            qc.append(Gate::rzzParam(e.u, e.v, 1, -1.0));
        for (int q = 0; q < 4; ++q)
            qc.append(Gate::rxParam(q, 0, 2.0));
        return qc;
    }();
    const PauliSum h = maxcutHamiltonian(g);

    StatevectorCost ideal(c, h);
    DensityCost density(c, h, NoiseModel::idealModel());
    for (double beta : {-0.3, 0.2}) {
        for (double gamma : {-0.8, 0.5}) {
            const std::vector<double> params{beta, gamma};
            EXPECT_NEAR(ideal.evaluate(params), density.evaluate(params),
                        1e-10);
        }
    }
}

TEST(TrajectoryBackend, ConvergesToDensityMatrix)
{
    // Trajectory averaging must converge to the exact channel.
    Rng rng(11);
    const Graph g = random3RegularGraph(4, rng);
    Circuit c(4, 0);
    for (int q = 0; q < 4; ++q)
        c.append(Gate::h(q));
    for (const Edge& e : g.edges())
        c.append(Gate::rzz(e.u, e.v, -0.9));
    for (int q = 0; q < 4; ++q)
        c.append(Gate::rx(q, 0.6));
    const PauliSum h = maxcutHamiltonian(g);
    const NoiseModel noise = NoiseModel::depolarizing(0.02, 0.05);

    DensityCost exact(c, h, noise);
    TrajectoryCost mc(c, h, noise, 4000, 123);
    const std::vector<double> no_params{};
    const double e_exact = exact.evaluate(no_params);
    const double e_mc = mc.evaluate(no_params);
    // 4000 trajectories: statistical error well under 0.05 for this
    // bounded observable.
    EXPECT_NEAR(e_mc, e_exact, 0.05);
}

TEST(TrajectoryBackend, IdealReducesToStatevector)
{
    Circuit c(2, 0);
    c.append(Gate::h(0));
    c.append(Gate::cx(0, 1));
    PauliSum h(2);
    h.add(1.0, "ZZ");
    TrajectoryCost mc(c, h, NoiseModel::idealModel(), 3, 1);
    EXPECT_NEAR(mc.evaluate({}), 1.0, 1e-12);
}

TEST(DensityBackend, ReadoutErrorShiftsExpectation)
{
    // |0> measured with e01: <Z> = 1 - 2 e01.
    Circuit c(1, 0);
    c.append(Gate::rz(0, 0.0)); // no-op gate to have a circuit
    PauliSum h(1);
    h.add(1.0, "Z");
    NoiseModel noise;
    noise.readout01 = 0.1;
    DensityCost cost(c, h, noise);
    EXPECT_NEAR(cost.evaluate({}), 1.0 - 2.0 * 0.1, 1e-9);
}

} // namespace
} // namespace oscar
