/**
 * @file
 * Tests for noise mitigation: circuit folding, ZNE extrapolation, and
 * readout error handling.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "src/ansatz/qaoa.h"
#include "src/backend/density_backend.h"
#include "src/common/rng.h"
#include "src/graph/generators.h"
#include "src/hamiltonian/maxcut.h"
#include "src/mitigation/folding.h"
#include "src/mitigation/readout.h"
#include "src/mitigation/zne.h"
#include "src/quantum/statevector.h"

namespace oscar {
namespace {

Circuit
smallCircuit()
{
    Circuit c(3, 1);
    c.append(Gate::h(0));
    c.append(Gate::cx(0, 1));
    c.append(Gate::rzzParam(1, 2, 0, -1.0));
    c.append(Gate::ry(2, 0.7));
    c.append(Gate::s(0));
    return c;
}

TEST(Folding, ScaleOneIsIdentityTransformation)
{
    const Circuit c = smallCircuit();
    const Circuit folded = foldGlobal(c, 1.0);
    EXPECT_EQ(folded.numGates(), c.numGates());
}

TEST(Folding, OddScalesMultiplyGateCount)
{
    const Circuit c = smallCircuit();
    EXPECT_EQ(foldGlobal(c, 3.0).numGates(), 3 * c.numGates());
    EXPECT_EQ(foldGlobal(c, 5.0).numGates(), 5 * c.numGates());
}

TEST(Folding, PartialScaleBetweenOddValues)
{
    const Circuit c = smallCircuit(); // 5 gates
    const Circuit folded = foldGlobal(c, 2.0);
    // scale 2.0: suffix = round(0.5 * 5) = 2 or 3 gates folded once.
    EXPECT_GT(folded.numGates(), c.numGates());
    EXPECT_LT(folded.numGates(), 3 * c.numGates());
    EXPECT_NEAR(realizedFoldScale(5, 2.0),
                static_cast<double>(folded.numGates()) / 5.0, 1e-12);
}

TEST(Folding, PreservesUnitarySemantics)
{
    // The folded circuit must implement the same unitary.
    const Circuit c = smallCircuit();
    const std::vector<double> params{0.9};
    for (double scale : {1.0, 1.6, 3.0, 4.2, 5.0}) {
        Statevector a(3), b(3);
        a.run(c, params);
        b.run(foldGlobal(c, scale), params);
        EXPECT_NEAR(std::abs(a.innerProduct(b)), 1.0, 1e-10)
            << "scale=" << scale;
    }
}

TEST(Folding, IncreasesNoiseMonotonically)
{
    Rng rng(4);
    const Graph g = random3RegularGraph(6, rng);
    const Circuit c = qaoaCircuit(g, 1);
    const PauliSum h = maxcutHamiltonian(g);
    const NoiseModel noise = NoiseModel::depolarizing(0.004, 0.012);

    const std::vector<double> params{0.3, -0.5};
    double ideal;
    {
        DensityCost cost(c, h, NoiseModel::idealModel());
        ideal = cost.evaluate(params);
    }
    double prev_gap = 0.0;
    for (double scale : {1.0, 2.0, 3.0}) {
        DensityCost cost(foldGlobal(c, scale), h, noise);
        const double gap = std::abs(cost.evaluate(params) - ideal);
        EXPECT_GT(gap, prev_gap) << "scale=" << scale;
        prev_gap = gap;
    }
}

TEST(ZneExtrapolation, LinearRecoversLine)
{
    // values = 3 - 2 * scale: intercept 3.
    EXPECT_NEAR(zneExtrapolate({1, 3}, {1.0, -3.0},
                               ZneExtrapolation::Linear),
                3.0, 1e-12);
}

TEST(ZneExtrapolation, RichardsonRecoversQuadratic)
{
    // f(s) = 1 + s + s^2 at s = 1, 2, 3 -> f(0) = 1 exactly.
    const std::vector<double> scales{1, 2, 3};
    std::vector<double> values;
    for (double s : scales)
        values.push_back(1.0 + s + s * s);
    EXPECT_NEAR(zneExtrapolate(scales, values,
                               ZneExtrapolation::Richardson),
                1.0, 1e-10);
}

TEST(ZneExtrapolation, QuadraticLeastSquares)
{
    const std::vector<double> scales{1, 2, 3, 4};
    std::vector<double> values;
    for (double s : scales)
        values.push_back(2.0 - 0.5 * s + 0.1 * s * s);
    EXPECT_NEAR(zneExtrapolate(scales, values,
                               ZneExtrapolation::Quadratic),
                2.0, 1e-9);
}

TEST(ZneCost, RecoversIdealValueUnderDepolarizing)
{
    // With exact (shot-free) readings, ZNE should land much closer to
    // the ideal expectation than the unmitigated noisy value.
    Rng rng(5);
    const Graph g = random3RegularGraph(6, rng);
    const Circuit c = qaoaCircuit(g, 1);
    const PauliSum h = maxcutHamiltonian(g);
    const NoiseModel noise = NoiseModel::depolarizing(0.003, 0.01);

    const std::vector<double> params{0.25, -0.55};
    DensityCost ideal_cost(c, h, NoiseModel::idealModel());
    DensityCost noisy_cost(c, h, noise);
    const double ideal = ideal_cost.evaluate(params);
    const double noisy = noisy_cost.evaluate(params);

    const auto zne = makeZneDensityCost(c, h, noise, {1.0, 2.0, 3.0},
                                        ZneExtrapolation::Richardson);
    const double mitigated = zne->evaluate(params);
    EXPECT_LT(std::abs(mitigated - ideal), std::abs(noisy - ideal));
    EXPECT_NEAR(mitigated, ideal, 0.05 * std::abs(ideal));
}

TEST(ZneCost, RichardsonAmplifiesShotNoiseMoreThanLinear)
{
    // The paper's Fig. 9 observation: Richardson's interpolation
    // weights amplify statistical noise relative to linear fitting.
    Rng rng(6);
    const Graph g = random3RegularGraph(12, rng);
    const NoiseModel noise = NoiseModel::depolarizing(0.001, 0.02);

    const std::vector<double> params{0.3, 0.4};
    const std::size_t shots = 1024;

    auto spread_of = [&](ZneExtrapolation model,
                         const std::vector<double>& scales) {
        std::vector<double> readings;
        for (int rep = 0; rep < 40; ++rep) {
            const auto zne = makeZneAnalyticCost(
                g, noise, scales, model, shots, 1.0,
                1000 + 17 * rep);
            readings.push_back(zne->evaluate(params));
        }
        double mean = 0.0;
        for (double r : readings)
            mean += r;
        mean /= readings.size();
        double var = 0.0;
        for (double r : readings)
            var += (r - mean) * (r - mean);
        return var / readings.size();
    };

    const double var_richardson =
        spread_of(ZneExtrapolation::Richardson, {1.0, 2.0, 3.0});
    const double var_linear =
        spread_of(ZneExtrapolation::Linear, {1.0, 3.0});
    EXPECT_GT(var_richardson, var_linear);
}

TEST(ZneCost, RejectsBadConfigurations)
{
    Rng rng(7);
    const Graph g = random3RegularGraph(4, rng);
    EXPECT_THROW(makeZneAnalyticCost(g, NoiseModel::idealModel(), {1.0},
                                     ZneExtrapolation::Linear),
                 std::invalid_argument);
    EXPECT_THROW(makeZneAnalyticCost(g, NoiseModel::idealModel(),
                                     {1.0, 1.0},
                                     ZneExtrapolation::Linear),
                 std::invalid_argument);
    EXPECT_THROW(makeZneAnalyticCost(g, NoiseModel::idealModel(),
                                     {0.5, 2.0},
                                     ZneExtrapolation::Linear),
                 std::invalid_argument);
}

TEST(Readout, DistributionTransformConservesProbability)
{
    std::vector<double> p{0.5, 0.2, 0.2, 0.1};
    const auto q = applyReadoutToDistribution(p, 2, 0.05, 0.1);
    double total = 0.0;
    for (double x : q)
        total += x;
    EXPECT_NEAR(total, 1.0, 1e-12);
}

TEST(Readout, SingleQubitFlipProbability)
{
    // Pure |0>: P(read 1) = e01.
    const auto q = applyReadoutToDistribution({1.0, 0.0}, 1, 0.07, 0.2);
    EXPECT_NEAR(q[0], 0.93, 1e-12);
    EXPECT_NEAR(q[1], 0.07, 1e-12);
}

TEST(Readout, InversionUndoesConfusion)
{
    std::vector<double> p{0.4, 0.3, 0.2, 0.1};
    const auto noisy = applyReadoutToDistribution(p, 2, 0.08, 0.12);
    const auto recovered = invertReadout(noisy, 2, 0.08, 0.12);
    for (std::size_t i = 0; i < 4; ++i)
        EXPECT_NEAR(recovered[i], p[i], 1e-10);
}

TEST(Readout, DiagonalTransformMatchesDistributionTransform)
{
    // E_noisy computed from the smeared observable must equal the one
    // computed from the smeared distribution.
    const std::vector<double> table{1.0, -1.0, -1.0, 1.0}; // ZZ
    const std::vector<double> p{0.6, 0.1, 0.1, 0.2};

    const auto smeared_table = applyReadoutToDiagonal(table, 2, 0.05, 0.1);
    const auto smeared_p = applyReadoutToDistribution(p, 2, 0.05, 0.1);

    double e_table = 0.0, e_dist = 0.0;
    for (std::size_t z = 0; z < 4; ++z) {
        e_table += p[z] * smeared_table[z];
        e_dist += smeared_p[z] * table[z];
    }
    EXPECT_NEAR(e_table, e_dist, 1e-12);
}

TEST(Readout, InvertThrowsOnDegenerateConfusion)
{
    EXPECT_THROW(invertReadout({0.5, 0.5}, 1, 0.5, 0.5),
                 std::invalid_argument);
}

} // namespace
} // namespace oscar
