/**
 * @file
 * The oscar-worker executable: child half of the distributed
 * execution subsystem (src/dist). Spawned by ProcessPool over a
 * socketpair; see src/dist/worker.h for the protocol.
 */

#include "src/dist/worker.h"

int
main(int argc, char** argv)
{
    return oscar::dist::workerEntry(argc, argv);
}
