/**
 * @file
 * The oscar-trace executable: fleet-wide Chrome trace capture and
 * validation for the observability subsystem (src/obs/).
 *
 *   oscar-trace --out FILE [--qubits N] [--depth 1|2] [--points P]
 *               [--workers W] [--threads T]
 *       Run one traced QAOA MaxCut batch on a loopback-TCP worker
 *       fleet (hybrid: W worker processes x T evaluation threads,
 *       default 2x2) and export the merged coordinator + worker spans
 *       as chrome://tracing JSON to FILE.
 *
 *   oscar-trace --check FILE [--min-pids N]
 *       Validate a trace written by --out: well-formed traceEvents
 *       JSON, every begin has a matching end per (pid, tid), and
 *       spans were recorded by at least N distinct processes
 *       (default 2 -- the coordinator plus one worker). Exit 0 on a
 *       valid trace, 1 with a diagnostic otherwise. CI uses this pair
 *       to prove worker telemetry actually crosses the wire.
 *
 * The fleet secret travels in-process via DistOptions (and from the
 * coordinator to its spawned workers through the environment) -- it
 * never appears on a command line.
 */

#include <unistd.h>

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <exception>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "src/ansatz/qaoa.h"
#include "src/backend/statevector_backend.h"
#include "src/common/rng.h"
#include "src/dist/process_pool.h"
#include "src/graph/generators.h"
#include "src/hamiltonian/maxcut.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"
#include "tools/serve_common.h"

namespace {

using namespace oscar;

int
usage()
{
    std::fprintf(
        stderr,
        "usage: oscar-trace --out FILE [--qubits N] [--depth 1|2]\n"
        "                   [--points P] [--workers W] [--threads T]\n"
        "       oscar-trace --check FILE [--min-pids N]\n");
    return 64;
}

// ------------------------------------------------------------- capture

int
runTraced(const std::string& out_path, int qubits, int depth,
          std::size_t num_points, int workers, int threads)
{
    // Tracing and metrics on for this process AND the workers the
    // pool forks (they inherit the environment). The tool's whole
    // purpose is tracing, so it overrides an inherited "0".
    ::setenv("OSCAR_TRACE", "1", 1);
    ::setenv("OSCAR_METRICS", "1", 1);
    obs::applyEnv();

    Rng graph_rng(3);
    const Graph graph = random3RegularGraph(qubits, graph_rng);
    StatevectorCost cost(qaoaCircuit(graph, depth),
                         maxcutHamiltonian(graph));

    Rng point_rng(17);
    std::vector<std::vector<double>> points;
    points.reserve(num_points);
    for (std::size_t i = 0; i < num_points; ++i) {
        std::vector<double> p(
            static_cast<std::size_t>(cost.numParams()));
        for (double& v : p)
            v = point_rng.uniform(0.0, 6.28);
        points.push_back(std::move(p));
    }

    dist::DistOptions options;
    options.numWorkers = workers;
    options.threadsPerWorker = threads;
    options.listen = "127.0.0.1:0"; // loopback TCP: the fleet path
    options.secret = "oscar-trace-capture"; // in-process, never argv
    dist::ProcessPool pool(options);
    if (!pool.healthy()) {
        std::fprintf(stderr, "oscar-trace: worker fleet failed to start\n");
        return 1;
    }

    BatchHandle handle = pool.submit(cost, std::move(points));
    const std::vector<double> values = handle.get();
    const BatchStats stats = handle.stats();
    std::fprintf(stderr,
                 "oscar-trace: %zu points on %d workers x %d threads "
                 "(%zu remote, %zu joined)\n",
                 values.size(), workers, threads, stats.pointsRemote,
                 stats.workersJoined);

    const std::vector<obs::SpanRecord> spans =
        obs::Tracer::global().collectAll();
    std::map<std::int32_t, std::string> names;
    names[static_cast<std::int32_t>(::getpid())] = "coordinator";
    const std::string json = obs::exportChromeTrace(spans, names);

    std::ofstream out(out_path, std::ios::binary | std::ios::trunc);
    if (!out || !(out << json) || !out.flush()) {
        std::fprintf(stderr, "oscar-trace: cannot write %s\n",
                     out_path.c_str());
        return 1;
    }
    std::set<std::int32_t> pids;
    for (const obs::SpanRecord& span : spans)
        pids.insert(span.pid);
    std::printf("oscar-trace: wrote %zu spans from %zu processes to %s\n",
                spans.size(), pids.size(), out_path.c_str());
    return 0;
}

// --------------------------------------------------------------- check

/** One event scraped out of the traceEvents array. */
struct Event
{
    std::string ph;
    long long pid = 0;
    long long tid = 0;
};

/** Extract `"key": <integer>` out of one event object. */
bool
fieldInt(const std::string& obj, const char* key, long long* out)
{
    const std::string needle = std::string("\"") + key + "\":";
    const std::size_t at = obj.find(needle);
    if (at == std::string::npos)
        return false;
    *out = std::strtoll(obj.c_str() + at + needle.size(), nullptr, 10);
    return true;
}

/** Extract `"key": "<string>"` out of one event object. */
bool
fieldStr(const std::string& obj, const char* key, std::string* out)
{
    const std::string needle = std::string("\"") + key + "\": \"";
    const std::size_t at = obj.find(needle);
    if (at == std::string::npos)
        return false;
    const std::size_t from = at + needle.size();
    const std::size_t end = obj.find('"', from);
    if (end == std::string::npos)
        return false;
    *out = obj.substr(from, end - from);
    return true;
}

int
checkTrace(const std::string& path, long long min_pids)
{
    std::ifstream in(path, std::ios::binary);
    if (!in) {
        std::fprintf(stderr, "oscar-trace: cannot read %s\n",
                     path.c_str());
        return 1;
    }
    std::ostringstream buf;
    buf << in.rdbuf();
    const std::string text = buf.str();
    if (text.find("\"traceEvents\"") == std::string::npos) {
        std::fprintf(stderr, "oscar-trace: %s: no traceEvents array\n",
                     path.c_str());
        return 1;
    }

    // Walk brace depth: the file is {"traceEvents": [ {event}, ... ]}
    // so every depth-2 object is one event. Events only nest braces
    // for their "args" object, which the depth counter absorbs.
    std::vector<Event> events;
    int depth = 0;
    std::size_t start = 0;
    bool in_string = false;
    for (std::size_t i = 0; i < text.size(); ++i) {
        const char c = text[i];
        if (in_string) {
            if (c == '\\')
                ++i;
            else if (c == '"')
                in_string = false;
            continue;
        }
        if (c == '"') {
            in_string = true;
        } else if (c == '{') {
            if (++depth == 2)
                start = i;
        } else if (c == '}') {
            if (depth == 2) {
                const std::string obj =
                    text.substr(start, i - start + 1);
                Event ev;
                if (!fieldStr(obj, "ph", &ev.ph) ||
                    !fieldInt(obj, "pid", &ev.pid) ||
                    !fieldInt(obj, "tid", &ev.tid)) {
                    std::fprintf(stderr,
                                 "oscar-trace: %s: event missing "
                                 "ph/pid/tid: %s\n",
                                 path.c_str(), obj.c_str());
                    return 1;
                }
                events.push_back(std::move(ev));
            }
            if (--depth < 0) {
                std::fprintf(stderr,
                             "oscar-trace: %s: unbalanced braces\n",
                             path.c_str());
                return 1;
            }
        }
    }
    if (depth != 0 || in_string) {
        std::fprintf(stderr, "oscar-trace: %s: truncated JSON\n",
                     path.c_str());
        return 1;
    }

    // Per (pid, tid): every B eventually matched by an E. Events for
    // one span are emitted as an adjacent B/E pair, but spans from
    // different tids interleave freely, so balance is per-lane.
    std::map<std::pair<long long, long long>, long long> open;
    std::set<long long> span_pids;
    long long begins = 0;
    for (const Event& ev : events) {
        const auto lane = std::make_pair(ev.pid, ev.tid);
        if (ev.ph == "B") {
            ++open[lane];
            ++begins;
            span_pids.insert(ev.pid);
        } else if (ev.ph == "E") {
            if (--open[lane] < 0) {
                std::fprintf(stderr,
                             "oscar-trace: %s: E without B on "
                             "pid %lld tid %lld\n",
                             path.c_str(), ev.pid, ev.tid);
                return 1;
            }
        } else if (ev.ph != "M") {
            std::fprintf(stderr, "oscar-trace: %s: unexpected ph "
                         "\"%s\"\n", path.c_str(), ev.ph.c_str());
            return 1;
        }
    }
    for (const auto& [lane, count] : open) {
        if (count != 0) {
            std::fprintf(stderr,
                         "oscar-trace: %s: %lld unclosed span(s) on "
                         "pid %lld tid %lld\n",
                         path.c_str(), count, lane.first, lane.second);
            return 1;
        }
    }
    if (begins == 0) {
        std::fprintf(stderr, "oscar-trace: %s: no spans\n", path.c_str());
        return 1;
    }
    if (static_cast<long long>(span_pids.size()) < min_pids) {
        std::fprintf(stderr,
                     "oscar-trace: %s: spans from %zu process(es), "
                     "expected >= %lld\n",
                     path.c_str(), span_pids.size(), min_pids);
        return 1;
    }
    std::printf("oscar-trace: %s ok: %lld spans across %zu processes\n",
                path.c_str(), begins, span_pids.size());
    return 0;
}

} // namespace

int
main(int argc, char** argv)
{
    try {
        std::string out_path;
        std::string check_path;
        int qubits = 8;
        int depth = 1;
        std::size_t num_points = 48;
        int workers = 2;
        int threads = 2;
        long long min_pids = 2;
        for (int i = 1; i < argc; ++i) {
            const char* val = nullptr;
            if (tools::flagValue(argc, argv, i, "--out", val))
                out_path = val;
            else if (tools::flagValue(argc, argv, i, "--check", val))
                check_path = val;
            else if (tools::flagValue(argc, argv, i, "--qubits", val))
                qubits = static_cast<int>(
                    tools::parseInt("--qubits", val, 4, 24));
            else if (tools::flagValue(argc, argv, i, "--depth", val))
                depth = static_cast<int>(
                    tools::parseInt("--depth", val, 1, 2));
            else if (tools::flagValue(argc, argv, i, "--points", val))
                num_points = static_cast<std::size_t>(
                    tools::parseInt("--points", val, 16, 1 << 20));
            else if (tools::flagValue(argc, argv, i, "--workers", val))
                workers = static_cast<int>(
                    tools::parseInt("--workers", val, 1, 64));
            else if (tools::flagValue(argc, argv, i, "--threads", val))
                threads = static_cast<int>(
                    tools::parseInt("--threads", val, 1, 64));
            else if (tools::flagValue(argc, argv, i, "--min-pids", val))
                min_pids = tools::parseInt("--min-pids", val, 1, 4096);
            else
                return usage();
        }
        if (out_path.empty() == check_path.empty())
            return usage(); // exactly one mode
        if (!out_path.empty())
            return runTraced(out_path, qubits, depth, num_points,
                             workers, threads);
        return checkTrace(check_path, min_pids);
    } catch (const std::exception& e) {
        std::fprintf(stderr, "oscar-trace: %s\n", e.what());
        return 1;
    }
}
