/**
 * @file
 * The oscar-serve executable: always-on landscape serving daemon.
 *
 *   oscar-serve [--socket PATH] [--store DIR] [--budget-mb N]
 *               [--threads T] [--job-threads J] [--workers W]
 *
 * Listens on a Unix socket (default /tmp/oscar-serve.sock, or
 * OSCAR_SERVE_SOCKET), answers reconstruction requests from the
 * persistent landscape store when possible, dedupes identical
 * in-flight requests onto one pool evaluation, and computes the rest
 * on its execution pool. SIGTERM/SIGINT drain gracefully: admitted
 * requests are answered before exit. See src/serve/server.h.
 */

#include <signal.h>

#include <cstdio>
#include <exception>
#include <string>

#include "src/obs/trace.h"
#include "src/serve/server.h"
#include "tools/serve_common.h"

namespace {

oscar::serve::ServeServer* g_server = nullptr;

extern "C" void
handleSignal(int)
{
    if (g_server)
        g_server->stop(); // async-signal-safe by contract
}

} // namespace

int
main(int argc, char** argv)
{
    using namespace oscar;
    try {
        serve::ServeOptions options;
        std::string socket_arg;
        std::string store_arg;
        long long budget_mb = -1;
        for (int i = 1; i < argc; ++i) {
            const char* val = nullptr;
            if (tools::flagValue(argc, argv, i, "--socket", val))
                socket_arg = val;
            else if (tools::flagValue(argc, argv, i, "--store", val))
                store_arg = val;
            else if (tools::flagValue(argc, argv, i, "--budget-mb", val))
                budget_mb = tools::parseInt("--budget-mb", val, 1, 1048576);
            else if (tools::flagValue(argc, argv, i, "--threads", val))
                options.oscar.numThreads = static_cast<int>(
                    tools::parseInt("--threads", val, 0, 256));
            else if (tools::flagValue(argc, argv, i, "--job-threads", val))
                options.jobThreads = static_cast<int>(
                    tools::parseInt("--job-threads", val, 1, 64));
            else if (tools::flagValue(argc, argv, i, "--workers", val))
                options.oscar.distributed.numWorkers = static_cast<int>(
                    tools::parseInt("--workers", val, -1, 256));
            else {
                std::fprintf(stderr,
                             "usage: oscar-serve [--socket PATH] "
                             "[--store DIR] [--budget-mb N] "
                             "[--threads T] [--job-threads J] "
                             "[--workers W]\n");
                return 64;
            }
        }
        options.socketPath = serve::resolveSocketPath(socket_arg);
        options.storeDir = store::resolveStoreDir(store_arg);
        options.storeBudgetBytes = store::resolveStoreBudgetBytes(budget_mb);

        // A serving daemon keeps its metrics on by default (the
        // exposition endpoint is the point); OSCAR_METRICS=0 still
        // pins them off, and OSCAR_TRACE opts tracing in.
        obs::setMetrics(true);
        obs::applyEnv();

        serve::ServeServer server(options);
        g_server = &server;
        struct sigaction sa = {};
        sa.sa_handler = handleSignal;
        ::sigaction(SIGTERM, &sa, nullptr);
        ::sigaction(SIGINT, &sa, nullptr);
        // The daemon writes frames to clients that may vanish; EPIPE
        // is handled per send (MSG_NOSIGNAL), never as a signal.
        ::signal(SIGPIPE, SIG_IGN);

        std::printf("oscar-serve: listening on %s%s%s\n",
                    server.socketPath().c_str(),
                    options.storeDir.empty() ? " (store disabled)"
                                             : ", store ",
                    options.storeDir.c_str());
        std::fflush(stdout);
        server.run();

        const serve::ServeCounters c = server.counters();
        std::printf("oscar-serve: drained; requests=%llu responses=%llu "
                    "evaluations=%llu storeHits=%llu dedupWaiters=%llu "
                    "errors=%llu\n",
                    static_cast<unsigned long long>(c.requests),
                    static_cast<unsigned long long>(c.responses),
                    static_cast<unsigned long long>(c.evaluations),
                    static_cast<unsigned long long>(c.storeHits),
                    static_cast<unsigned long long>(c.dedupWaiters),
                    static_cast<unsigned long long>(c.errors));
        g_server = nullptr;
        return 0;
    } catch (const std::exception& e) {
        std::fprintf(stderr, "oscar-serve: %s\n", e.what());
        return 1;
    }
}
