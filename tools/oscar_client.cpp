/**
 * @file
 * The oscar-client executable: command-line client for oscar-serve.
 *
 *   oscar-client submit [workload flags] [--progress]   reconstruct
 *                                                       (store, dedupe,
 *                                                       or compute)
 *   oscar-client fetch  [workload flags]                store only;
 *                                                       miss never
 *                                                       computes
 *   oscar-client query  [workload flags]                hit/miss probe
 *   oscar-client stats                                  daemon counters
 *   oscar-client metrics                                live Prometheus
 *                                                       exposition
 *
 * Workload flags (shared with the daemon-side determinism contract):
 *   --qubits N (default 8)   --depth 1|2 (default 1)
 *   --graph-seed S (default 3)
 *   --fraction F (default 0.1)   --seed S (default 42)
 * Common: --socket PATH (default OSCAR_SERVE_SOCKET or
 * /tmp/oscar-serve.sock).
 */

#include <cstdio>
#include <cstring>
#include <exception>
#include <string>

#include "src/serve/client.h"
#include "tools/serve_common.h"

namespace {

using namespace oscar;

int
usage()
{
    std::fprintf(stderr,
                 "usage: oscar-client submit|fetch|query|stats|metrics\n"
                 "  [--socket PATH] [--qubits N] [--depth 1|2]\n"
                 "  [--graph-seed S] [--fraction F] [--seed S] "
                 "[--progress]\n");
    return 64;
}

void
printLandscape(const serve::ResponseMsg& response)
{
    const store::StoredLandscape& entry = response.landscape;
    std::size_t argmin = 0;
    for (std::size_t i = 1; i < entry.reconstructed.size(); ++i) {
        if (entry.reconstructed[i] < entry.reconstructed[argmin])
            argmin = i;
    }
    std::printf("served from: %s\n",
                response.servedFrom == serve::ServedFrom::Store
                    ? "store"
                    : "computed");
    std::printf("grid points: %zu, samples: %zu (fraction %.4f, "
                "seed %llu)\n",
                entry.reconstructed.size(), entry.sampleValues.size(),
                entry.samplingFraction,
                static_cast<unsigned long long>(entry.sampleSeed));
    std::printf("queries used: %llu, query speedup: %.2fx\n",
                static_cast<unsigned long long>(entry.queriesUsed),
                entry.querySpeedup);
    const std::vector<double> params = entry.grid.pointAt(argmin);
    std::printf("minimum %.12g at index %zu (",
                entry.reconstructed[argmin], argmin);
    for (std::size_t d = 0; d < params.size(); ++d)
        std::printf("%s%.6g", d ? ", " : "", params[d]);
    std::printf(")\n");
}

} // namespace

int
main(int argc, char** argv)
{
    if (argc < 2)
        return usage();
    const std::string command = argv[1];
    try {
        tools::ServeWorkload workload;
        std::string socket_arg;
        double fraction = 0.1;
        std::uint64_t seed = 42;
        bool progress = false;
        for (int i = 2; i < argc; ++i) {
            const char* val = nullptr;
            if (tools::flagValue(argc, argv, i, "--socket", val))
                socket_arg = val;
            else if (tools::flagValue(argc, argv, i, "--qubits", val))
                workload.qubits = static_cast<int>(
                    tools::parseInt("--qubits", val, 4, 24));
            else if (tools::flagValue(argc, argv, i, "--depth", val))
                workload.depth = static_cast<int>(
                    tools::parseInt("--depth", val, 1, 2));
            else if (tools::flagValue(argc, argv, i, "--graph-seed", val))
                workload.graphSeed = static_cast<std::uint64_t>(
                    tools::parseInt("--graph-seed", val, 0, 1LL << 62));
            else if (tools::flagValue(argc, argv, i, "--fraction", val))
                fraction = tools::parseFraction("--fraction", val);
            else if (tools::flagValue(argc, argv, i, "--seed", val))
                seed = static_cast<std::uint64_t>(
                    tools::parseInt("--seed", val, 0, 1LL << 62));
            else if (std::strcmp(argv[i], "--progress") == 0)
                progress = true;
            else
                return usage();
        }
        serve::ServeClient client(
            serve::resolveSocketPath(socket_arg));

        if (command == "metrics") {
            std::fputs(client.metrics().c_str(), stdout);
            return 0;
        }

        if (command == "stats") {
            serve::RequestMsg msg;
            msg.kind = serve::RequestKind::Stats;
            const serve::ResponseMsg response = client.call(msg);
            const serve::ServeCounters& c = response.counters;
            std::printf("requests:      %llu\n"
                        "responses:     %llu\n"
                        "evaluations:   %llu\n"
                        "store hits:    %llu\n"
                        "dedup waiters: %llu\n"
                        "errors:        %llu\n"
                        "store: hits=%llu misses=%llu corrupt=%llu "
                        "puts=%llu removed=%llu\n",
                        static_cast<unsigned long long>(c.requests),
                        static_cast<unsigned long long>(c.responses),
                        static_cast<unsigned long long>(c.evaluations),
                        static_cast<unsigned long long>(c.storeHits),
                        static_cast<unsigned long long>(c.dedupWaiters),
                        static_cast<unsigned long long>(c.errors),
                        static_cast<unsigned long long>(c.store.hits),
                        static_cast<unsigned long long>(c.store.misses),
                        static_cast<unsigned long long>(
                            c.store.corruptMisses),
                        static_cast<unsigned long long>(c.store.puts),
                        static_cast<unsigned long long>(
                            c.store.containersRemoved));
            return 0;
        }

        if (command != "submit" && command != "fetch" && command != "query")
            return usage();

        serve::RequestMsg msg;
        msg.kind = command == "submit" ? serve::RequestKind::Reconstruct
                                       : serve::RequestKind::Fetch;
        workload.apply(msg);
        msg.samplingFraction = fraction;
        msg.sampleSeed = seed;
        msg.wantProgress = progress && command == "submit";

        const serve::ResponseMsg response = client.call(
            msg, [](const serve::ProgressMsg& p) {
                std::fprintf(stderr, "\rsampling: %llu/%llu",
                             static_cast<unsigned long long>(p.completed),
                             static_cast<unsigned long long>(p.total));
                if (p.completed == p.total)
                    std::fprintf(stderr, "\n");
            });

        switch (response.status) {
          case serve::ResponseStatus::Ok:
            if (command == "query") {
                std::printf("hit\n");
            } else {
                printLandscape(response);
            }
            return 0;
          case serve::ResponseStatus::Miss:
            std::printf("miss\n");
            return command == "query" ? 0 : 3;
          case serve::ResponseStatus::Error:
            std::fprintf(stderr, "oscar-client: daemon error: %s\n",
                         response.error.c_str());
            return 1;
          default:
            std::fprintf(stderr, "oscar-client: unexpected response\n");
            return 1;
        }
    } catch (const std::exception& e) {
        std::fprintf(stderr, "oscar-client: %s\n", e.what());
        return 1;
    }
}
