/**
 * @file
 * Shared bits of the oscar-serve / oscar-client command-line tools:
 * the standard QAOA MaxCut workload both sides agree on (so a client
 * request names exactly the computation the daemon would run) and
 * tiny flag-parsing helpers.
 */

#ifndef OSCAR_TOOLS_SERVE_COMMON_H
#define OSCAR_TOOLS_SERVE_COMMON_H

#include <cstdlib>
#include <cstring>
#include <stdexcept>
#include <string>

#include "src/ansatz/qaoa.h"
#include "src/common/rng.h"
#include "src/graph/generators.h"
#include "src/hamiltonian/maxcut.h"
#include "src/landscape/grid.h"
#include "src/serve/protocol.h"

namespace oscar {
namespace tools {

/** The CLI workload: p-layer QAOA MaxCut on a random 3-regular graph. */
struct ServeWorkload
{
    int qubits = 8;
    int depth = 1;
    std::uint64_t graphSeed = 3;

    /** Fill a request's cost + grid from the workload parameters. */
    void
    apply(serve::RequestMsg& msg) const
    {
        if (qubits < 4 || qubits > 24)
            throw std::runtime_error("--qubits: expected 4..24");
        if (depth != 1 && depth != 2)
            throw std::runtime_error("--depth: expected 1 or 2");
        Rng rng(graphSeed);
        const Graph graph = random3RegularGraph(qubits, rng);
        msg.cost.circuit = qaoaCircuit(graph, depth);
        msg.cost.hamiltonian = maxcutHamiltonian(graph);
        msg.grid = depth == 1 ? GridSpec::qaoaP1() : GridSpec::qaoaP2();
    }
};

/** True when argv[i] is `flag` and a value follows; val = argv[++i]. */
inline bool
flagValue(int argc, char** argv, int& i, const char* flag,
          const char*& val)
{
    if (std::strcmp(argv[i], flag) != 0)
        return false;
    if (i + 1 >= argc)
        throw std::runtime_error(std::string(flag) + ": missing value");
    val = argv[++i];
    return true;
}

inline long long
parseInt(const char* flag, const char* text, long long lo, long long hi)
{
    char* end = nullptr;
    const long long v = std::strtoll(text, &end, 10);
    if (end == text || *end != '\0' || v < lo || v > hi)
        throw std::runtime_error(std::string(flag) + ": expected an "
                                 "integer in " + std::to_string(lo) +
                                 ".." + std::to_string(hi) + ", got \"" +
                                 text + "\"");
    return v;
}

inline double
parseFraction(const char* flag, const char* text)
{
    char* end = nullptr;
    const double v = std::strtod(text, &end);
    if (end == text || *end != '\0' || !(v > 0.0) || v > 1.0)
        throw std::runtime_error(std::string(flag) + ": expected a "
                                 "fraction in (0, 1], got \"" +
                                 text + "\"");
    return v;
}

} // namespace tools
} // namespace oscar

#endif // OSCAR_TOOLS_SERVE_COMMON_H
