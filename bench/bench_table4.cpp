/**
 * @file
 * Table 4 reproduction: fraction of DCT coefficients needed to retain
 * 99% of landscape signal energy -- the sparsity evidence behind
 * compressed sensing.
 *
 * Each entry is the mean over random dense 2-D slices (two varying
 * parameters, 50 x 50 grid) of the corresponding problem/ansatz
 * landscape. Expected shape: all fractions are far below 1% --
 * i.e. a handful of coefficients out of 2,500 -- with Two-local the
 * sparsest family, matching the paper's orders of magnitude.
 */

#include <cstdio>
#include <numbers>

#include "bench_common.h"
#include "src/ansatz/qaoa.h"
#include "src/ansatz/two_local.h"
#include "src/ansatz/uccsd.h"
#include "src/backend/statevector_backend.h"
#include "src/hamiltonian/maxcut.h"
#include "src/hamiltonian/molecules.h"
#include "src/hamiltonian/sk_model.h"
#include "src/landscape/sparsity.h"

namespace {

using namespace oscar;

double
meanSparsityFraction(const Circuit& circuit, const PauliSum& ham,
                     double lo, double hi, int repeats,
                     std::uint64_t seed)
{
    StatevectorCost cost(circuit, ham);
    const int dim = circuit.numParams();
    Rng rng(seed);
    std::vector<double> fractions;
    for (int rep = 0; rep < repeats; ++rep) {
        std::vector<double> base(dim);
        for (auto& p : base)
            p = rng.uniform(lo, hi);
        int va = 0, vb = 1;
        if (dim > 2) {
            va = static_cast<int>(rng.uniformInt(dim));
            vb = static_cast<int>(rng.uniformInt(dim - 1));
            if (vb >= va)
                ++vb;
        }
        const GridSpec grid({{lo, hi, 50}, {lo, hi, 50}});
        LambdaCost slice(2, [&](const std::vector<double>& p) {
            std::vector<double> full = base;
            full[va] = p[0];
            full[vb] = p[1];
            return cost.evaluate(full);
        });
        const Landscape truth = Landscape::gridSearch(grid, slice);
        fractions.push_back(dctSparsityFraction(truth.values(), 0.99));
    }
    return stats::mean(fractions);
}

} // namespace

int
main()
{
    std::printf("Table 4: fraction of DCT coefficients for 99%% of "
                "signal energy (mean over 8 dense 50x50 slices)\n");
    bench::columns("problem", {"QAOA", "Two-local", "UCCSD"});

    const double pi = std::numbers::pi;

    // MaxCut and SK rows (QAOA + Two-local).
    struct ProblemRow
    {
        const char* name;
        int qubits;
        int params;
        bool sk;
    };
    const ProblemRow rows[] = {
        {"3-reg MaxCut (n=4)", 4, 8, false},
        {"3-reg MaxCut (n=6)", 6, 6, false},
        {"SK Problem (n=4)", 4, 8, true},
        {"SK Problem (n=6)", 6, 6, true},
    };
    int row_id = 0;
    for (const ProblemRow& r : rows) {
        Rng graph_rng(900 + row_id);
        const Graph graph = r.sk
                                ? skInstance(r.qubits, graph_rng)
                                : randomRegularGraph(r.qubits, 3,
                                                     graph_rng);
        const PauliSum ham =
            r.sk ? skHamiltonian(graph) : maxcutHamiltonian(graph);
        const double f_qaoa = meanSparsityFraction(
            qaoaCircuit(graph, r.params / 2), ham, -pi / 2, pi / 2, 8,
            11 + row_id);
        const double f_tl = meanSparsityFraction(
            twoLocalCircuit(r.qubits, r.params / r.qubits - 1), ham,
            -pi, pi, 8, 51 + row_id);
        std::printf("%-28s %9.4f%% %9.4f%%          -\n", r.name,
                    100.0 * f_qaoa, 100.0 * f_tl);
        ++row_id;
    }

    // Molecule rows (Two-local + UCCSD).
    const PauliSum h2 = h2Hamiltonian();
    const PauliSum lih = lihHamiltonian();
    const double f_h2_tl =
        meanSparsityFraction(twoLocalCircuit(2, 1), h2, -pi, pi, 8, 91);
    const double f_h2_uccsd =
        meanSparsityFraction(uccsdCircuit(2), h2, -pi, pi, 8, 92);
    const double f_lih_tl =
        meanSparsityFraction(twoLocalCircuit(4, 1), lih, -pi, pi, 8, 93);
    const double f_lih_uccsd =
        meanSparsityFraction(uccsdCircuit(4), lih, -pi, pi, 8, 94);
    std::printf("%-28s         - %9.4f%% %9.4f%%\n", "H2 (n=2)",
                100.0 * f_h2_tl, 100.0 * f_h2_uccsd);
    std::printf("%-28s         - %9.4f%% %9.4f%%\n", "LiH (n=4)",
                100.0 * f_lih_tl, 100.0 * f_lih_uccsd);

    std::printf("\npaper reference: all entries well below 0.1%%, "
                "Two-local sparsest (1e-4%% to 7e-2%%)\n");
    return 0;
}
