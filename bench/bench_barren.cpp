/**
 * @file
 * Extension bench: barren-plateau probing with full landscapes
 * (paper Section 3.3: "with a full landscape, we could calculate the
 * variance of gradient and probe directly into barren plateaus").
 *
 * For the hardware-efficient Two-local ansatz the gradient variance at
 * random parameters decays exponentially with qubit count (McClean et
 * al. 2018). We reproduce the probe OSCAR enables: reconstruct random
 * 2-D slices of the landscape and compute VoG on the reconstruction --
 * the decay is visible without running the full grid.
 */

#include <cstdio>
#include <numbers>

#include "bench_common.h"
#include "src/ansatz/two_local.h"
#include "src/backend/statevector_backend.h"
#include "src/hamiltonian/maxcut.h"

namespace {

using namespace oscar;

} // namespace

int
main()
{
    std::printf("Barren-plateau probe: gradient variance vs qubit "
                "count (Two-local, reps=n, normalized MaxCut)\n");
    bench::columns("qubits", {"VoG(true)", "VoG(recon)", "speedup"});

    const double pi = std::numbers::pi;
    for (int n : {4, 6, 8, 10, 12}) {
        Rng rng(70 + n);
        const Graph g = random3RegularGraph(n, rng);
        // Normalize the cost by edge count so the gradient scale is
        // n-independent and the exponential decay is the ansatz's.
        PauliSum ham(n);
        {
            const PauliSum raw = maxcutHamiltonian(g);
            for (const PauliTerm& t : raw.terms())
                ham.add(t.coeff / static_cast<double>(g.numEdges()),
                        t.pauli);
        }
        // Linear-depth circuit: deep enough to form a 2-design, the
        // regime where barren plateaus set in (McClean et al.).
        const Circuit circuit = twoLocalCircuit(n, n);
        StatevectorCost cost(circuit, ham);

        // Average over random 2-D slices.
        std::vector<double> vog_true, vog_recon;
        for (int rep = 0; rep < 6; ++rep) {
            std::vector<double> base(circuit.numParams());
            for (auto& p : base)
                p = rng.uniform(-pi, pi);
            const int va = static_cast<int>(
                rng.uniformInt(circuit.numParams()));
            int vb = static_cast<int>(
                rng.uniformInt(circuit.numParams() - 1));
            if (vb >= va)
                ++vb;
            const GridSpec grid({{-pi, pi, 24}, {-pi, pi, 24}});
            LambdaCost slice(2, [&](const std::vector<double>& p) {
                auto full = base;
                full[va] = p[0];
                full[vb] = p[1];
                return cost.evaluate(full);
            });
            const Landscape truth = Landscape::gridSearch(grid, slice);
            OscarOptions options;
            options.samplingFraction = 0.25;
            options.seed = 900 + rep;
            const auto recon =
                Oscar::reconstructFromLandscape(truth, options);
            vog_true.push_back(varianceOfGradients(truth.values()));
            vog_recon.push_back(
                varianceOfGradients(recon.reconstructed.values()));
        }
        bench::row(std::to_string(n) + " qubits",
                   {stats::mean(vog_true), stats::mean(vog_recon), 4.0},
                   " %10.6f");
    }
    std::printf("\nexpected: VoG decays by orders of magnitude from 4 "
                "to 12 qubits (barren plateau), and the 25%%-sample "
                "reconstruction tracks it at 4x fewer circuits\n");
    return 0;
}
