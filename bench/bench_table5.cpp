/**
 * @file
 * Table 5 reproduction: reconstruction errors for mixtures of samples
 * from different device pairs, with and without NCM.
 *
 * Device substitutions (DESIGN.md #1): "ibm perth" and "ibm lagos" are
 * simulated QPUs with hardware-grade depolarizing plus readout-style
 * extra contraction; "noisy sim-i/ii" and "ideal sim" match the
 * paper's simulator rows. QPU-1 is the target whose landscape we want
 * to match; the mixture ratio column "20-80" means 20% of samples from
 * QPU-1 and 80% from QPU-2.
 *
 * Expected shape (per paper): +NCM beats plain OSCAR in every cell;
 * error grows as the QPU-1 share shrinks; pairing a hardware-grade
 * device with an ideal or noisy simulator works almost as well as
 * pairing it with another hardware device.
 */

#include <cstdio>
#include <memory>

#include "bench_common.h"

namespace {

using namespace oscar;

/** Named device factory over one problem graph. */
QpuDevice
makeDevice(const std::string& name, const Graph& graph)
{
    QpuDevice d;
    d.name = name;
    if (name == "ideal sim") {
        d.noise = NoiseModel::idealModel();
    } else if (name == "noisy sim-i") {
        d.noise = NoiseModel::depolarizing(0.001, 0.005);
    } else if (name == "noisy sim-ii") {
        d.noise = NoiseModel::depolarizing(0.003, 0.007);
    } else if (name == "ibm perth") {
        // Hardware-grade: strong depolarizing + readout contraction.
        d.noise = NoiseModel::depolarizing(0.006, 0.015);
        d.noise.readout01 = 0.02;
        d.noise.readout10 = 0.04;
    } else { // ibm lagos
        d.noise = NoiseModel::depolarizing(0.004, 0.011);
        d.noise.readout01 = 0.015;
        d.noise.readout10 = 0.03;
    }
    // Readout on a MaxCut observable acts as a further contraction of
    // <ZZ>; fold it into the light-cone damping via effective rates.
    NoiseModel effective = d.noise;
    effective.p1 += 0.75 * (d.noise.readout01 + d.noise.readout10);
    d.cost = std::make_shared<AnalyticQaoaCost>(graph, effective);
    return d;
}

} // namespace

int
main()
{
    std::printf("Table 5: NRMSE vs QPU-1 target for device mixtures "
                "(10%% sampling, 1%% NCM training)\n");
    bench::columns("QPU1 / QPU2", {"20-80", "+ncm", "50-50", "+ncm",
                                   "80-20", "+ncm", "100-0"});

    const std::pair<const char*, const char*> pairs[] = {
        {"noisy sim-i", "noisy sim-ii"},
        {"noisy sim-ii", "noisy sim-i"},
        {"ibm perth", "ideal sim"},
        {"ibm perth", "noisy sim-i"},
        {"ibm perth", "ibm lagos"},
        {"ibm lagos", "ibm perth"},
        {"ideal sim", "ibm perth"},
    };

    const GridSpec grid = GridSpec::qaoaP1();
    Rng graph_rng(17);
    const Graph g = random3RegularGraph(16, graph_rng);

    for (const auto& [name1, name2] : pairs) {
        // Target: QPU-1's own full landscape.
        QpuDevice ref = makeDevice(name1, g);
        LambdaCost ref_cost(2, [&](const std::vector<double>& p) {
            return ref.cost->evaluate(p);
        });
        const Landscape target = Landscape::gridSearch(grid, ref_cost);

        std::vector<double> cells;
        for (double share : {0.2, 0.5, 0.8}) {
            for (bool use_ncm : {false, true}) {
                std::vector<QpuDevice> devices{makeDevice(name1, g),
                                               makeDevice(name2, g)};
                Rng rng(5000);
                OscarOptions options;
                options.samplingFraction = 0.10;
                const auto result = Oscar::reconstructParallel(
                    grid, devices, {share, 1.0 - share}, use_ncm, 0.01,
                    rng, options);
                cells.push_back(nrmse(target.values(),
                                      result.reconstructed.values()));
            }
        }
        {
            // 100-0 column: all samples from QPU-1, no NCM needed.
            std::vector<QpuDevice> devices{makeDevice(name1, g),
                                           makeDevice(name2, g)};
            Rng rng(5000);
            OscarOptions options;
            options.samplingFraction = 0.10;
            const auto result = Oscar::reconstructParallel(
                grid, devices, {1.0, 0.0}, false, 0.01, rng, options);
            cells.push_back(nrmse(target.values(),
                                  result.reconstructed.values()));
        }
        bench::row(std::string(name1) + " / " + name2, cells,
                   " %10.4f");
    }
    std::printf("\npaper reference: +NCM lower in every cell; e.g. "
                "perth/ideal 1.362 -> 0.299 at 20-80\n");
    return 0;
}
