/**
 * @file
 * Serving-path benchmark: requests/s against an in-process oscar-serve
 * daemon at N concurrent clients, swept over store hit rates.
 *
 *   hit-rate 0.0   every request is a fresh computation (pool-bound)
 *   hit-rate 0.5   alternating store hits and fresh computations
 *   hit-rate 1.0   every request answered from the persistent store
 *
 * plus a dedupe round: all clients submit the SAME fresh request
 * concurrently, and the daemon's counters show one pool evaluation
 * shared by everyone. Emits BENCH_serve.json; the headline contract is
 * warm (hit-rate 1.0) throughput >= 10x cold (hit-rate 0.0).
 */

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_common.h"
#include "src/ansatz/qaoa.h"
#include "src/graph/generators.h"
#include "src/hamiltonian/maxcut.h"
#include "src/serve/client.h"
#include "src/serve/server.h"

namespace {

using namespace oscar;

constexpr int kClients = 4;
constexpr int kRequestsPerClient = 8;
constexpr std::uint64_t kWarmSeed = 7;

std::atomic<std::uint64_t> g_coldSeed{1000};

/** A small but real workload: ~40 sampled 6-qubit QAOA executions. */
serve::RequestMsg
makeRequest(std::uint64_t seed)
{
    serve::RequestMsg msg;
    msg.kind = serve::RequestKind::Reconstruct;
    Rng rng(3);
    const Graph graph = random3RegularGraph(6, rng);
    msg.cost.circuit = qaoaCircuit(graph, 1);
    msg.cost.hamiltonian = maxcutHamiltonian(graph);
    msg.grid = GridSpec({{-0.785, 0.785, 20}, {-1.571, 1.571, 40}});
    msg.samplingFraction = 0.05;
    msg.sampleSeed = seed;
    return msg;
}

/** One client's request stream for a hit-rate case. */
void
clientRun(const std::string& socket, double hit_rate)
{
    serve::ServeClient client(socket);
    for (int i = 0; i < kRequestsPerClient; ++i) {
        const bool warm =
            hit_rate >= 1.0 ||
            (hit_rate > 0.0 && i % 2 == 0); // 0.5: alternate warm/cold
        const std::uint64_t seed =
            warm ? kWarmSeed : g_coldSeed.fetch_add(1);
        const serve::ResponseMsg response =
            client.call(makeRequest(seed));
        if (response.status != serve::ResponseStatus::Ok) {
            std::fprintf(stderr, "bench_serve: request failed: %s\n",
                         response.error.c_str());
            std::exit(1);
        }
    }
}

double
runCase(const std::string& socket, double hit_rate)
{
    const auto start = std::chrono::steady_clock::now();
    std::vector<std::thread> clients;
    for (int c = 0; c < kClients; ++c)
        clients.emplace_back([&socket, hit_rate] {
            clientRun(socket, hit_rate);
        });
    for (std::thread& t : clients)
        t.join();
    return bench::secondsSince(start);
}

} // namespace

int
main()
{
    namespace fs = std::filesystem;
    char dir_template[] = "/tmp/oscar-bench-serve-XXXXXX";
    if (!::mkdtemp(dir_template)) {
        std::fprintf(stderr, "bench_serve: mkdtemp failed\n");
        return 1;
    }
    const std::string dir = dir_template;
    const std::string socket = dir + "/serve.sock";

    serve::ServeOptions options;
    options.socketPath = socket;
    options.storeDir = dir + "/store";
    options.jobThreads = kClients;
    options.oscar.numThreads = 0;
    serve::ServeServer server(options);
    std::thread server_thread([&server] { server.run(); });

    bench::header("oscar-serve throughput (4 clients, 8 requests each)");
    bench::columns("case", {"seconds", "req/s"});

    // Pre-warm the store with the shared warm key.
    {
        serve::ServeClient client(socket);
        serve::RequestMsg warm = makeRequest(kWarmSeed);
        if (client.call(warm).status != serve::ResponseStatus::Ok) {
            std::fprintf(stderr, "bench_serve: warmup failed\n");
            return 1;
        }
    }

    bench::JsonReport report("serve");
    const std::size_t total = kClients * kRequestsPerClient;
    double cold_rps = 0.0;
    double warm_rps = 0.0;
    for (const double hit_rate : {0.0, 0.5, 1.0}) {
        const double seconds = runCase(socket, hit_rate);
        const double rps = static_cast<double>(total) / seconds;
        if (hit_rate == 0.0)
            cold_rps = rps;
        if (hit_rate == 1.0)
            warm_rps = rps;
        char name[64];
        std::snprintf(name, sizeof(name), "hit_rate_%.1f", hit_rate);
        bench::row(name, {seconds, rps});
        bench::TimingStats timing;
        timing.median = seconds;
        timing.min = seconds;
        timing.reps = 1;
        report.add(name, timing, total,
                   {{"hit_rate", hit_rate},
                    {"clients", kClients},
                    {"requests_per_s", rps}});
    }

    // Dedupe round: everyone submits the same fresh key at once; the
    // counter delta shows how many pool evaluations that cost.
    const std::uint64_t before = server.counters().evaluations;
    const std::uint64_t dedup_seed = g_coldSeed.fetch_add(1);
    {
        std::vector<std::thread> clients;
        for (int c = 0; c < kClients; ++c)
            clients.emplace_back([&socket, dedup_seed] {
                serve::ServeClient client(socket);
                serve::RequestMsg msg = makeRequest(dedup_seed);
                if (client.call(msg).status != serve::ResponseStatus::Ok)
                    std::exit(1);
            });
        for (std::thread& t : clients)
            t.join();
    }
    const std::uint64_t evals =
        server.counters().evaluations - before;
    std::printf("\n%d identical concurrent submits -> %llu pool "
                "evaluation(s)\n",
                kClients, static_cast<unsigned long long>(evals));
    const double speedup = cold_rps > 0.0 ? warm_rps / cold_rps : 0.0;
    std::printf("warm/cold throughput: %.1fx (contract: >= 10x)\n",
                speedup);
    {
        bench::TimingStats timing;
        timing.reps = 1;
        report.add("summary", timing, total,
                   {{"warm_over_cold", speedup},
                    {"dedup_evaluations", static_cast<double>(evals)},
                    {"dedup_clients", kClients}});
    }
    report.write("BENCH_serve.json");

    server.stop();
    server_thread.join();
    std::error_code ec;
    fs::remove_all(dir, ec);
    return 0;
}
