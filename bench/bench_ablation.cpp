/**
 * @file
 * Ablation bench for OSCAR's design choices (DESIGN.md "Ablations"):
 *
 *  1. Solver: FISTA (convex relaxation) vs. OMP (greedy).
 *  2. Lambda continuation: on (geometric decay) vs. off (fixed final
 *     lambda from the start).
 *  3. Sampling pattern: uniform random (the CS-correct choice) vs.
 *     equispaced subsampling (aliases the periodic landscape).
 *  4. 4-D reshape order for p=2 concatenation: (b1 b2, g1 g2) vs. the
 *     interleaved (b1 g1, b2 g2).
 *
 * Each row reports NRMSE on a fixed depth-1 (or depth-2 for #4)
 * QAOA-MaxCut landscape at a 6% sampling fraction.
 */

#include <cstdio>

#include "bench_common.h"
#include "src/ansatz/qaoa.h"
#include "src/backend/statevector_backend.h"
#include "src/hamiltonian/maxcut.h"

namespace {

using namespace oscar;

double
errorWith(const Landscape& truth, const CsOptions& cs, double fraction,
          bool equispaced, std::uint64_t seed)
{
    SampleSet samples;
    if (equispaced) {
        const std::size_t n = truth.numPoints();
        const std::size_t k = static_cast<std::size_t>(fraction * n);
        const double step = static_cast<double>(n) / k;
        std::vector<std::size_t> indices;
        for (std::size_t i = 0; i < k; ++i)
            indices.push_back(static_cast<std::size_t>(i * step));
        samples = gatherLandscape(truth, indices);
    } else {
        Rng rng(seed);
        samples = sampleLandscape(truth, fraction, rng);
    }
    const Landscape recon =
        Oscar::reconstructFromSamples(truth.grid(), samples, cs);
    return nrmse(truth.values(), recon.values());
}

} // namespace

int
main()
{
    std::printf("Ablations: reconstruction NRMSE at 6%% sampling "
                "(16-qubit depth-1 QAOA MaxCut, 50x100 grid)\n");
    bench::columns("configuration", {"NRMSE"});

    Rng rng(3);
    const Graph g = random3RegularGraph(16, rng);
    AnalyticQaoaCost cost(g);
    const GridSpec grid = GridSpec::qaoaP1();
    const Landscape truth = Landscape::gridSearch(grid, cost);
    const double fraction = 0.06;

    // 1. Solver choice.
    CsOptions fista;
    bench::row("FISTA (default)",
               {errorWith(truth, fista, fraction, false, 11)});
    CsOptions omp;
    omp.solver = CsSolver::Omp;
    omp.omp.maxAtoms = 120;
    bench::row("OMP (120 atoms)",
               {errorWith(truth, omp, fraction, false, 11)});

    // 2. Continuation on/off.
    CsOptions no_continuation;
    no_continuation.fista.lambdaInitFraction = 1e-4;
    bench::row("FISTA, no continuation",
               {errorWith(truth, no_continuation, fraction, false, 11)});

    // 3. Sampling pattern.
    bench::row("equispaced sampling",
               {errorWith(truth, fista, fraction, true, 11)});

    // 4. Reshape order for a p=2 landscape.
    {
        Rng g2rng(4);
        const Graph g2 = random3RegularGraph(8, g2rng);
        StatevectorCost cost2(qaoaCircuit(g2, 2),
                              maxcutHamiltonian(g2));
        const GridSpec grid2 = GridSpec::qaoaP2(8, 10);
        const Landscape truth2 = Landscape::gridSearch(grid2, cost2);

        Rng srng(21);
        const SampleSet samples = sampleLandscape(truth2, 0.10, srng);

        // Default order: axes (b1, b2, g1, g2) -> (b1 b2, g1 g2).
        const Landscape recon =
            Oscar::reconstructFromSamples(truth2.grid(), samples);
        bench::row("p=2 fold (b b, g g) [default]",
                   {nrmse(truth2.values(), recon.values())});

        // Interleaved order: permute axes to (b1, g1, b2, g2) first.
        const auto shape = truth2.grid().shape(); // {8, 8, 10, 10}
        const std::vector<std::size_t> perm{0, 2, 1, 3};
        std::vector<std::size_t> new_shape{shape[0], shape[2], shape[1],
                                           shape[3]};
        NdArray permuted(new_shape);
        for (std::size_t i = 0; i < truth2.numPoints(); ++i) {
            const auto idx = truth2.values().unravel(i);
            permuted.at({idx[0], idx[2], idx[1], idx[3]}) =
                truth2.value(i);
        }
        std::vector<std::size_t> perm_indices;
        std::vector<double> perm_values;
        for (std::size_t k = 0; k < samples.size(); ++k) {
            const auto idx =
                truth2.values().unravel(samples.indices[k]);
            perm_indices.push_back(permuted.offset(
                {idx[0], idx[2], idx[1], idx[3]}));
            perm_values.push_back(samples.values[k]);
        }
        const NdArray recon_perm = reconstructLandscape(
            new_shape, perm_indices, perm_values);
        bench::row("p=2 fold (b g, b g) interleaved",
                   {nrmse(permuted, recon_perm)});
    }
    return 0;
}
