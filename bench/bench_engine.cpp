/**
 * @file
 * Scalar-vs-batched-vs-prefix-cached execution throughput.
 *
 * Measures the system's hottest path -- turning a list of grid points
 * into cost values on the statevector backend -- across:
 *
 *   1. scalar:    one evaluate() per point, prefix cache off (the
 *                 pre-engine legacy path),
 *   2. batched:   one evaluateBatch() submission, prefix cache off
 *                 (the PR 1 batched path),
 *   3. prefix:    one evaluateBatch() submission with shared-prefix
 *                 checkpoint caching on an axis-major sweep,
 *   4. engine k:  the prefix-cached batch fanned out over k workers.
 *
 * All timings are repeated-run medians (bench_common.h); every mode is
 * verified bit-identical to the scalar reference (the determinism
 * contract: caching and threading change performance, never values).
 * Thread speedups require cores: on a 1-core host the engine can only
 * match the serial path.
 */

#include <cstdio>
#include <thread>

#include "bench/bench_common.h"
#include "src/ansatz/qaoa.h"
#include "src/backend/engine.h"
#include "src/backend/statevector_backend.h"
#include "src/hamiltonian/maxcut.h"

namespace oscar {
namespace {

constexpr int kReps = 3;

struct Mode
{
    std::string name;
    bench::TimingStats timing;
    bool identical;
};

void
report(const std::vector<Mode>& modes, std::size_t num_points)
{
    bench::columns("mode",
                   {"pts/s", "median_s", "min_s", "speedup", "identical"});
    const double base = modes.front().timing.median;
    for (const Mode& m : modes) {
        bench::row(m.name,
                   {static_cast<double>(num_points) / m.timing.median,
                    m.timing.median, m.timing.min, base / m.timing.median,
                    m.identical ? 1.0 : 0.0},
                   " %10.4g");
    }
}

bool
identical(const std::vector<double>& a, const std::vector<double>& b)
{
    if (a.size() != b.size())
        return false;
    for (std::size_t i = 0; i < a.size(); ++i) {
        if (a[i] != b[i])
            return false;
    }
    return true;
}

/**
 * Axis-major sweep benchmark: every point of `grid` for a depth-p QAOA
 * circuit, ordered by the backend's own batch order hint (the order
 * the landscape sampler emits).
 */
void
runSweep(int num_qubits, int depth, const GridSpec& grid)
{
    Rng rng(7);
    const Graph g = random3RegularGraph(num_qubits, rng);
    auto make = [&] {
        return StatevectorCost(qaoaCircuit(g, depth),
                               maxcutHamiltonian(g));
    };

    std::vector<std::vector<double>> points;
    {
        const StatevectorCost probe = make();
        std::vector<std::size_t> indices(grid.numPoints());
        for (std::size_t i = 0; i < indices.size(); ++i)
            indices[i] = i;
        const auto perm = grid.prefixFriendlyPermutation(
            indices, probe.batchOrderHint());
        points.reserve(perm.size());
        for (std::size_t p : perm)
            points.push_back(grid.pointAt(p));
    }
    const std::size_t num_points = points.size();

    bench::header("p=" + std::to_string(depth) + " QAOA, " +
                  std::to_string(num_qubits) + " qubits, axis-major " +
                  std::to_string(num_points) + "-point sweep (median of " +
                  std::to_string(kReps) + ")");

    KernelOptions cache_off;
    cache_off.prefixCache = false;

    std::vector<Mode> modes;

    // 1. Scalar reference, cache off.
    std::vector<double> reference;
    {
        StatevectorCost cost = make();
        cost.configureKernel(cache_off);
        const auto timing = bench::timeRepeated(kReps, [&] {
            reference.clear();
            reference.reserve(points.size());
            for (const auto& p : points)
                reference.push_back(cost.evaluate(p));
        });
        modes.push_back({"scalar (no cache)", timing, true});
    }

    // 2. PR 1 batched path: one submission, cache off.
    {
        StatevectorCost cost = make();
        cost.configureKernel(cache_off);
        std::vector<double> values;
        const auto timing = bench::timeRepeated(
            kReps, [&] { values = cost.evaluateBatch(points); });
        modes.push_back(
            {"batched (no cache)", timing, identical(values, reference)});
    }

    // 3. Prefix-cached batch. configureKernel clears the cache, so
    // every rep pays the cold cache like a fresh sweep would, without
    // timing circuit lowering / diagonal-table construction.
    {
        StatevectorCost cost = make();
        std::vector<double> values;
        std::size_t hits = 0, lookups = 0;
        const auto timing = bench::timeRepeated(kReps, [&] {
            cost.configureKernel(KernelOptions{});
            values = cost.evaluateBatch(points);
            hits = cost.prefixCache().hits();
            lookups = cost.prefixCache().lookups();
        });
        modes.push_back(
            {"prefix-cached batch", timing, identical(values, reference)});
        std::printf("  (cache: %zu hits / %zu lookups)\n", hits, lookups);
    }

    // 4. Engine with growing worker pools, prefix cache on (replica
    // clones start cold each submission).
    const unsigned hw = std::max(1u, std::thread::hardware_concurrency());
    for (unsigned threads = 2; threads <= hw && threads <= 8;
         threads *= 2) {
        ExecutionEngine engine(static_cast<int>(threads));
        StatevectorCost cost = make();
        std::vector<double> values;
        const auto timing = bench::timeRepeated(kReps, [&] {
            cost.configureKernel(KernelOptions{});
            values = engine.evaluate(cost, points);
        });
        modes.push_back({"engine x" + std::to_string(threads) + " cached",
                         timing, identical(values, reference)});
    }

    report(modes, num_points);
}

} // namespace
} // namespace oscar

int
main()
{
    const unsigned hw = std::thread::hardware_concurrency();
    std::printf("hardware_concurrency: %u\n", hw);
    if (hw <= 1) {
        std::printf("note: single-core host; thread speedups need "
                    "cores, expect ~1x there\n");
    }

    // The paper's p=1 landscape shape (beta x gamma), scalar-heavy.
    oscar::runSweep(12, 1, oscar::GridSpec::qaoaP1(30, 60));
    // The acceptance sweep: p=2, >= 12 qubits, axis-major order.
    oscar::runSweep(12, 2, oscar::GridSpec::qaoaP2(5, 7));
    oscar::runSweep(16, 1, oscar::GridSpec::qaoaP1(15, 30));
    return 0;
}
