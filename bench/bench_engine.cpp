/**
 * @file
 * Scalar-vs-batched execution throughput of the ExecutionEngine.
 *
 * Measures the system's hottest path -- turning a list of grid points
 * into cost values on the statevector backend -- three ways:
 *
 *   1. scalar:   the legacy loop, one evaluate() per point,
 *   2. batched:  one evaluateBatch() submission (serial),
 *   3. engine k: the batch fanned out over k worker threads.
 *
 * Prints points/second and speedup over the scalar path, and verifies
 * that every mode produces bit-identical values (the engine's
 * determinism contract). Thread speedups require cores: on a 1-core
 * host the engine can only match the scalar path.
 */

#include <chrono>
#include <cstdio>
#include <thread>

#include "bench/bench_common.h"
#include "src/ansatz/qaoa.h"
#include "src/backend/engine.h"
#include "src/backend/statevector_backend.h"
#include "src/hamiltonian/maxcut.h"

namespace oscar {
namespace {

double
secondsSince(std::chrono::steady_clock::time_point start)
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now() - start)
        .count();
}

void
runBench(int num_qubits, std::size_t num_points)
{
    Rng rng(7);
    const Graph g = random3RegularGraph(num_qubits, rng);
    const GridSpec grid = GridSpec::qaoaP1(50, 100);

    std::vector<std::size_t> indices =
        rng.sampleWithoutReplacement(grid.numPoints(), num_points);
    std::vector<std::vector<double>> points;
    points.reserve(indices.size());
    for (std::size_t idx : indices)
        points.push_back(grid.pointAt(idx));

    bench::header("engine throughput, " + std::to_string(num_qubits) +
                  "-qubit statevector QAOA, " +
                  std::to_string(num_points) + " grid points");
    bench::columns("mode", {"points/s", "speedup", "identical"});

    // 1. Scalar reference.
    StatevectorCost scalar(qaoaCircuit(g, 1), maxcutHamiltonian(g));
    auto start = std::chrono::steady_clock::now();
    std::vector<double> reference;
    reference.reserve(points.size());
    for (const auto& p : points)
        reference.push_back(scalar.evaluate(p));
    const double scalar_s = secondsSince(start);
    const double scalar_rate =
        static_cast<double>(num_points) / scalar_s;
    bench::row("scalar evaluate()", {scalar_rate, 1.0, 1.0});

    auto check = [&](const std::vector<double>& values) {
        for (std::size_t i = 0; i < values.size(); ++i) {
            if (values[i] != reference[i])
                return 0.0;
        }
        return 1.0;
    };

    // 2. Serial batch submission.
    {
        StatevectorCost cost(qaoaCircuit(g, 1), maxcutHamiltonian(g));
        start = std::chrono::steady_clock::now();
        const std::vector<double> values = cost.evaluateBatch(points);
        const double s = secondsSince(start);
        bench::row("evaluateBatch serial",
                   {static_cast<double>(num_points) / s, scalar_s / s,
                    check(values)});
    }

    // 3. Engine with growing worker pools.
    const unsigned hw = std::max(1u, std::thread::hardware_concurrency());
    for (unsigned threads = 1; threads <= 2 * hw && threads <= 16;
         threads *= 2) {
        StatevectorCost cost(qaoaCircuit(g, 1), maxcutHamiltonian(g));
        ExecutionEngine engine(static_cast<int>(threads));
        start = std::chrono::steady_clock::now();
        const std::vector<double> values = engine.evaluate(cost, points);
        const double s = secondsSince(start);
        bench::row("engine x" + std::to_string(threads),
                   {static_cast<double>(num_points) / s, scalar_s / s,
                    check(values)});
    }
}

} // namespace
} // namespace oscar

int
main()
{
    const unsigned hw = std::thread::hardware_concurrency();
    std::printf("hardware_concurrency: %u\n", hw);
    if (hw <= 1) {
        std::printf("note: single-core host; thread speedups need "
                    "cores, expect ~1x here\n");
    }
    oscar::runBench(12, 600);
    oscar::runBench(16, 200);
    return 0;
}
