/**
 * @file
 * Execution-engine throughput: scalar vs batched vs prefix-cached vs
 * threaded, multi-process sharding, and asynchronous pipeline overlap
 * vs the synchronous barrier.
 *
 * Studies on the system's hottest path (turning a list of grid
 * points into cost values on the statevector backend):
 *
 *  1. Sweep modes: scalar loop (cache off), one batched submission
 *     (cache off), prefix-cached batch, and the prefix-cached batch
 *     fanned out over k workers -- every mode verified bit-identical
 *     to the scalar reference (caching and threading change
 *     performance, never values).
 *
 *  2. Kernel layers (BENCH_kernels.json): cache blocking, AVX2
 *     dispatch, batched diagonal expectation.
 *
 *  3. Distributed sharding (BENCH_dist.json): one serial process vs
 *     the sweep sharded over 2/4 oscar-worker processes -- over
 *     socketpairs and over loopback TCP with compressed framing
 *     (on-wire raw vs stored bytes reported per row) -- plus a
 *     deliberate-straggler case with per-point work stealing on/off
 *     (steal counts and tail-latency improvement) and a sharded
 *     reconstruction; bit-identity asserted on every row.
 *
 *  4. Observability (BENCH_obs.json): the same sweep untraced vs with
 *     tracing + metrics on -- the traced row reports its overhead
 *     ratio and p50/p95/p99 per-batch latency read back from the live
 *     engine.batch.latency.ns histogram (src/obs/).
 *
 *  5. Overlap: Oscar::reconstruct with the synchronous barrier
 *     (execute everything, then run FISTA) vs the streaming pipeline
 *     (sharded async submission, FISTA warm-ups on finished shards
 *     while later shards execute). Samples are asserted identical;
 *     on a multi-core host the overlapped run should be no slower
 *     than the barrier.
 *
 * OSCAR_BENCH_ONLY=<substring> selects a subset of studies (the CI
 * distributed leg runs only "dist").
 *
 * Built against Google Benchmark when available (OSCAR_HAVE_GBENCH);
 * otherwise falls back to the repeated-run-median wall-clock tables
 * of bench_common.h. Thread speedups require cores: on a 1-core host
 * the engine can only match the serial path.
 */

#include <sys/wait.h>
#include <unistd.h>

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_common.h"
#include "src/ansatz/qaoa.h"
#include "src/backend/engine.h"
#include "src/backend/statevector_backend.h"
#include "src/dist/process_pool.h"
#include "src/hamiltonian/maxcut.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"

extern char** environ;

#ifdef OSCAR_HAVE_GBENCH
#include <benchmark/benchmark.h>
#endif

namespace oscar {
namespace {

/** OSCAR_BENCH_ONLY=<substring> selects which studies run. */
bool
benchEnabled(const char* name)
{
    const char* only = std::getenv("OSCAR_BENCH_ONLY");
    return !only || std::strstr(name, only) != nullptr;
}

bool
identical(const std::vector<double>& a, const std::vector<double>& b)
{
    if (a.size() != b.size())
        return false;
    for (std::size_t i = 0; i < a.size(); ++i) {
        if (a[i] != b[i])
            return false;
    }
    return true;
}

/** Shared sweep workload: graph, cost factory, axis-major points. */
struct SweepCase
{
    Graph graph;
    int depth;
    std::vector<std::vector<double>> points;

    SweepCase(int num_qubits, int depth_, const GridSpec& grid)
        : graph(makeGraph(num_qubits)), depth(depth_)
    {
        const StatevectorCost probe(qaoaCircuit(graph, depth),
                                    maxcutHamiltonian(graph));
        std::vector<std::size_t> indices(grid.numPoints());
        for (std::size_t i = 0; i < indices.size(); ++i)
            indices[i] = i;
        const auto perm = grid.prefixFriendlyPermutation(
            indices, probe.batchOrderHint());
        points.reserve(perm.size());
        for (std::size_t p : perm)
            points.push_back(grid.pointAt(p));
    }

    StatevectorCost
    make() const
    {
        return StatevectorCost(qaoaCircuit(graph, depth),
                               maxcutHamiltonian(graph));
    }

    static Graph
    makeGraph(int num_qubits)
    {
        Rng rng(7);
        return random3RegularGraph(num_qubits, rng);
    }
};

/**
 * Kernel-layer study on the acceptance sweep (axis-major 12q p=2
 * QAOA): the PR 2 prefix-cached scalar path vs each layer of the
 * kernel architecture -- cache blocking + batched expectation per ISA
 * (scalar / AVX2 / AVX-512, as available on this host/build), each
 * with super-kernel fusion off and on. Fused rows additionally report
 * speedup_vs_unfused against their own ISA's unfused row, which is
 * the fusion-only gain the acceptance criteria track. Runs in both
 * benchmark modes and writes the machine-readable BENCH_kernels.json
 * (median/min per case) so the perf trajectory is tracked across PRs.
 */
void
runKernelStudy()
{
    constexpr int kStudyReps = 3;
    const SweepCase sweep(12, 2, GridSpec::qaoaP2(5, 7));
    const std::size_t num_points = sweep.points.size();

    struct KernelMode
    {
        std::string name;
        KernelOptions options;
        bool bitExact;          ///< must match the scalar reference exactly
        std::string unfusedRef; ///< unfused row for speedup_vs_unfused
    };

    KernelOptions pr2; // the PR 2 path: scalar kernels, cache only
    pr2.isa = kernels::KernelIsa::Scalar;
    pr2.blockWindow = 0;
    pr2.batchedExpectation = false;

    std::vector<KernelMode> modes = {{"pr2 scalar+cache", pr2, true, ""}};
    if (kernels::avx2Available()) {
        KernelOptions avx2_plain = pr2;
        avx2_plain.isa = kernels::KernelIsa::Avx2;
        modes.push_back({"avx2+cache", avx2_plain, false, ""});
    }

    struct IsaCase
    {
        const char* name;
        kernels::KernelIsa isa;
        bool available;
    };
    const IsaCase isa_cases[] = {
        {"scalar", kernels::KernelIsa::Scalar, true},
        {"avx2", kernels::KernelIsa::Avx2, kernels::avx2Available()},
        {"avx512", kernels::KernelIsa::Avx512,
         kernels::avx512Available()},
    };
    for (const IsaCase& isa : isa_cases) {
        if (!isa.available) {
            std::printf("  (skipping %s rows: unavailable on this "
                        "host/build)\n",
                        isa.name);
            continue;
        }
        KernelOptions full;
        full.isa = isa.isa;
        const std::string unfused_name =
            std::string(isa.name) + "+blocked+batchexp";
        modes.push_back({unfused_name, full,
                         isa.isa == kernels::KernelIsa::Scalar, ""});
        KernelOptions fused = full;
        fused.fuseWindow = 6;
        modes.push_back(
            {unfused_name + "+fused", fused, false, unfused_name});
    }

    bench::header("kernel layers: p=2 QAOA, 12 qubits, axis-major " +
                  std::to_string(num_points) +
                  "-point sweep (median of " +
                  std::to_string(kStudyReps) + ")");
    bench::columns("mode", {"pts/s", "median_s", "min_s", "speedup",
                            "match"});

    bench::JsonReport json("bench_engine/kernels");
    std::vector<double> reference;
    double base_median = 0.0;
    std::map<std::string, double> medians;
    for (const KernelMode& mode : modes) {
        StatevectorCost cost = sweep.make();
        std::vector<double> values;
        const auto timing = bench::timeRepeated(kStudyReps, [&] {
            cost.configureKernel(mode.options); // cold cache per rep
            values = cost.evaluateBatch(sweep.points);
        });
        if (reference.empty()) {
            reference = values;
            base_median = timing.median;
        }
        bool match = true;
        for (std::size_t i = 0; i < values.size(); ++i) {
            if (mode.bitExact ? values[i] != reference[i]
                              : std::abs(values[i] - reference[i]) >
                                    1e-9)
                match = false;
        }
        medians[mode.name] = timing.median;
        const double speedup = base_median / timing.median;
        bench::row(mode.name,
                   {static_cast<double>(num_points) / timing.median,
                    timing.median, timing.min, speedup,
                    match ? 1.0 : 0.0},
                   " %10.4g");
        std::vector<std::pair<std::string, double>> extra = {
            {"speedup_vs_pr2", speedup}, {"match", match ? 1.0 : 0.0}};
        if (!mode.unfusedRef.empty()) {
            const double vs_unfused =
                medians.at(mode.unfusedRef) / timing.median;
            extra.emplace_back("speedup_vs_unfused", vs_unfused);
            const KernelStats stats = cost.kernelStats();
            extra.emplace_back(
                "fused_super_kernels",
                static_cast<double>(stats.fusedSuperKernels));
            std::printf("    %s: %.2fx over %s from fusion alone\n",
                        mode.name.c_str(), vs_unfused,
                        mode.unfusedRef.c_str());
        }
        json.add(mode.name, timing, num_points, extra);
    }
    std::printf("  (default ISA: %s)\n",
                kernels::isaName(kernels::defaultKernelTable().isa));
    json.write("BENCH_kernels.json");
}

/**
 * fork/exec an `oscar-worker --connect 127.0.0.1:port` joiner whose
 * evaluation is throttled by the OSCAR_WORKER_SLOW_US hook -- the
 * deliberate straggler of the steal study. The fleet secret travels in
 * the child environment, never argv. Returns the child pid (reaped by
 * the caller after the pool shuts the worker down), or -1 on failure.
 */
int
spawnStragglerWorker(std::uint16_t port, const std::string& secret,
                     long slow_us)
{
    std::string worker;
    try {
        worker = dist::ProcessPool::resolveWorkerPath("");
    } catch (const std::exception&) {
        return -1;
    }
    const std::string connect = "127.0.0.1:" + std::to_string(port);

    std::vector<std::string> env_store;
    for (char** e = environ; e && *e; ++e) {
        const std::string entry(*e);
        if (entry.rfind("OSCAR_DIST_SECRET=", 0) == 0 ||
            entry.rfind("OSCAR_DIST_CONNECT=", 0) == 0 ||
            entry.rfind("OSCAR_WORKER_SLOW_US=", 0) == 0)
            continue;
        env_store.push_back(entry);
    }
    env_store.push_back("OSCAR_DIST_SECRET=" + secret);
    env_store.push_back("OSCAR_WORKER_SLOW_US=" +
                        std::to_string(slow_us));
    std::vector<std::string> arg_store = {"oscar-worker", "--connect",
                                          connect, "--heartbeat-ms",
                                          "50", "--threads", "1"};
    std::vector<char*> argv;
    std::vector<char*> envp;
    for (std::string& s : arg_store)
        argv.push_back(s.data());
    argv.push_back(nullptr);
    for (std::string& s : env_store)
        envp.push_back(s.data());
    envp.push_back(nullptr);

    const int pid = ::fork();
    if (pid == 0) {
        ::execve(worker.c_str(), argv.data(), envp.data());
        ::_exit(127);
    }
    return pid;
}

/**
 * Distributed execution study on the acceptance sweep (axis-major 12q
 * p=2 QAOA): one serial process vs the same sweep sharded across a
 * hybrid process x thread grid (workers x threadsPerWorker cells:
 * 1x1, 1x2, 2x1, 2x2, 4x1) through the distributed task queue, plus a
 * sharded Oscar reconstruction for context. Every distributed run is
 * verified bit-identical to the in-process values (the distributed
 * determinism contract). Writes BENCH_dist.json. Caches run cold per
 * repetition on both sides: the kernel-option fingerprint is varied
 * per rep so workers rebuild their evaluators instead of reusing warm
 * prefix caches.
 */
void
runDistStudy()
{
    constexpr int kStudyReps = 3;
    const SweepCase sweep(12, 2, GridSpec::qaoaP2(5, 7));
    const std::size_t num_points = sweep.points.size();

    bench::header("distributed sharding: p=2 QAOA, 12 qubits, "
                  "axis-major " +
                  std::to_string(num_points) +
                  "-point sweep (median of " +
                  std::to_string(kStudyReps) + ")");
    const unsigned hw = std::thread::hardware_concurrency();
    if (hw < 4) {
        std::printf("  note: %u-core host; worker processes need "
                    "cores, expect <= %ux here\n",
                    hw, std::max(1u, hw));
    }
    bench::columns("mode", {"pts/s", "median_s", "min_s", "speedup",
                            "match"});
    bench::JsonReport json("bench_engine/dist");

    /** Cold-cache kernel options, fingerprinted per repetition. */
    const auto coldOptions = [](int rep) {
        KernelOptions options;
        options.prefixCacheBudgetBytes += static_cast<std::size_t>(rep);
        return options;
    };

    // In-process serial reference (also the bit-identity oracle).
    // Distribution is pinned off (numWorkers = -1) so an exported
    // OSCAR_DIST_WORKERS cannot turn the baseline itself into a
    // multi-worker run and corrupt every speedup_vs_single.
    EngineOptions serial_opts;
    serial_opts.numThreads = 1;
    serial_opts.dist.numWorkers = -1;
    std::vector<double> reference;
    double base_median = 0.0;
    {
        ExecutionEngine engine(serial_opts);
        StatevectorCost cost = sweep.make();
        int rep = 0;
        const auto timing = bench::timeRepeated(kStudyReps, [&] {
            cost.configureKernel(coldOptions(rep++));
            reference = engine.submit(cost, sweep.points).get();
        });
        base_median = timing.median;
        bench::row("single process",
                   {static_cast<double>(num_points) / timing.median,
                    timing.median, timing.min, 1.0, 1.0},
                   " %10.4g");
        json.add("single process", timing, num_points,
                 {{"workers", 1.0},
                  {"speedup_vs_single", 1.0},
                  {"match", 1.0},
                  {"hardware_concurrency", static_cast<double>(hw)}});
    }

    // Hybrid process x thread grid: each (workers, threads) cell runs
    // the same sweep through T-threaded workers and is verified
    // bit-identical to the serial reference -- the hybrid determinism
    // contract is asserted, not assumed, on every row.
    bool spawn_failed = false;
    const std::pair<int, int> grid[] = {
        {1, 1}, {1, 2}, {2, 1}, {2, 2}, {4, 1}};
    for (const auto& [workers, threads] : grid) {
        EngineOptions options;
        options.numThreads = 1;
        options.dist.numWorkers = workers;
        options.dist.threadsPerWorker = threads;
        options.dist.minPointsToDistribute = 1;
        // These rows measure the socketpair transport; pin it so an
        // exported OSCAR_DIST_LISTEN cannot silently turn them TCP.
        options.dist.listen = "none";
        ExecutionEngine engine(options);
        StatevectorCost cost = sweep.make();
        std::vector<double> values;
        std::size_t remote = 0, requeued = 0, pipelined = 0;
        int rep = 0;
        const auto timing = bench::timeRepeated(kStudyReps, [&] {
            cost.configureKernel(coldOptions(rep++));
            BatchHandle handle = engine.submit(cost, sweep.points);
            values = handle.get();
            remote = handle.stats().pointsRemote;
            requeued = handle.stats().shardsRequeued;
            pipelined = handle.stats().shardsPipelined;
        });
        const bool distributed = remote == num_points;
        if (!distributed)
            spawn_failed = true;
        const bool match = identical(values, reference);
        const double speedup = base_median / timing.median;
        const std::string name = "dist " + std::to_string(workers) +
                                 "p x " + std::to_string(threads) + "t";
        bench::row(name,
                   {static_cast<double>(num_points) / timing.median,
                    timing.median, timing.min, speedup,
                    match && distributed ? 1.0 : 0.0},
                   " %10.4g");
        json.add(name, timing, num_points,
                 {{"workers", static_cast<double>(workers)},
                  {"threads_per_worker", static_cast<double>(threads)},
                  {"speedup_vs_single", speedup},
                  {"match", match ? 1.0 : 0.0},
                  {"points_remote", static_cast<double>(remote)},
                  {"shards_requeued", static_cast<double>(requeued)},
                  {"shards_pipelined",
                   static_cast<double>(pipelined)}});
    }
    if (spawn_failed)
        std::printf("  (warning: distributed runs fell back "
                    "in-process; is oscar-worker built?)\n");

    // Loopback-TCP rows: the same sweep through an elastic TCP fleet
    // coordinator (workers dial 127.0.0.1 and pass the authenticated
    // Hello handshake) with compressed framing. Reported per row: the
    // bytes the frames would have cost raw vs what the wire actually
    // carried.
    for (const auto& [workers, threads] :
         {std::pair<int, int>{2, 1}, std::pair<int, int>{2, 2}}) {
        EngineOptions options;
        options.numThreads = 1;
        options.dist.numWorkers = workers;
        options.dist.threadsPerWorker = threads;
        options.dist.minPointsToDistribute = 1;
        options.dist.listen = "127.0.0.1:0";
        options.dist.secret = "bench-fleet";
        ExecutionEngine engine(options);
        StatevectorCost cost = sweep.make();
        std::vector<double> values;
        std::size_t remote = 0, raw_bytes = 0, wire_bytes = 0;
        int rep = 0;
        const auto timing = bench::timeRepeated(kStudyReps, [&] {
            cost.configureKernel(coldOptions(rep++));
            BatchHandle handle = engine.submit(cost, sweep.points);
            values = handle.get();
            remote = handle.stats().pointsRemote;
            raw_bytes = handle.stats().bytesOnWireRaw;
            wire_bytes = handle.stats().bytesOnWireCompressed;
        });
        const bool distributed = remote == num_points;
        const bool match = identical(values, reference);
        const double speedup = base_median / timing.median;
        const std::string name = "tcp " + std::to_string(workers) +
                                 "p x " + std::to_string(threads) + "t";
        bench::row(name,
                   {static_cast<double>(num_points) / timing.median,
                    timing.median, timing.min, speedup,
                    match && distributed ? 1.0 : 0.0},
                   " %10.4g");
        if (raw_bytes > 0)
            std::printf("    %s: %.1f%% of raw bytes on the wire "
                        "(%zu -> %zu)\n",
                        name.c_str(),
                        100.0 * static_cast<double>(wire_bytes) /
                            static_cast<double>(raw_bytes),
                        raw_bytes, wire_bytes);
        json.add(name, timing, num_points,
                 {{"workers", static_cast<double>(workers)},
                  {"threads_per_worker", static_cast<double>(threads)},
                  {"transport_tcp", 1.0},
                  {"speedup_vs_single", speedup},
                  {"match", match ? 1.0 : 0.0},
                  {"points_remote", static_cast<double>(remote)},
                  {"bytes_on_wire_raw", static_cast<double>(raw_bytes)},
                  {"bytes_on_wire_compressed",
                   static_cast<double>(wire_bytes)},
                  {"wire_bytes_fraction",
                   raw_bytes > 0 ? static_cast<double>(wire_bytes) /
                                       static_cast<double>(raw_bytes)
                                 : 1.0}});
    }

    // Deliberate-straggler case: one fast local member plus a joiner
    // throttled by the OSCAR_WORKER_SLOW_US hook, each initially
    // holding half the batch. With stealing off the batch ends when
    // the straggler crawls through its shard; with stealing on the
    // idle member takes the straggler's unrun tail. The steal-on row's
    // speedup column is its tail-latency improvement over steal-off.
    {
        const std::size_t count =
            std::min<std::size_t>(96, num_points);
        const std::vector<std::vector<double>> pts(
            sweep.points.begin(),
            sweep.points.begin() + static_cast<std::ptrdiff_t>(count));
        const std::vector<double> want(
            reference.begin(),
            reference.begin() + static_cast<std::ptrdiff_t>(count));
        double off_median = 0.0;
        for (const bool steal : {false, true}) {
            int pid = -1;
            bool joined = false;
            {
                dist::DistOptions options;
                options.numWorkers = 1;
                options.listen = "127.0.0.1:0";
                options.secret = "bench-fleet";
                options.shardSize = count / 2;
                options.steal = steal;
                dist::ProcessPool pool(options);
                pid = spawnStragglerWorker(pool.listenPort(),
                                           "bench-fleet",
                                           /*slow_us=*/5000);
                for (int i = 0; pid > 0 && i < 50000 && !joined; ++i) {
                    joined = pool.stats().workersJoined >= 2;
                    std::this_thread::sleep_for(
                        std::chrono::microseconds(200));
                }
                if (joined) {
                    StatevectorCost cost = sweep.make();
                    std::vector<double> values;
                    std::size_t stolen = 0, requeued = 0;
                    int rep = 0;
                    const auto timing =
                        bench::timeRepeated(kStudyReps, [&] {
                            cost.configureKernel(coldOptions(rep++));
                            auto batch = pts;
                            BatchHandle handle =
                                pool.submit(cost, std::move(batch));
                            values = handle.get();
                            stolen = handle.stats().shardsStolen;
                            requeued = handle.stats().shardsRequeued;
                        });
                    const bool match = identical(values, want);
                    if (!steal)
                        off_median = timing.median;
                    const double vs_off =
                        steal && timing.median > 0.0
                            ? off_median / timing.median
                            : 1.0;
                    const std::string name =
                        steal ? "straggler steal on"
                              : "straggler steal off";
                    bench::row(
                        name,
                        {static_cast<double>(count) / timing.median,
                         timing.median, timing.min, vs_off,
                         match ? 1.0 : 0.0},
                        " %10.4g");
                    json.add(
                        name, timing, count,
                        {{"steal", steal ? 1.0 : 0.0},
                         {"shards_stolen",
                          static_cast<double>(stolen)},
                         {"shards_requeued",
                          static_cast<double>(requeued)},
                         {"tail_speedup_vs_no_steal", vs_off},
                         {"match", match ? 1.0 : 0.0},
                         {"straggler_slow_us_per_point", 5000.0}});
                    if (steal && stolen > 0)
                        std::printf("    steal on: %zu tail(s) "
                                    "relocated, %.2fx faster than "
                                    "steal off\n",
                                    stolen, vs_off);
                }
            }
            // The pool's shutdown told the straggler to exit.
            if (pid > 0)
                ::waitpid(pid, nullptr, 0);
            if (!joined) {
                std::printf("  (straggler worker failed to join; "
                            "skipping steal study)\n");
                break;
            }
        }
    }

    // Sharded reconstruction for context: the full pipeline (sampling
    // + distributed execution + FISTA solve) on the same circuit.
    {
        OscarOptions plain;
        plain.samplingFraction = 0.25;
        plain.numThreads = 1;
        plain.distributed.numWorkers = -1; // pin the baseline local
        const GridSpec grid = GridSpec::qaoaP2(5, 7);

        OscarResult plain_result;
        const auto plain_timing = bench::timeRepeated(kStudyReps, [&] {
            StatevectorCost cost = sweep.make();
            plain_result = Oscar::reconstruct(grid, cost, plain);
        });
        bench::row("reconstruct 1 proc",
                   {static_cast<double>(plain_result.queriesUsed) /
                        plain_timing.median,
                    plain_timing.median, plain_timing.min, 1.0, 1.0},
                   " %10.4g");
        json.add("reconstruct single process", plain_timing,
                 plain_result.queriesUsed,
                 {{"workers", 1.0}, {"speedup_vs_single", 1.0}});

        OscarOptions distributed = plain;
        distributed.distributed.numWorkers = 4;
        distributed.distributed.minPointsToDistribute = 1;
        OscarResult dist_result;
        const auto dist_timing = bench::timeRepeated(kStudyReps, [&] {
            StatevectorCost cost = sweep.make();
            dist_result = Oscar::reconstruct(grid, cost, distributed);
        });
        const bool match = identical(dist_result.samples.values,
                                     plain_result.samples.values);
        bench::row("reconstruct 4 workers",
                   {static_cast<double>(dist_result.queriesUsed) /
                        dist_timing.median,
                    dist_timing.median, dist_timing.min,
                    plain_timing.median / dist_timing.median,
                    match ? 1.0 : 0.0},
                   " %10.4g");
        json.add("reconstruct 4 workers", dist_timing,
                 dist_result.queriesUsed,
                 {{"workers", 4.0},
                  {"speedup_vs_single",
                   plain_timing.median / dist_timing.median},
                  {"match", match ? 1.0 : 0.0},
                  {"points_remote",
                   static_cast<double>(
                       dist_result.execution.pointsRemote)}});
    }

    json.write("BENCH_dist.json");
}

/**
 * Observability study (BENCH_obs.json): the same engine sweep with
 * instrumentation off and on. The untraced row is the baseline; the
 * traced row reports its overhead ratio plus per-batch latency
 * percentiles read from the live engine.batch.latency.ns histogram
 * (the log2-bucket registry the metrics half of src/obs/ keeps), so
 * the p50/p95/p99 columns exercise exactly the code path `oscar-client
 * metrics` scrapes. Acceptance guard: instrumentation must not cost a
 * measurable slowdown when disabled, and single-digit percent when on.
 */
void
runObsStudy()
{
    constexpr int kStudyReps = 5;
    const SweepCase sweep(12, 1, GridSpec::qaoaP1(30, 60));
    const std::size_t num_points = sweep.points.size();

    bench::header("observability overhead: p=1 QAOA, 12 qubits, " +
                  std::to_string(num_points) +
                  "-point engine sweep (median of " +
                  std::to_string(kStudyReps) + ")");
    bench::columns("mode", {"pts/s", "median_s", "p50_ms", "p95_ms",
                            "p99_ms", "overhead"});
    bench::JsonReport json("bench_engine/obs");

    ExecutionEngine engine(2);

    obs::setTracing(false);
    obs::setMetrics(false);
    std::vector<double> reference;
    bench::TimingStats untraced;
    {
        StatevectorCost cost = sweep.make();
        untraced = bench::timeRepeated(kStudyReps, [&] {
            cost.configureKernel(KernelOptions{}); // cold cache per rep
            reference = engine.submit(cost, sweep.points).get();
        });
        bench::row("untraced",
                   {static_cast<double>(num_points) / untraced.median,
                    untraced.median, 0.0, 0.0, 0.0, 1.0},
                   " %10.4g");
        json.add("untraced", untraced, num_points,
                 {{"overhead_vs_untraced", 1.0}});
    }

    obs::setTracing(true);
    obs::setMetrics(true);
    obs::Histogram& latency =
        obs::Registry::global().histogram("engine.batch.latency.ns");
    const obs::HistogramSnapshot before = latency.snapshot();
    const std::uint64_t dropped_before =
        obs::Tracer::global().droppedSpans();
    std::vector<double> values;
    bench::TimingStats traced;
    {
        StatevectorCost cost = sweep.make();
        traced = bench::timeRepeated(kStudyReps, [&] {
            cost.configureKernel(KernelOptions{});
            values = engine.submit(cost, sweep.points).get();
        });
    }
    obs::setTracing(false);
    obs::setMetrics(false);

    const obs::HistogramSnapshot delta = latency.snapshot() - before;
    const double p50_ms = delta.quantile(0.50) / 1e6;
    const double p95_ms = delta.quantile(0.95) / 1e6;
    const double p99_ms = delta.quantile(0.99) / 1e6;
    const double overhead = traced.median / untraced.median;
    const bool match = identical(values, reference);
    bench::row("traced",
               {static_cast<double>(num_points) / traced.median,
                traced.median, p50_ms, p95_ms, p99_ms, overhead},
               " %10.4g");
    std::printf("  (batch latency from the metrics histogram: "
                "p50 %.2f ms, p95 %.2f ms, p99 %.2f ms over %llu "
                "batches; %llu span(s) dropped by ring wrap; "
                "values %s)\n",
                p50_ms, p95_ms, p99_ms,
                static_cast<unsigned long long>(delta.count),
                static_cast<unsigned long long>(
                    obs::Tracer::global().droppedSpans() -
                    dropped_before),
                match ? "bit-identical" : "DIVERGED");
    json.add("traced", traced, num_points,
             {{"overhead_vs_untraced", overhead},
              {"p50_batch_ms", p50_ms},
              {"p95_batch_ms", p95_ms},
              {"p99_batch_ms", p99_ms},
              {"batches_observed", static_cast<double>(delta.count)},
              {"match", match ? 1.0 : 0.0}});
    json.write("BENCH_obs.json");
}

/** Overlap workload: reconstruct options for barrier vs streaming. */
struct OverlapCase
{
    Graph graph;
    GridSpec grid;
    OscarOptions barrier;
    OscarOptions overlapped;

    explicit OverlapCase(int num_qubits)
        : graph(SweepCase::makeGraph(num_qubits)),
          grid(GridSpec::qaoaP1(30, 60))
    {
        barrier.samplingFraction = 0.1;
        barrier.numThreads = 0; // hardware
        // Few shards + small warm-up budgets: on a multi-core host the
        // warm-ups hide entirely behind in-flight shards; on a 1-core
        // host they are bounded by the continuation carry-over to
        // roughly a cold solve's work, so the overlapped pipeline is
        // no slower than the barrier either way.
        overlapped = barrier;
        overlapped.streaming.shards = 4;
        overlapped.streaming.warmupIterations = 10;
    }

    StatevectorCost
    make() const
    {
        return StatevectorCost(qaoaCircuit(graph, 1),
                               maxcutHamiltonian(graph));
    }
};

#ifndef OSCAR_HAVE_GBENCH

constexpr int kReps = 3;

struct Mode
{
    std::string name;
    bench::TimingStats timing;
    bool identical;
};

void
report(const std::vector<Mode>& modes, std::size_t num_points)
{
    bench::columns("mode",
                   {"pts/s", "median_s", "min_s", "speedup", "identical"});
    const double base = modes.front().timing.median;
    for (const Mode& m : modes) {
        bench::row(m.name,
                   {static_cast<double>(num_points) / m.timing.median,
                    m.timing.median, m.timing.min, base / m.timing.median,
                    m.identical ? 1.0 : 0.0},
                   " %10.4g");
    }
}

/**
 * Axis-major sweep benchmark: every point of `grid` for a depth-p QAOA
 * circuit, ordered by the backend's own batch order hint (the order
 * the landscape sampler emits).
 */
void
runSweep(int num_qubits, int depth, const GridSpec& grid)
{
    const SweepCase sweep(num_qubits, depth, grid);
    const auto& points = sweep.points;
    const std::size_t num_points = points.size();

    bench::header("p=" + std::to_string(depth) + " QAOA, " +
                  std::to_string(num_qubits) + " qubits, axis-major " +
                  std::to_string(num_points) + "-point sweep (median of " +
                  std::to_string(kReps) + ")");

    KernelOptions cache_off;
    cache_off.prefixCache = false;

    std::vector<Mode> modes;

    // 1. Scalar reference, cache off.
    std::vector<double> reference;
    {
        StatevectorCost cost = sweep.make();
        cost.configureKernel(cache_off);
        const auto timing = bench::timeRepeated(kReps, [&] {
            reference.clear();
            reference.reserve(points.size());
            for (const auto& p : points)
                reference.push_back(cost.evaluate(p));
        });
        modes.push_back({"scalar (no cache)", timing, true});
    }

    // 2. Batched path: one submission, cache off.
    {
        StatevectorCost cost = sweep.make();
        cost.configureKernel(cache_off);
        std::vector<double> values;
        const auto timing = bench::timeRepeated(
            kReps, [&] { values = cost.evaluateBatch(points); });
        modes.push_back(
            {"batched (no cache)", timing, identical(values, reference)});
    }

    // 3. Prefix-cached batch. configureKernel clears the cache, so
    // every rep pays the cold cache like a fresh sweep would, without
    // timing circuit lowering / diagonal-table construction.
    {
        StatevectorCost cost = sweep.make();
        std::vector<double> values;
        std::size_t hits = 0, lookups = 0;
        const auto timing = bench::timeRepeated(kReps, [&] {
            cost.configureKernel(KernelOptions{});
            values = cost.evaluateBatch(points);
            hits = cost.prefixCache().hits();
            lookups = cost.prefixCache().lookups();
        });
        modes.push_back(
            {"prefix-cached batch", timing, identical(values, reference)});
        std::printf("  (cache: %zu hits / %zu lookups)\n", hits, lookups);
    }

    // 4. Engine with growing worker pools, prefix cache on (replica
    // clones start cold each submission).
    const unsigned hw = std::max(1u, std::thread::hardware_concurrency());
    for (unsigned threads = 2; threads <= hw && threads <= 8;
         threads *= 2) {
        ExecutionEngine engine(static_cast<int>(threads));
        StatevectorCost cost = sweep.make();
        std::vector<double> values;
        const auto timing = bench::timeRepeated(kReps, [&] {
            cost.configureKernel(KernelOptions{});
            values = engine.submit(cost, points).get();
        });
        modes.push_back({"engine x" + std::to_string(threads) + " cached",
                         timing, identical(values, reference)});
    }

    report(modes, num_points);
}

/**
 * Async-overlap vs synchronous-barrier reconstruction: same samples,
 * same engine width; the streaming pipeline hides FISTA warm-ups
 * behind in-flight execution shards.
 */
void
runOverlapStudy(int num_qubits)
{
    const OverlapCase study(num_qubits);
    bench::header(
        "Oscar::reconstruct overlap: " + std::to_string(num_qubits) +
        " qubits, 30x60 grid, 10% samples, " +
        std::to_string(study.overlapped.streaming.shards) +
        " shards (median of " + std::to_string(kReps) + ")");

    std::vector<Mode> modes;
    OscarResult barrier_result, overlap_result;
    {
        const auto timing = bench::timeRepeated(kReps, [&] {
            StatevectorCost cost = study.make();
            barrier_result =
                Oscar::reconstruct(study.grid, cost, study.barrier);
        });
        modes.push_back({"synchronous barrier", timing, true});
    }
    {
        const auto timing = bench::timeRepeated(kReps, [&] {
            StatevectorCost cost = study.make();
            overlap_result =
                Oscar::reconstruct(study.grid, cost, study.overlapped);
        });
        modes.push_back({"streaming overlap", timing,
                         identical(overlap_result.samples.values,
                                   barrier_result.samples.values)});
    }
    report(modes, barrier_result.samples.size());
    std::printf("  (execution: %zu pts, prefix cache %zu/%zu hits)\n",
                overlap_result.execution.pointsCompleted,
                overlap_result.execution.kernel.cacheHits,
                overlap_result.execution.kernel.cacheLookups);
}

#endif // !OSCAR_HAVE_GBENCH

} // namespace
} // namespace oscar

#ifdef OSCAR_HAVE_GBENCH

namespace oscar {
namespace {

void
BM_BatchedNoCache(benchmark::State& state)
{
    const SweepCase sweep(static_cast<int>(state.range(0)),
                          static_cast<int>(state.range(1)),
                          state.range(1) == 1 ? GridSpec::qaoaP1(30, 60)
                                              : GridSpec::qaoaP2(5, 7));
    StatevectorCost cost = sweep.make();
    KernelOptions cache_off;
    cache_off.prefixCache = false;
    cost.configureKernel(cache_off);
    for (auto _ : state)
        benchmark::DoNotOptimize(cost.evaluateBatch(sweep.points));
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations() *
                                  sweep.points.size()));
}

/** Cache-off batch reference for the bit-identity guards below. */
std::vector<double>
scalarReference(const SweepCase& sweep)
{
    StatevectorCost cost = sweep.make();
    KernelOptions cache_off;
    cache_off.prefixCache = false;
    cost.configureKernel(cache_off);
    return cost.evaluateBatch(sweep.points);
}

void
BM_PrefixCachedBatch(benchmark::State& state)
{
    const SweepCase sweep(static_cast<int>(state.range(0)),
                          static_cast<int>(state.range(1)),
                          state.range(1) == 1 ? GridSpec::qaoaP1(30, 60)
                                              : GridSpec::qaoaP2(5, 7));
    const std::vector<double> reference = scalarReference(sweep);
    StatevectorCost cost = sweep.make();
    std::vector<double> values;
    for (auto _ : state) {
        cost.configureKernel(KernelOptions{}); // cold cache per rep
        values = cost.evaluateBatch(sweep.points);
        benchmark::DoNotOptimize(values);
    }
    if (!identical(values, reference))
        state.SkipWithError("prefix-cached batch diverged from scalar");
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations() *
                                  sweep.points.size()));
}

void
BM_EngineCachedSubmit(benchmark::State& state)
{
    const SweepCase sweep(12, 2, GridSpec::qaoaP2(5, 7));
    const std::vector<double> reference = scalarReference(sweep);
    ExecutionEngine engine(static_cast<int>(state.range(0)));
    StatevectorCost cost = sweep.make();
    std::vector<double> values;
    for (auto _ : state) {
        cost.configureKernel(KernelOptions{});
        values = engine.submit(cost, sweep.points).get();
        benchmark::DoNotOptimize(values);
    }
    if (!identical(values, reference))
        state.SkipWithError("threaded submission diverged from scalar");
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations() *
                                  sweep.points.size()));
}

void
BM_ReconstructBarrier(benchmark::State& state)
{
    const OverlapCase study(static_cast<int>(state.range(0)));
    for (auto _ : state) {
        StatevectorCost cost = study.make();
        benchmark::DoNotOptimize(
            Oscar::reconstruct(study.grid, cost, study.barrier));
    }
}

void
BM_ReconstructOverlapped(benchmark::State& state)
{
    const OverlapCase study(static_cast<int>(state.range(0)));
    for (auto _ : state) {
        StatevectorCost cost = study.make();
        benchmark::DoNotOptimize(
            Oscar::reconstruct(study.grid, cost, study.overlapped));
    }
}

BENCHMARK(BM_BatchedNoCache)
    ->Args({12, 1})
    ->Args({12, 2})
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_PrefixCachedBatch)
    ->Args({12, 1})
    ->Args({12, 2})
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_EngineCachedSubmit)
    ->Arg(2)
    ->Arg(4)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_ReconstructBarrier)->Arg(14)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_ReconstructOverlapped)
    ->Arg(14)
    ->Unit(benchmark::kMillisecond);

} // namespace
} // namespace oscar

int
main(int argc, char** argv)
{
    ::benchmark::Initialize(&argc, argv);
    if (::benchmark::ReportUnrecognizedArguments(argc, argv))
        return 1;
    // The kernel-layer and distributed acceptance studies run in both
    // modes and write BENCH_kernels.json / BENCH_dist.json for the
    // cross-PR perf trajectory; they run first so the reports exist
    // regardless of --benchmark_filter. OSCAR_BENCH_ONLY=<substring>
    // narrows to matching studies (the distributed CI leg runs only
    // "dist").
    if (oscar::benchEnabled("kernels"))
        oscar::runKernelStudy();
    if (oscar::benchEnabled("dist"))
        oscar::runDistStudy();
    if (oscar::benchEnabled("obs"))
        oscar::runObsStudy();
    if (std::getenv("OSCAR_BENCH_ONLY"))
        return 0;
    ::benchmark::RunSpecifiedBenchmarks();
    ::benchmark::Shutdown();
    return 0;
}

#else // !OSCAR_HAVE_GBENCH

int
main()
{
    const unsigned hw = std::thread::hardware_concurrency();
    std::printf("hardware_concurrency: %u\n", hw);
    if (hw <= 1) {
        std::printf("note: single-core host; thread speedups need "
                    "cores, expect ~1x there\n");
    }

    // OSCAR_BENCH_ONLY=<substring> narrows to matching studies (the
    // distributed CI leg runs only "dist").
    if (oscar::benchEnabled("sweeps")) {
        // The paper's p=1 landscape shape (beta x gamma), scalar-heavy.
        oscar::runSweep(12, 1, oscar::GridSpec::qaoaP1(30, 60));
        // The acceptance sweep: p=2, >= 12 qubits, axis-major order.
        oscar::runSweep(12, 2, oscar::GridSpec::qaoaP2(5, 7));
        oscar::runSweep(16, 1, oscar::GridSpec::qaoaP1(15, 30));
    }

    // Kernel-layer breakdown on the acceptance sweep; also writes
    // BENCH_kernels.json.
    if (oscar::benchEnabled("kernels"))
        oscar::runKernelStudy();

    // Multi-process sharding; writes BENCH_dist.json.
    if (oscar::benchEnabled("dist"))
        oscar::runDistStudy();

    // Instrumentation overhead + live latency percentiles; writes
    // BENCH_obs.json.
    if (oscar::benchEnabled("obs"))
        oscar::runObsStudy();

    // Async pipeline overlap vs synchronous barrier.
    if (oscar::benchEnabled("overlap"))
        oscar::runOverlapStudy(14);
    return 0;
}

#endif // OSCAR_HAVE_GBENCH
