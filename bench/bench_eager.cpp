/**
 * @file
 * Section 5.2 reproduction: eager reconstruction under heavy-tailed
 * QPU latency.
 *
 * Setup: 4 simulated QPUs with identical noise, lognormal execution
 * latency with tail sigma 1.2 (p99/median ~ 10-30x, the paper's
 * observed range). A 10% sample of the 50x100 grid is scheduled
 * round-robin. We sweep the eager timeout quantile and report the
 * makespan reduction vs. the reconstruction-accuracy cost.
 *
 * Expected shape: dropping the slowest few percent of samples cuts
 * the makespan by a large factor (stragglers dominate) while the
 * NRMSE barely moves -- the flat accuracy-vs-fraction tradeoff of
 * Fig. 4 in action.
 */

#include <cstdio>
#include <memory>

#include "bench_common.h"
#include "src/parallel/eager.h"

namespace {

using namespace oscar;

} // namespace

int
main()
{
    std::printf("Eager reconstruction: makespan vs accuracy under "
                "heavy-tailed latency (50 QPUs, 10%% of 50x100 grid)\n");
    bench::columns("timeout quantile",
                   {"deadline", "makespan", "kept", "NRMSE"});

    Rng rng(5);
    const Graph g = random3RegularGraph(16, rng);
    const NoiseModel noise = NoiseModel::depolarizing(0.001, 0.005);
    const GridSpec grid = GridSpec::qaoaP1();

    AnalyticQaoaCost truth_cost(g, noise);
    const Landscape truth =
        Landscape::gridSearch(grid, truth_cost, &bench::engine());

    std::vector<QpuDevice> devices;
    for (int k = 0; k < 50; ++k) {
        QpuDevice d;
        d.name = "qpu-" + std::to_string(k);
        d.noise = noise;
        d.cost = std::make_shared<AnalyticQaoaCost>(g, noise);
        d.latency = {0.0, 1.0, 1.2};
        devices.push_back(std::move(d));
    }

    Rng sample_rng(87);
    const auto indices =
        chooseSampleIndices(grid.numPoints(), 0.10, sample_rng);
    const auto run =
        runParallelSampling(grid, devices, indices, sample_rng,
                            Assignment::RoundRobin, {}, &bench::engine());

    for (double quantile : {1.0, 0.99, 0.95, 0.90, 0.80}) {
        const auto outcome = eagerCutoffQuantile(run, quantile);
        const Landscape recon = Oscar::reconstructFromSamples(
            grid, outcome.retained);
        bench::row("q = " + std::to_string(quantile).substr(0, 4),
                   {outcome.deadline, outcome.fullMakespan,
                    outcome.retainedFraction,
                    nrmse(truth.values(), recon.values())});
    }
    std::printf("\nexpected: deadline shrinks several-fold vs makespan "
                "while NRMSE stays within ~2x of the full-sample "
                "error\n");
    return 0;
}
