/**
 * @file
 * Shared helpers for the benchmark binaries: table printing and the
 * standard workloads of the paper's evaluation, with the scaled-down
 * parameter choices documented in EXPERIMENTS.md.
 */

#ifndef OSCAR_BENCH_BENCH_COMMON_H
#define OSCAR_BENCH_BENCH_COMMON_H

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <string>
#include <utility>
#include <vector>

#include "src/backend/analytic_qaoa.h"
#include "src/common/rng.h"
#include "src/common/stats.h"
#include "src/core/oscar.h"
#include "src/graph/generators.h"
#include "src/landscape/landscape.h"
#include "src/landscape/metrics.h"

namespace oscar {
namespace bench {

/**
 * Shared hardware-sized engine for the benchmark binaries: every
 * reconstruction below fans its circuit executions out over this pool.
 * Results are bit-identical to serial runs by the engine's determinism
 * contract, so the published numbers do not depend on the host.
 */
inline ExecutionEngine&
engine()
{
    static ExecutionEngine instance(0);
    return instance;
}

/** Seconds elapsed since a steady_clock time point. */
inline double
secondsSince(std::chrono::steady_clock::time_point start)
{
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start)
        .count();
}

/** Repeated-run wall-clock statistics (seconds). */
struct TimingStats
{
    double median = 0.0;
    double min = 0.0;
    int reps = 0;
};

/**
 * Run `fn` `reps` times and report the median and minimum wall-clock
 * seconds. Single-shot timing is noise-bound on shared CI hosts; the
 * median is the headline number (robust to one-off stalls) and the
 * minimum approximates the noise-free cost.
 */
template <typename Fn>
TimingStats
timeRepeated(int reps, Fn&& fn)
{
    std::vector<double> seconds;
    seconds.reserve(static_cast<std::size_t>(reps));
    for (int r = 0; r < reps; ++r) {
        const auto start = std::chrono::steady_clock::now();
        fn();
        seconds.push_back(secondsSince(start));
    }
    std::sort(seconds.begin(), seconds.end());
    TimingStats stats;
    stats.reps = reps;
    stats.min = seconds.front();
    const std::size_t mid = seconds.size() / 2;
    stats.median = seconds.size() % 2 == 1
                       ? seconds[mid]
                       : 0.5 * (seconds[mid - 1] + seconds[mid]);
    return stats;
}

/**
 * Machine-readable benchmark report: one JSON file of {case, median_s,
 * min_s, ...} rows, so the perf trajectory of a hot path is diffable
 * across PRs (bench_engine writes BENCH_kernels.json).
 */
class JsonReport
{
  public:
    explicit JsonReport(std::string bench) : bench_(std::move(bench)) {}

    /** Record one case; `extra` rows append as "key": value pairs. */
    void
    add(const std::string& name, const TimingStats& timing,
        std::size_t points,
        const std::vector<std::pair<std::string, double>>& extra = {})
    {
        Case c;
        c.name = name;
        c.timing = timing;
        c.points = points;
        c.extra = extra;
        cases_.push_back(std::move(c));
    }

    /** Write the report; returns false (and warns) on I/O failure. */
    bool
    write(const std::string& path) const
    {
        std::FILE* f = std::fopen(path.c_str(), "w");
        if (!f) {
            std::fprintf(stderr, "warning: cannot write %s\n",
                         path.c_str());
            return false;
        }
        std::fprintf(f, "{\n  \"bench\": \"%s\",\n  \"cases\": [\n",
                     bench_.c_str());
        for (std::size_t i = 0; i < cases_.size(); ++i) {
            const Case& c = cases_[i];
            std::fprintf(f,
                         "    {\"name\": \"%s\", \"median_s\": %.9g, "
                         "\"min_s\": %.9g, \"reps\": %d, "
                         "\"points\": %zu, \"points_per_s\": %.9g",
                         c.name.c_str(), c.timing.median, c.timing.min,
                         c.timing.reps, c.points,
                         c.timing.median > 0.0
                             ? static_cast<double>(c.points) /
                                   c.timing.median
                             : 0.0);
            for (const auto& [key, value] : c.extra)
                std::fprintf(f, ", \"%s\": %.9g", key.c_str(), value);
            std::fprintf(f, "}%s\n",
                         i + 1 < cases_.size() ? "," : "");
        }
        std::fprintf(f, "  ]\n}\n");
        std::fclose(f);
        return true;
    }

  private:
    struct Case
    {
        std::string name;
        TimingStats timing;
        std::size_t points = 0;
        std::vector<std::pair<std::string, double>> extra;
    };

    std::string bench_;
    std::vector<Case> cases_;
};

/** Print a horizontal rule sized to a title. */
inline void
header(const std::string& title)
{
    std::printf("\n=== %s ===\n", title.c_str());
}

/** Print one row of labeled doubles. */
inline void
row(const std::string& label, const std::vector<double>& values,
    const char* fmt = " %10.4f")
{
    std::printf("%-28s", label.c_str());
    for (double v : values)
        std::printf(fmt, v);
    std::printf("\n");
}

/** Print a row of column labels. */
inline void
columns(const std::string& label, const std::vector<std::string>& names)
{
    std::printf("%-28s", label.c_str());
    for (const auto& n : names)
        std::printf(" %10s", n.c_str());
    std::printf("\n");
}

/**
 * Median NRMSE of OSCAR reconstructions of `truth` over several sample
 * seeds (Fig. 4 draws quartile bands over instances; we aggregate over
 * seeds per instance elsewhere).
 */
inline double
reconstructionNrmse(const Landscape& truth, double fraction,
                    std::uint64_t seed)
{
    OscarOptions options;
    options.samplingFraction = fraction;
    options.seed = seed;
    const auto result =
        Oscar::reconstructFromLandscape(truth, options, &engine());
    return nrmse(truth.values(), result.reconstructed.values());
}

} // namespace bench
} // namespace oscar

#endif // OSCAR_BENCH_BENCH_COMMON_H
