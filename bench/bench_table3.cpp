/**
 * @file
 * Table 3 reproduction: reconstruction errors for the hydrogen and
 * lithium hydride molecules with Two-local and UCCSD ansatzes.
 *
 * Same 2-varying-parameter slice protocol as Table 2. The paper's
 * headline contrast is the H2/UCCSD pair: 14 points per axis gives
 * NRMSE 0.345 while 50 points gives 0.005 -- denser grids make the
 * periodic structure resolvable. We reproduce all five rows.
 */

#include <cstdio>
#include <numbers>

#include "bench_common.h"
#include "src/ansatz/two_local.h"
#include "src/ansatz/uccsd.h"
#include "src/backend/statevector_backend.h"
#include "src/hamiltonian/molecules.h"

namespace {

using namespace oscar;

double
sliceError(const Circuit& circuit, const PauliSum& ham,
           std::size_t points_per_dim, int repeats, std::uint64_t seed)
{
    const double pi = std::numbers::pi;
    StatevectorCost cost(circuit, ham);
    const int dim = circuit.numParams();
    Rng rng(seed);
    std::vector<double> errors;

    for (int rep = 0; rep < repeats; ++rep) {
        const int va = static_cast<int>(rng.uniformInt(dim));
        int vb = static_cast<int>(rng.uniformInt(dim - 1));
        if (vb >= va)
            ++vb;
        std::vector<double> base(dim);
        for (auto& p : base)
            p = rng.uniform(-pi, pi);

        const GridSpec grid(
            {{-pi, pi, points_per_dim}, {-pi, pi, points_per_dim}});
        LambdaCost slice(2, [&](const std::vector<double>& p) {
            std::vector<double> full = base;
            full[va] = p[0];
            full[vb] = p[1];
            return cost.evaluate(full);
        });
        const Landscape truth = Landscape::gridSearch(grid, slice);

        OscarOptions options;
        options.samplingFraction = 0.3;
        options.seed = seed + 1000 + rep;
        const auto recon = Oscar::reconstructFromLandscape(truth, options);
        if (stats::iqr(truth.values().flat()) < 1e-9)
            continue;
        errors.push_back(
            nrmse(truth.values(), recon.reconstructed.values()));
    }
    return errors.empty() ? 0.0 : stats::mean(errors);
}

} // namespace

int
main()
{
    std::printf("Table 3: molecular landscape reconstruction errors "
                "(mean NRMSE, 20 slices, 30%% sampling)\n");
    bench::columns("molecule/ansatz",
                   {"qubits", "params", "grid/dim", "NRMSE"});

    const PauliSum h2 = h2Hamiltonian();
    const PauliSum lih = lihHamiltonian();

    struct Row
    {
        const char* name;
        Circuit circuit;
        const PauliSum* ham;
        std::size_t samples;
    };
    const Row rows[] = {
        {"H2  Two-local", twoLocalCircuit(2, 1), &h2, 14},
        {"LiH Two-local", twoLocalCircuit(4, 1), &lih, 7},
        {"H2  UCCSD (14 pts)", uccsdCircuit(2), &h2, 14},
        {"H2  UCCSD (50 pts)", uccsdCircuit(2), &h2, 50},
        {"LiH UCCSD", uccsdCircuit(4), &lih, 7},
    };

    int row_id = 0;
    for (const Row& r : rows) {
        const double err =
            sliceError(r.circuit, *r.ham, r.samples, 20, 7 + row_id);
        std::printf("%-28s %10d %10d %10zu %10.4f\n", r.name,
                    r.circuit.numQubits(), r.circuit.numParams(),
                    r.samples, err);
        ++row_id;
    }
    std::printf("\npaper reference: 0.171, 0.678, 0.345, 0.005, 0.856\n");
    return 0;
}
