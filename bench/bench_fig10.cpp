/**
 * @file
 * Figure 10 reproduction: the three landscape metrics (second
 * derivative, variance of gradients, landscape variance) computed on
 * original and OSCAR-reconstructed landscapes, for unmitigated and
 * ZNE-mitigated (Richardson and linear) execution.
 *
 * Expected shape (paper): Richardson's D2 is dramatically larger than
 * linear's and unmitigated's, on both original and reconstructed
 * landscapes; VoG and variance are comparable between the two ZNE
 * models (mitigation restores contrast that noise flattened), and the
 * reconstruction preserves all three orderings.
 */

#include <cstdio>

#include "bench_common.h"
#include "src/mitigation/zne.h"

namespace {

using namespace oscar;

} // namespace

int
main()
{
    std::printf("Figure 10: landscape metrics, original vs "
                "reconstructed (16 qubits, p=1, noise 0.001/0.02)\n");

    Rng rng(10);
    const Graph g = random3RegularGraph(16, rng);
    const NoiseModel noise = NoiseModel::depolarizing(0.001, 0.02);
    const GridSpec grid = GridSpec::qaoaP1(40, 80);
    const std::size_t shots = 1024;
    const double sigma1 = 2.0;

    // Unmitigated noisy execution with shot noise.
    auto unmitigated = std::make_shared<ShotNoiseCost>(
        std::make_shared<AnalyticQaoaCost>(g, noise), shots, sigma1, 77);
    auto richardson = makeZneAnalyticCost(
        g, noise, {1.0, 2.0, 3.0}, ZneExtrapolation::Richardson, shots,
        sigma1, 171);
    auto linear = makeZneAnalyticCost(
        g, noise, {1.0, 3.0}, ZneExtrapolation::Linear, shots, sigma1,
        272);

    struct Entry
    {
        const char* name;
        Landscape original;
        Landscape reconstructed;
    };
    OscarOptions options;
    options.samplingFraction = 0.10;

    std::vector<Entry> entries;
    for (auto& [name, cost] :
         std::vector<std::pair<const char*,
                               std::shared_ptr<CostFunction>>>{
             {"Unmitigated", unmitigated},
             {"Richardson", richardson},
             {"Linear", linear}}) {
        Landscape original = Landscape::gridSearch(grid, *cost);
        Landscape recon =
            Oscar::reconstructFromLandscape(original, options)
                .reconstructed;
        entries.push_back({name, std::move(original), std::move(recon)});
    }

    bench::columns("metric / mitigation",
                   {"Unmit.", "Richardson", "Linear"});
    auto print_metric = [&](const char* metric,
                            auto&& fn) {
        std::vector<double> orig, recon;
        for (const Entry& e : entries) {
            orig.push_back(fn(e.original.values()));
            recon.push_back(fn(e.reconstructed.values()));
        }
        bench::row(std::string(metric) + " original", orig);
        bench::row(std::string(metric) + " reconstructed", recon);
    };
    print_metric("Second derivative",
                 [](const NdArray& v) { return secondDerivativeMetric(v); });
    print_metric("Variance of gradient",
                 [](const NdArray& v) { return varianceOfGradients(v); });
    print_metric("Variance of landscape",
                 [](const NdArray& v) { return landscapeVariance(v); });

    std::printf("\npaper reference: Richardson D2 >> others; VoG and "
                "variance comparable across ZNE models; orderings "
                "preserved by reconstruction\n");
    return 0;
}
