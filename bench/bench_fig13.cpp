/**
 * @file
 * Figure 13 reproduction: choosing an optimizer on a Richardson-
 * extrapolated (jagged) landscape using only the interpolated OSCAR
 * reconstruction.
 *
 * The paper's example: on the Richardson landscape the gradient-free
 * COBYLA outperforms the gradient-based ADAM, because the salt-like
 * jaggedness corrupts finite-difference gradients. We reproduce the
 * comparison from several random starts and report the final cost
 * each optimizer reaches (lower is better) plus how often COBYLA wins.
 */

#include <cstdio>

#include "bench_common.h"
#include "src/interp/bicubic.h"
#include "src/mitigation/zne.h"
#include "src/optimize/adam.h"
#include "src/optimize/cobyla.h"

namespace {

using namespace oscar;

} // namespace

int
main()
{
    std::printf("Figure 13: optimizer choice on a Richardson-"
                "extrapolated landscape (16 qubits, p=1)\n");

    Rng rng(13);
    const Graph g = random3RegularGraph(16, rng);
    const NoiseModel noise = NoiseModel::depolarizing(0.001, 0.02);
    const GridSpec grid = GridSpec::qaoaP1(40, 80);

    // 256 shots: the Richardson noise amplification makes the
    // landscape strongly salt-like, as in the paper's Fig. 9(A).
    auto richardson = makeZneAnalyticCost(
        g, noise, {1.0, 2.0, 3.0}, ZneExtrapolation::Richardson, 256,
        2.0, 401);
    const Landscape ls = Landscape::gridSearch(grid, *richardson);

    OscarOptions options;
    options.samplingFraction = 0.10;
    const auto recon = Oscar::reconstructFromLandscape(ls, options);
    InterpolatedLandscapeCost interp(recon.reconstructed);

    // The best grid value is the target both optimizers chase.
    const double target = ls.values().min();
    std::printf("reconstructed-landscape minimum (grid): %.4f\n",
                target);

    bench::columns("start", {"ADAM", "COBYLA"});
    int cobyla_wins = 0;
    double adam_sum = 0.0, cobyla_sum = 0.0;
    const int trials = 10;
    for (int trial = 0; trial < trials; ++trial) {
        Rng init_rng(500 + trial);
        const std::vector<double> start{
            init_rng.uniform(grid.axis(0).lo, grid.axis(0).hi),
            init_rng.uniform(grid.axis(1).lo, grid.axis(1).hi)};

        Adam adam;
        Cobyla cobyla;
        const auto run_adam = adam.minimize(interp, start);
        const auto run_cobyla = cobyla.minimize(interp, start);
        cobyla_wins += run_cobyla.bestValue < run_adam.bestValue;
        adam_sum += run_adam.bestValue;
        cobyla_sum += run_cobyla.bestValue;
        bench::row("start #" + std::to_string(trial),
                   {run_adam.bestValue, run_cobyla.bestValue});
    }
    std::printf("\nmean final cost: ADAM %.4f, COBYLA %.4f; COBYLA "
                "lower in %d/%d trials\n",
                adam_sum / trials, cobyla_sum / trials, cobyla_wins,
                trials);
    std::printf("paper reference: gradient-free COBYLA beats ADAM on "
                "the jagged Richardson landscape\n");
    return 0;
}
