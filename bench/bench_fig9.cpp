/**
 * @file
 * Figure 9 reproduction: Richardson vs. linear ZNE landscapes on a
 * depth-1, 16-qubit MaxCut instance with depolarizing noise (1q 0.001,
 * 2q 0.02) and finite shots.
 *
 * The figure's visual claim is that Richardson extrapolation ({1,2,3}
 * scaling) produces "salt-like" jaggedness while linear extrapolation
 * ({1,3}) stays smooth, and that OSCAR reconstructions (10% sampling)
 * preserve the difference. We quantify the visual with the D2
 * roughness metric and the distance from the ideal landscape.
 */

#include <cstdio>

#include "bench_common.h"
#include "src/landscape/sparsity.h"
#include "src/mitigation/zne.h"

namespace {

using namespace oscar;

} // namespace

int
main()
{
    std::printf("Figure 9: ZNE extrapolation model comparison "
                "(16 qubits, p=1, noise 0.001/0.02, 1024 shots)\n");

    Rng rng(9);
    const Graph g = random3RegularGraph(16, rng);
    const NoiseModel noise = NoiseModel::depolarizing(0.001, 0.02);
    const GridSpec grid = GridSpec::qaoaP1(40, 80);

    // Ideal (noise-free, infinite shots) reference.
    AnalyticQaoaCost ideal_cost(g);
    const Landscape ideal = Landscape::gridSearch(grid, ideal_cost);

    const std::size_t shots = 1024;
    const double sigma1 = 2.0; // single-shot cost std for this scale

    auto richardson = makeZneAnalyticCost(
        g, noise, {1.0, 2.0, 3.0}, ZneExtrapolation::Richardson, shots,
        sigma1, 101);
    auto linear = makeZneAnalyticCost(
        g, noise, {1.0, 3.0}, ZneExtrapolation::Linear, shots, sigma1,
        202);

    const Landscape ls_rich = Landscape::gridSearch(grid, *richardson);
    const Landscape ls_lin = Landscape::gridSearch(grid, *linear);

    OscarOptions options;
    options.samplingFraction = 0.10;
    const auto rec_rich = Oscar::reconstructFromLandscape(ls_rich,
                                                          options);
    const auto rec_lin = Oscar::reconstructFromLandscape(ls_lin, options);

    bench::columns("landscape", {"D2", "vsIdeal"});
    auto report = [&](const char* name, const NdArray& values) {
        bench::row(name, {secondDerivativeMetric(values),
                          nrmse(ideal.values(), values)});
    };
    report("(A) Richardson", ls_rich.values());
    report("(B) Linear", ls_lin.values());
    report("(C) Recon. Richardson", rec_rich.reconstructed.values());
    report("(D) Recon. Linear", rec_lin.reconstructed.values());

    std::printf("\npaper reference: Richardson salt-like (high D2), "
                "linear smooth; reconstruction preserves the gap\n");
    return 0;
}
