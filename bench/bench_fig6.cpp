/**
 * @file
 * Figure 6 reproduction: reconstruction error vs. sampling fraction on
 * the Sycamore-like hardware dataset (mesh / 3-regular / SK).
 *
 * Expected shape: errors start higher than the simulator experiments
 * (the 50 x 50 grid is sparser and the data noisier -- exactly the
 * paper's explanation), decrease with sampling fraction, and the SK
 * model (noisiest original) sits highest.
 */

#include <cstdio>

#include "bench_common.h"
#include "src/backend/hardware_dataset.h"

namespace {

using namespace oscar;

} // namespace

int
main()
{
    std::printf("Figure 6: NRMSE vs sampling fraction on Sycamore-like "
                "data (median of 5 noise seeds)\n");
    const std::vector<double> fractions{0.1, 0.2, 0.3, 0.4, 0.5};
    bench::columns("problem",
                   {"10%", "20%", "30%", "40%", "50%"});

    Rng rng(21);
    struct Problem
    {
        const char* name;
        Graph graph;
        double white;
    };
    std::vector<Problem> problems;
    problems.push_back({"Mesh graph", meshGraph(4, 5), 0.08});
    problems.push_back(
        {"3-regular graph", random3RegularGraph(22, rng), 0.10});
    // The paper's SK landscape is visibly the noisiest original.
    problems.push_back({"Sherington Kirkpatric", skInstance(17, rng),
                        0.35});

    const GridSpec grid = GridSpec::qaoaP1(50, 50);
    for (auto& problem : problems) {
        std::vector<double> medians;
        for (double fraction : fractions) {
            std::vector<double> errs;
            for (int seed = 0; seed < 5; ++seed) {
                HardwareDatasetOptions hw;
                hw.whiteNoise = problem.white;
                hw.seed = 100 + seed;
                const Landscape truth = syntheticHardwareLandscape(
                    problem.graph, grid, hw);
                errs.push_back(bench::reconstructionNrmse(
                    truth, fraction, 700 + seed));
            }
            medians.push_back(stats::median(errs));
        }
        bench::row(problem.name, medians);
    }
    std::printf("\npaper reference: ~0.8 -> ~0.2 (SK), ~0.4 -> ~0.1 "
                "(mesh/3-reg) over 10%%-50%%\n");
    return 0;
}
