/**
 * @file
 * Figure 5 reproduction: reconstruction of hardware (Sycamore-like)
 * QAOA landscapes for the mesh-graph MaxCut, 3-regular MaxCut, and SK
 * model problems, at the paper's 41% sampling fraction.
 *
 * The Google dataset is substituted by syntheticHardwareLandscape()
 * (DESIGN.md #2): 50 x 50 grids, fidelity damping, correlated drift,
 * and white noise. The paper's point is qualitative -- reconstructions
 * are "perceptually identical" even when NRMSE ~ 0.2 because the
 * residual is the white-noise floor. We report NRMSE plus the
 * correlation between truth and reconstruction, and the NRMSE of the
 * reconstruction against the *clean* (pre-white-noise) landscape,
 * which shows CS actually denoises.
 */

#include <cstdio>

#include "bench_common.h"
#include "src/backend/hardware_dataset.h"

namespace {

using namespace oscar;

struct Problem
{
    const char* name;
    Graph graph;
};

std::vector<Problem>
makeProblems()
{
    Rng rng(21);
    std::vector<Problem> problems;
    problems.push_back({"Mesh graph (4x5)", meshGraph(4, 5)});
    problems.push_back({"3-regular (n=22)", random3RegularGraph(22, rng)});
    problems.push_back({"SK model (n=17)", skInstance(17, rng)});
    return problems;
}

} // namespace

int
main()
{
    std::printf("Figure 5: Sycamore-like landscape reconstruction at "
                "41%% sampling (50x50 grids)\n");
    bench::columns("problem",
                   {"NRMSE", "corr", "cleanNRMSE"});

    const GridSpec grid = GridSpec::qaoaP1(50, 50);
    for (auto& problem : makeProblems()) {
        HardwareDatasetOptions hw;
        hw.seed = 33;
        const Landscape noisy =
            syntheticHardwareLandscape(problem.graph, grid, hw);

        HardwareDatasetOptions clean_opts = hw;
        clean_opts.whiteNoise = 0.0;
        const Landscape clean =
            syntheticHardwareLandscape(problem.graph, grid, clean_opts);

        OscarOptions options;
        options.samplingFraction = 0.41;
        options.seed = 55;
        const auto recon = Oscar::reconstructFromLandscape(noisy, options);

        const double err =
            nrmse(noisy.values(), recon.reconstructed.values());
        const double corr = stats::pearson(
            noisy.values().flat(), recon.reconstructed.values().flat());
        const double err_clean =
            nrmse(clean.values(), recon.reconstructed.values());
        bench::row(problem.name, {err, corr, err_clean});
    }
    std::printf("\npaper reference: NRMSE ~0.2 yet perceptually "
                "identical reconstructions (Fig. 5/6)\n");
    return 0;
}
