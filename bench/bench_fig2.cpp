/**
 * @file
 * Figure 2 reproduction: the two debugging views of a VQA run.
 *
 * (A) the "default view": expected cost vs optimizer iteration -- all
 *     a standard workflow shows, and useless for diagnosing *why* an
 *     optimizer stalls;
 * (B) the bird's-eye view: the same optimizer path overlaid on the
 *     complete (OSCAR-reconstructed) landscape, rendered as ASCII.
 *
 * Workload matches the paper's aesthetic: depth-1 QAOA on a 16-qubit
 * 3-regular MaxCut instance, ADAM from a deliberately poor start.
 */

#include <cstdio>

#include "bench_common.h"
#include "src/interp/bicubic.h"
#include "src/landscape/export.h"
#include "src/optimize/adam.h"

namespace {

using namespace oscar;

} // namespace

int
main()
{
    std::printf("Figure 2: optimizer-centric view vs bird's-eye "
                "view\n\n");

    Rng rng(2);
    const Graph g = random3RegularGraph(16, rng);
    AnalyticQaoaCost cost(g);
    const GridSpec grid = GridSpec::qaoaP1();

    OscarOptions options;
    options.samplingFraction = 0.08;
    const auto recon =
        Oscar::reconstruct(grid, cost, options, &bench::engine());
    InterpolatedLandscapeCost interp(recon.reconstructed);

    AdamOptions adam_opts;
    adam_opts.maxIterations = 60;
    Adam adam(adam_opts);
    const auto run = adam.minimize(interp, {0.05, 1.25});

    std::printf("(A) cost value vs iteration (every 4th):\n");
    for (std::size_t k = 0; k < run.path.size(); k += 4) {
        std::printf("  iter %3zu: %9.4f\n", k,
                    interp.evaluate(run.path[k]));
    }
    std::printf("  final   : %9.4f (grid optimum %9.4f)\n",
                run.bestValue, recon.reconstructed.values().min());

    std::printf("\n(B) bird's-eye view (o = path, landscape dark = "
                "low cost):\n");
    std::string art = renderAscii(recon.reconstructed, 20, 60);
    // Overlay the optimizer path onto the ASCII canvas.
    const std::size_t cols = 60;
    const GridAxis& ax0 = grid.axis(0);
    const GridAxis& ax1 = grid.axis(1);
    for (const auto& point : run.path) {
        const int r = static_cast<int>(
            (point[0] - ax0.lo) / (ax0.hi - ax0.lo) * 19 + 0.5);
        const int c = static_cast<int>(
            (point[1] - ax1.lo) / (ax1.hi - ax1.lo) * 59 + 0.5);
        if (r >= 0 && r < 20 && c >= 0 && c < 60)
            art[static_cast<std::size_t>(r) * (cols + 3) + 1 +
                static_cast<std::size_t>(c)] = 'o';
    }
    std::printf("%s", art.c_str());

    // Contrast: the same optimizer started near the grid edge parks
    // on a boundary plateau -- its (A) curve also flattens, and only
    // the (B) view tells the two apart.
    const auto stuck = adam.minimize(interp, {-0.7, 1.4});
    std::printf("\nsame ADAM from (-0.7, 1.4): final %9.4f -- the "
                "iteration curve flattens exactly like the good run's, "
                "but the bird's-eye view shows it parked on a boundary "
                "plateau, %0.1f away from the optimum it reports to "
                "have 'converged' to.\n", stuck.bestValue,
                paramDistance(stuck.bestParams, run.bestParams));
    return 0;
}
