/**
 * @file
 * Extension bench: the full mitigation zoo of paper Section 2.3 on
 * one problem, benchmarked the OSCAR way.
 *
 * For a 6-qubit depth-1 QAOA MaxCut instance under depolarizing +
 * readout + coherent idle noise, we compare:
 *   - unmitigated execution,
 *   - Qubit Readout Mitigation (inversion),
 *   - Dynamical Decoupling (X-X idle echoes),
 *   - ZNE (linear, {1,3} folding),
 *   - CDR (16 near-Clifford training circuits),
 * reporting the mean absolute error against the ideal landscape over a
 * coarse grid, plus each method's per-point circuit-execution cost.
 *
 * Expected shape: every method beats unmitigated; shot-frugal methods
 * (QRM, DD) are cheap but partial; ZNE/CDR get closest at a multiple
 * of the circuit cost -- the configuration tradeoff OSCAR exists to
 * navigate.
 */

#include <cstdio>
#include <memory>

#include "bench_common.h"
#include "src/ansatz/qaoa.h"
#include "src/backend/density_backend.h"
#include "src/backend/statevector_backend.h"
#include "src/hamiltonian/maxcut.h"
#include "src/mitigation/cdr.h"
#include "src/mitigation/dd.h"
#include "src/mitigation/folding.h"
#include "src/mitigation/pec.h"
#include "src/mitigation/readout.h"
#include "src/mitigation/zne.h"

namespace {

using namespace oscar;

} // namespace

int
main()
{
    std::printf("Mitigation zoo: mean |error| vs ideal on a 12x12 "
                "grid (6-qubit depth-1 QAOA MaxCut)\n");
    std::printf("noise: depolarizing 1q=0.002 2q=0.01, readout "
                "e01=0.02 e10=0.03, idle dephasing 0.06/layer\n\n");
    bench::columns("method", {"mean|err|", "circuits/pt"});

    Rng rng(11);
    const Graph g = random3RegularGraph(6, rng);
    const PauliSum ham = maxcutHamiltonian(g);
    const Circuit circuit = qaoaCircuit(g, 1);

    NoiseModel noise = NoiseModel::depolarizing(0.002, 0.01);
    noise.readout01 = 0.02;
    noise.readout10 = 0.03;
    const double idle_phase = 0.06;

    const GridSpec grid = GridSpec::qaoaP1(12, 12);

    StatevectorCost ideal(circuit, ham);

    // Evaluator variants. Readout enters through DensityCost's
    // smeared-diagonal path (readout.h), so the QRM row is simply the
    // evaluator with the readout rates calibrated away; the DD rows
    // use the layered evaluator with coherent idle dephasing.
    DensityCost plain_noisy(circuit, ham, noise); // gates + readout
    NoiseModel no_readout = NoiseModel::depolarizing(noise.p1, noise.p2);
    DensityCost readout_mitigated(circuit, ham, no_readout);
    LayeredDensityCost dd_off(circuit, ham, no_readout, idle_phase,
                              false);
    LayeredDensityCost dd_on(circuit, ham, no_readout, idle_phase, true);
    auto zne = makeZneDensityCost(circuit, ham, noise, {1.0, 3.0},
                                  ZneExtrapolation::Linear);
    CircuitEvaluator noisy_exec = [&](const Circuit& c) {
        DensityCost cost(c, ham, noise);
        return cost.evaluate({});
    };
    CdrCost cdr(circuit, ham, noisy_exec, {16, 0.3, 5});
    PecCost pec(circuit, ham, no_readout, {3000, 9});

    struct Method
    {
        const char* name;
        CostFunction* cost;
        double circuits_per_point;
    };
    const Method methods[] = {
        {"unmitigated (gates+ro)", &plain_noisy, 1.0},
        {"QRM (readout inversion)", &readout_mitigated, 1.0},
        {"DD off (gates+idle)", &dd_off, 1.0},
        {"DD on  (gates+idle)", &dd_on, 1.0},
        {"ZNE linear {1,3}", zne.get(), 2.0},
        {"CDR (16 train)", &cdr, 18.0},
        {"PEC (3k samples)", &pec, 3.0},
    };

    for (const Method& method : methods) {
        double err = 0.0;
        for (std::size_t i = 0; i < grid.numPoints(); ++i) {
            const auto p = grid.pointAt(i);
            err += std::abs(method.cost->evaluate(p) -
                            ideal.evaluate(p));
        }
        err /= static_cast<double>(grid.numPoints());
        bench::row(method.name, {err, method.circuits_per_point});
    }

    std::printf("\nexpected: QRM removes the readout bias, DD removes "
                "the idle dephasing, ZNE/CDR cut the depolarizing "
                "error several-fold at 2x / 18x circuit cost\n");
    return 0;
}
