/**
 * @file
 * Section 4 headline reproduction: OSCAR's speedup over full grid
 * search for complete landscape generation, measured with
 * google-benchmark on the state-vector backend (where circuit
 * execution, not reconstruction, dominates -- as on a QPU).
 *
 * Two accountings are reported:
 *  - wall-clock: grid search vs (sampling + CS reconstruction),
 *  - query count: the ratio of circuit executions, which is the
 *    paper's "2x-20x (up to 100x)" figure and is hardware-agnostic.
 */

#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench/bench_common.h"
#include "src/ansatz/qaoa.h"
#include "src/backend/statevector_backend.h"
#include "src/core/oscar.h"
#include "src/graph/generators.h"
#include "src/hamiltonian/maxcut.h"
#include "src/landscape/metrics.h"

namespace {

using namespace oscar;

struct Workload
{
    Graph graph;
    Circuit circuit;
    PauliSum ham;

    static Workload
    make(int qubits)
    {
        Rng rng(42);
        Graph g = random3RegularGraph(qubits, rng);
        Circuit c = qaoaCircuit(g, 1);
        PauliSum h = maxcutHamiltonian(g);
        return {std::move(g), std::move(c), std::move(h)};
    }
};

const GridSpec&
benchGrid()
{
    static const GridSpec grid = GridSpec::qaoaP1(30, 60);
    return grid;
}

void
BM_FullGridSearch(benchmark::State& state)
{
    const auto workload = Workload::make(static_cast<int>(state.range(0)));
    for (auto _ : state) {
        StatevectorCost cost(workload.circuit, workload.ham);
        auto landscape =
            Landscape::gridSearch(benchGrid(), cost, &bench::engine());
        benchmark::DoNotOptimize(landscape);
    }
    state.counters["circuit_runs"] =
        static_cast<double>(benchGrid().numPoints());
}

void
BM_OscarReconstruction(benchmark::State& state)
{
    const auto workload = Workload::make(static_cast<int>(state.range(0)));
    const double fraction = static_cast<double>(state.range(1)) / 100.0;
    for (auto _ : state) {
        StatevectorCost cost(workload.circuit, workload.ham);
        OscarOptions options;
        options.samplingFraction = fraction;
        auto result = Oscar::reconstruct(benchGrid(), cost, options,
                                         &bench::engine());
        benchmark::DoNotOptimize(result);
    }
    state.counters["circuit_runs"] = static_cast<double>(
        fraction * static_cast<double>(benchGrid().numPoints()));
    state.counters["query_speedup"] = 1.0 / fraction;
}

BENCHMARK(BM_FullGridSearch)->Arg(12)->Arg(14)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_OscarReconstruction)
    ->Args({12, 5})
    ->Args({12, 10})
    ->Args({14, 5})
    ->Args({14, 10})
    ->Unit(benchmark::kMillisecond);

} // namespace

int
main(int argc, char** argv)
{
    std::printf("Speedup bench: grid search vs OSCAR "
                "(30x60 grid, statevector backend)\n");
    std::printf("paper reference: 2x-20x query speedup, up to 100x\n\n");
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();

    // Accuracy footnote so speedups are known to be at iso-quality.
    using namespace oscar;
    const auto workload = Workload::make(14);
    StatevectorCost cost(workload.circuit, workload.ham);
    const Landscape truth = Landscape::gridSearch(benchGrid(), cost);
    for (double fraction : {0.05, 0.10}) {
        OscarOptions options;
        options.samplingFraction = fraction;
        const auto result = Oscar::reconstruct(benchGrid(), cost, options);
        std::printf("fraction %.0f%%: NRMSE %.4f, query speedup %.0fx\n",
                    100 * fraction,
                    nrmse(truth.values(), result.reconstructed.values()),
                    result.querySpeedup);
    }
    return 0;
}
