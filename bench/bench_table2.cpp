/**
 * @file
 * Table 2 reproduction: reconstruction errors for QAOA and Two-local
 * ansatzes on 4- and 6-qubit MaxCut and SK problems.
 *
 * Protocol (paper Section 4.2.3): the ansatz has many parameters; each
 * trial picks two parameters to vary on an equidistant grid (7 points
 * per axis for 8-parameter instances, 14 for 6-parameter instances),
 * fixes the rest to random values, reconstructs from a random sample
 * of the 2-D slice, and reports NRMSE. The paper repeats 100 times; we
 * repeat 20.
 *
 * Expected shape: QAOA slices are much harder (NRMSE order 0.1-1)
 * than Two-local slices (often near zero), and 6-qubit instances are
 * easier than 4-qubit ones, matching the table's ordering.
 */

#include <cstdio>
#include <numbers>

#include "bench_common.h"
#include "src/ansatz/qaoa.h"
#include "src/ansatz/two_local.h"
#include "src/backend/statevector_backend.h"
#include "src/hamiltonian/maxcut.h"
#include "src/hamiltonian/sk_model.h"

namespace {

using namespace oscar;

/**
 * Mean NRMSE over random 2-D slices of a multi-parameter landscape.
 */
double
sliceReconstructionError(const Circuit& circuit, const PauliSum& ham,
                         std::size_t points_per_dim, double lo, double hi,
                         int repeats, std::uint64_t seed)
{
    StatevectorCost cost(circuit, ham);
    const int dim = circuit.numParams();
    Rng rng(seed);
    std::vector<double> errors;

    for (int rep = 0; rep < repeats; ++rep) {
        // Pick two distinct varying parameters, fix the rest randomly.
        const int va = static_cast<int>(rng.uniformInt(dim));
        int vb = static_cast<int>(rng.uniformInt(dim - 1));
        if (vb >= va)
            ++vb;
        std::vector<double> base(dim);
        for (auto& p : base)
            p = rng.uniform(lo, hi);

        const GridSpec grid(
            {{lo, hi, points_per_dim}, {lo, hi, points_per_dim}});
        LambdaCost slice(2, [&](const std::vector<double>& p) {
            std::vector<double> full = base;
            full[va] = p[0];
            full[vb] = p[1];
            return cost.evaluate(full);
        });
        const Landscape truth = Landscape::gridSearch(grid, slice);

        OscarOptions options;
        options.samplingFraction = 0.3;
        options.seed = seed + 100 + rep;
        const auto recon = Oscar::reconstructFromLandscape(truth, options);
        // Degenerate (flat) slices have IQR ~ 0; skip them like the
        // paper's protocol implicitly does by averaging valid runs.
        const double iqr = stats::iqr(truth.values().flat());
        if (iqr < 1e-9)
            continue;
        errors.push_back(
            nrmse(truth.values(), recon.reconstructed.values()));
    }
    return errors.empty() ? 0.0 : stats::mean(errors);
}

} // namespace

int
main()
{
    std::printf("Table 2: reconstruction errors (mean NRMSE over 20 "
                "random 2-D slices, 30%% sampling)\n");
    bench::columns("problem", {"qubits", "params", "grid/dim", "QAOA",
                               "Two-local"});

    struct Config
    {
        const char* name;
        int qubits;
        int params;       // both ansatzes configured to this
        std::size_t samples; // points per varied dimension
        bool sk;
    };
    const Config configs[] = {
        {"3-reg MaxCut", 4, 8, 7, false},
        {"3-reg MaxCut", 6, 6, 14, false},
        {"SK Problem", 4, 8, 7, true},
        {"SK Problem", 6, 6, 14, true},
    };

    const double pi = std::numbers::pi;
    int config_id = 0;
    for (const Config& cfg : configs) {
        Rng graph_rng(500 + config_id);
        Graph graph = cfg.sk ? skInstance(cfg.qubits, graph_rng)
                             : randomRegularGraph(cfg.qubits, 3, graph_rng);
        const PauliSum ham =
            cfg.sk ? skHamiltonian(graph) : maxcutHamiltonian(graph);

        const int qaoa_depth = cfg.params / 2;
        const int tl_reps = cfg.params / cfg.qubits - 1;
        const Circuit qaoa = qaoaCircuit(graph, qaoa_depth);
        const Circuit two_local = twoLocalCircuit(cfg.qubits, tl_reps);

        const double err_qaoa = sliceReconstructionError(
            qaoa, ham, cfg.samples, -pi / 2, pi / 2, 20,
            42 + config_id);
        const double err_tl = sliceReconstructionError(
            two_local, ham, cfg.samples, -pi, pi, 20, 142 + config_id);

        std::printf("%-28s %10d %10d %10zu %10.4f %10.4f\n", cfg.name,
                    cfg.qubits, cfg.params, cfg.samples, err_qaoa,
                    err_tl);
        ++config_id;
    }
    std::printf("\npaper reference (QAOA / Two-local): 0.847/0.645, "
                "0.372/~0, 0.847/0.765, 0.372/0.057\n");
    return 0;
}
