/**
 * @file
 * Figure 8 reproduction: error between the reconstructed landscape
 * (built from a mixture of QPU-1 and QPU-2 samples) and the QPU-1
 * target landscape, without (A) and with (B) the Noise Compensation
 * Model.
 *
 * Paper configuration: QPU-1 gate errors (0.1%, 0.5%), QPU-2 (0.3%,
 * 0.7%); 10% total sampling; 1% of the grid used to train the NCM.
 * Expected shape: uncompensated error grows as the QPU-1 share
 * shrinks (up to ~0.06-0.08 NRMSE); compensated error stays flat at
 * the few-1e-3 level, for every qubit count.
 */

#include <cstdio>
#include <memory>

#include "bench_common.h"

namespace {

using namespace oscar;

std::vector<QpuDevice>
makeDevicePair(const Graph& graph)
{
    std::vector<QpuDevice> devices;
    QpuDevice d1;
    d1.name = "qpu-1";
    d1.noise = NoiseModel::depolarizing(0.001, 0.005);
    d1.cost = std::make_shared<AnalyticQaoaCost>(graph, d1.noise);
    devices.push_back(std::move(d1));
    QpuDevice d2;
    d2.name = "qpu-2";
    d2.noise = NoiseModel::depolarizing(0.003, 0.007);
    d2.cost = std::make_shared<AnalyticQaoaCost>(graph, d2.noise);
    devices.push_back(std::move(d2));
    return devices;
}

} // namespace

int
main()
{
    std::printf("Figure 8: NRMSE between QPU-1 landscape and mixed-"
                "device reconstruction (10%% sampling, 1%% NCM training)"
                "\n");
    const std::vector<double> qpu1_shares{0.0, 0.25, 0.5, 0.75, 1.0};
    bench::columns("qubits / QPU-1 share",
                   {"0%", "25%", "50%", "75%", "100%"});

    const GridSpec grid = GridSpec::qaoaP1();
    for (int n : {12, 16, 20}) {
        Rng graph_rng(3000 + n);
        const Graph g = random3RegularGraph(n, graph_rng);

        // Target: QPU-1's own true landscape.
        AnalyticQaoaCost ref_cost(
            g, NoiseModel::depolarizing(0.001, 0.005));
        const Landscape target = Landscape::gridSearch(grid, ref_cost);

        for (bool use_ncm : {false, true}) {
            std::vector<double> errors;
            for (double share : qpu1_shares) {
                auto devices = makeDevicePair(g);
                Rng rng(4000 + n);
                OscarOptions options;
                options.samplingFraction = 0.10;
                const auto result = Oscar::reconstructParallel(
                    grid, devices, {share, 1.0 - share}, use_ncm, 0.01,
                    rng, options);
                errors.push_back(nrmse(target.values(),
                                       result.reconstructed.values()));
            }
            bench::row(std::to_string(n) + " qubits" +
                           (use_ncm ? " +NCM" : "      "),
                       errors, " %10.5f");
        }
    }
    std::printf("\npaper reference: uncompensated up to ~0.06-0.08 at "
                "0%% share, compensated flat at ~3e-3 - 5e-3\n");
    return 0;
}
