/**
 * @file
 * Figure 4 reproduction: median reconstruction NRMSE vs. sampling
 * fraction for depth-1 and depth-2 QAOA-MaxCut landscapes, ideal and
 * with depolarizing noise (1q 0.003, 2q 0.007).
 *
 * Substitutions vs. the paper (see EXPERIMENTS.md):
 *  - p=1 landscapes use the closed-form evaluator (validated against
 *    state-vector simulation in tests), which is how 16-30 qubits fit
 *    on one core; noisy p=1 uses the light-cone damping model.
 *  - p=2 uses state-vector simulation on a reduced (8,8,10,10) grid
 *    with 8-12 qubits; noisy p=2 uses the global-damping model.
 *
 * Expected shapes: error decreases steadily with sampling fraction,
 * is insensitive to qubit count, p=1 errors are a few 0.01, p=2 errors
 * are several times larger (reshape-induced artificial patterns).
 */

#include <cstdio>

#include "bench_common.h"
#include "src/ansatz/qaoa.h"
#include "src/backend/global_damping.h"
#include "src/backend/statevector_backend.h"
#include "src/hamiltonian/maxcut.h"

namespace {

using namespace oscar;

const std::vector<double> kFractions{0.04, 0.05, 0.06, 0.07, 0.08};

void
panelP1(const char* title, const std::vector<int>& qubit_counts,
        const NoiseModel& noise, int instances)
{
    bench::header(title);
    bench::columns("qubits \\ fraction",
                   {"4%", "5%", "6%", "7%", "8%"});
    const GridSpec grid = GridSpec::qaoaP1();
    for (int n : qubit_counts) {
        std::vector<Landscape> truths;
        for (int inst = 0; inst < instances; ++inst) {
            Rng rng(7000 + 31 * n + inst);
            const Graph g = random3RegularGraph(n, rng);
            AnalyticQaoaCost cost(g, noise);
            truths.push_back(Landscape::gridSearch(grid, cost));
        }
        std::vector<double> medians;
        for (double fraction : kFractions) {
            std::vector<double> errs;
            for (int inst = 0; inst < instances; ++inst) {
                errs.push_back(bench::reconstructionNrmse(
                    truths[inst], fraction, 900 + inst));
            }
            medians.push_back(stats::median(errs));
        }
        bench::row(std::to_string(n) + " qubits", medians);
    }
}

/** Per-qubit-count ideal p=2 truths, shared by panels C and D. */
std::vector<std::vector<Landscape>>
makeP2Truths(const std::vector<int>& qubit_counts, int instances,
             const GridSpec& grid)
{
    std::vector<std::vector<Landscape>> all;
    for (int n : qubit_counts) {
        std::vector<Landscape> truths;
        for (int inst = 0; inst < instances; ++inst) {
            Rng rng(8000 + 37 * n + inst);
            const Graph g = random3RegularGraph(n, rng);
            StatevectorCost cost(qaoaCircuit(g, 2), maxcutHamiltonian(g));
            truths.push_back(Landscape::gridSearch(grid, cost));
        }
        all.push_back(std::move(truths));
    }
    return all;
}

/**
 * Landscape under the global-damping noise model, derived from the
 * ideal one: E_noisy = lambda (E_ideal - E_mixed) + E_mixed with the
 * gate counts of the depth-2 QAOA circuit for `n` qubits.
 */
Landscape
dampLandscape(const Landscape& ideal, int n, const NoiseModel& noise)
{
    Rng rng(0); // graph structure only affects gate counts via n
    const int edges = 3 * n / 2;
    const std::size_t g2 = static_cast<std::size_t>(2 * edges);
    const std::size_t g1 = static_cast<std::size_t>(n + 2 * n);
    const double lambda =
        std::pow(1.0 - noise.p1, static_cast<double>(g1)) *
        std::pow(1.0 - noise.p2, static_cast<double>(g2));
    const double mixed = -static_cast<double>(edges) / 2.0;
    NdArray values = ideal.values();
    for (std::size_t i = 0; i < values.size(); ++i)
        values[i] = lambda * (values[i] - mixed) + mixed;
    (void)rng;
    return Landscape(ideal.grid(), std::move(values));
}

void
panelP2(const char* title,
        const std::vector<int>& qubit_counts,
        const std::vector<std::vector<Landscape>>& ideal_truths,
        const NoiseModel& noise, std::uint64_t seed_base)
{
    bench::header(title);
    bench::columns("qubits \\ fraction",
                   {"4%", "5%", "6%", "7%", "8%"});
    for (std::size_t k = 0; k < qubit_counts.size(); ++k) {
        std::vector<double> medians;
        for (double fraction : kFractions) {
            std::vector<double> errs;
            for (std::size_t inst = 0; inst < ideal_truths[k].size();
                 ++inst) {
                const Landscape truth =
                    noise.ideal()
                        ? ideal_truths[k][inst]
                        : dampLandscape(ideal_truths[k][inst],
                                        qubit_counts[k], noise);
                errs.push_back(bench::reconstructionNrmse(
                    truth, fraction, seed_base + inst));
            }
            medians.push_back(stats::median(errs));
        }
        bench::row(std::to_string(qubit_counts[k]) + " qubits", medians);
    }
}

} // namespace

int
main()
{
    std::printf("Figure 4: median reconstruction NRMSE vs sampling "
                "fraction\n");
    const NoiseModel noisy = NoiseModel::depolarizing(0.003, 0.007);
    panelP1("(A) p=1, ideal", {16, 20, 24, 30},
            NoiseModel::idealModel(), 3);
    panelP1("(B) p=1, noisy (0.003/0.007)", {12, 16, 20}, noisy, 3);

    // Scaled-down Table 1 p=2 grid: (8, 8, 10, 10) = 6,400 points.
    const std::vector<int> p2_qubits{8, 10, 12};
    const GridSpec p2_grid = GridSpec::qaoaP2(8, 10);
    const auto p2_truths = makeP2Truths(p2_qubits, 2, p2_grid);
    panelP2("(C) p=2, ideal (8,8,10,10 grid)", p2_qubits, p2_truths,
            NoiseModel::idealModel(), 1700);
    panelP2("(D) p=2, noisy (0.003/0.007)", p2_qubits, p2_truths, noisy,
            1800);
    return 0;
}
