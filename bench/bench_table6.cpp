/**
 * @file
 * Table 6 reproduction: QPU queries to convergence for ADAM and
 * COBYLA on depth-1 QAOA, 16-qubit MaxCut, starting from random
 * initial points vs. points suggested by optimizing the interpolated
 * OSCAR reconstruction (use case 3, Section 8).
 *
 * Columns: mean optimization queries from random init; mean
 * optimization queries from the OSCAR initial point; the latter plus
 * the reconstruction's own sample budget (5% of the 50x100 grid =
 * 250 queries).
 *
 * Expected shape (paper): OSCAR init cuts ADAM queries several-fold
 * and wins even after paying reconstruction; COBYLA is so frugal
 * (~tens of queries) that reconstruction overhead dominates -- OSCAR
 * is not cost-effective there, exactly the paper's caveat.
 */

#include <cstdio>
#include <memory>

#include "bench_common.h"
#include "src/interp/bicubic.h"
#include "src/optimize/adam.h"
#include "src/optimize/cobyla.h"

namespace {

using namespace oscar;

struct Totals
{
    double random_opt = 0.0;
    double oscar_opt = 0.0;
    double recon_queries = 0.0;
};

Totals
runScenario(Optimizer& optimizer, const NoiseModel& noise, int instances)
{
    const GridSpec grid = GridSpec::qaoaP1();
    Totals totals;
    for (int inst = 0; inst < instances; ++inst) {
        Rng rng(6000 + inst);
        const Graph g = random3RegularGraph(16, rng);
        AnalyticQaoaCost cost(g, noise);

        // OSCAR: reconstruct at 5%, minimize the interpolant.
        OscarOptions options;
        options.samplingFraction = 0.05;
        options.seed = 60 + inst;
        const auto recon = Oscar::reconstruct(grid, cost, options);
        totals.recon_queries +=
            static_cast<double>(recon.queriesUsed);

        Adam inner;
        const auto warm_start = suggestInitialPoint(
            recon.reconstructed, inner, {0.05, 0.05});

        // Random initial point within the grid ranges.
        Rng init_rng(800 + inst);
        const std::vector<double> cold_start{
            init_rng.uniform(grid.axis(0).lo, grid.axis(0).hi),
            init_rng.uniform(grid.axis(1).lo, grid.axis(1).hi)};

        cost.resetQueries();
        const auto cold = optimizer.minimize(cost, cold_start);
        totals.random_opt += static_cast<double>(cold.numQueries);

        cost.resetQueries();
        const auto warm = optimizer.minimize(cost, warm_start);
        totals.oscar_opt += static_cast<double>(warm.numQueries);
    }
    totals.random_opt /= instances;
    totals.oscar_opt /= instances;
    totals.recon_queries /= instances;
    return totals;
}

} // namespace

int
main()
{
    std::printf("Table 6: mean QPU queries to convergence "
                "(14 instances, 16-qubit depth-1 QAOA MaxCut)\n");
    bench::columns("optimizer, noise",
                   {"random,opt", "OSCAR,opt", "opt+recon"});

    const NoiseModel noisy = NoiseModel::depolarizing(0.003, 0.007);

    // Qiskit's ADAM defaults use a very small learning rate, which is
    // why the paper's random-init column costs thousands of queries.
    AdamOptions adam_opts;
    adam_opts.maxIterations = 2000;
    adam_opts.gradientTolerance = 0.02;
    adam_opts.learningRate = 0.01;

    {
        Adam adam(adam_opts);
        const Totals ideal =
            runScenario(adam, NoiseModel::idealModel(), 14);
        bench::row("ADAM, ideal",
                   {ideal.random_opt, ideal.oscar_opt,
                    ideal.oscar_opt + ideal.recon_queries},
                   " %10.0f");
        const Totals noisy_t = runScenario(adam, noisy, 14);
        bench::row("ADAM, noisy",
                   {noisy_t.random_opt, noisy_t.oscar_opt,
                    noisy_t.oscar_opt + noisy_t.recon_queries},
                   " %10.0f");
    }
    {
        Cobyla cobyla;
        const Totals ideal =
            runScenario(cobyla, NoiseModel::idealModel(), 14);
        bench::row("COBYLA, ideal",
                   {ideal.random_opt, ideal.oscar_opt,
                    ideal.oscar_opt + ideal.recon_queries},
                   " %10.0f");
        const Totals noisy_t = runScenario(cobyla, noisy, 14);
        bench::row("COBYLA, noisy",
                   {noisy_t.random_opt, noisy_t.oscar_opt,
                    noisy_t.oscar_opt + noisy_t.recon_queries},
                   " %10.0f");
    }
    std::printf("\npaper reference: ADAM 3127/370/620 (ideal), "
                "3123/661/911 (noisy); COBYLA 38/32/282, 40/32/282\n");
    return 0;
}
