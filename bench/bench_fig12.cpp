/**
 * @file
 * Figures 11-12 reproduction: run the same optimizer (a) on the
 * interpolated reconstructed landscape and (b) against real circuit
 * evaluations, from the same initial points, and measure the Euclidean
 * distance between the two ending points.
 *
 * Paper setup: ADAM and COBYLA with default settings, random initial
 * points, 8 instances each of ideal and noisy 16- and 20-qubit MaxCut
 * problems. Expected shape: endpoint distances concentrated near zero
 * (a small fraction of the parameter range), confirming that the
 * reconstruction is a faithful optimizer test bed (use case 2).
 */

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <numbers>

#include "bench_common.h"
#include "src/interp/bicubic.h"
#include "src/optimize/adam.h"
#include "src/optimize/cobyla.h"

namespace {

using namespace oscar;

struct Scenario
{
    const char* name;
    int qubits;
    NoiseModel noise;
};

/**
 * Distance between endpoints modulo the exact symmetries of the
 * unweighted QAOA-MaxCut cost: global sign flip (beta, gamma) ->
 * (-beta, -gamma) and the beta -> beta + pi/2 period. Without the
 * quotient, two optimizers converging to physically identical optima
 * in mirror basins would register a spurious large distance.
 */
double
symmetryAwareDistance(const std::vector<double>& a,
                      const std::vector<double>& b)
{
    const double half_pi = std::numbers::pi / 2.0;
    double best = 1e300;
    for (double sign : {1.0, -1.0}) {
        for (int k = -2; k <= 2; ++k) {
            const std::vector<double> candidate{
                sign * b[0] + k * half_pi, sign * b[1]};
            best = std::min(best, paramDistance(a, candidate));
        }
    }
    return best;
}

} // namespace

int
main()
{
    std::printf("Figure 12: endpoint distance (modulo landscape "
                "symmetries), optimizer on reconstruction vs on "
                "circuits (8 instances each)\n");
    bench::columns("scenario", {"median", "p75", "<0.1"});

    const GridSpec grid = GridSpec::qaoaP1();
    const Scenario scenarios[] = {
        {"16q ideal", 16, NoiseModel::idealModel()},
        {"16q noisy", 16, NoiseModel::depolarizing(0.003, 0.007)},
        {"20q ideal", 20, NoiseModel::idealModel()},
        {"20q noisy", 20, NoiseModel::depolarizing(0.003, 0.007)},
    };

    for (const auto& scenario : scenarios) {
        for (const char* opt_name : {"adam", "cobyla"}) {
            std::vector<double> distances;
            for (int inst = 0; inst < 8; ++inst) {
                Rng rng(1200 + 13 * inst + scenario.qubits);
                const Graph g =
                    random3RegularGraph(scenario.qubits, rng);
                AnalyticQaoaCost cost(g, scenario.noise);

                OscarOptions options;
                options.samplingFraction = 0.10;
                options.seed = 77 + inst;
                const auto recon =
                    Oscar::reconstruct(grid, cost, options);
                InterpolatedLandscapeCost interp(recon.reconstructed);

                Rng init_rng(3300 + inst);
                const std::vector<double> start{
                    init_rng.uniform(grid.axis(0).lo, grid.axis(0).hi),
                    init_rng.uniform(grid.axis(1).lo, grid.axis(1).hi)};

                OptimizerResult run_interp, run_circ;
                if (std::string(opt_name) == "adam") {
                    Adam adam;
                    run_interp = adam.minimize(interp, start);
                    run_circ = adam.minimize(cost, start);
                } else {
                    Cobyla cobyla;
                    run_interp = cobyla.minimize(interp, start);
                    run_circ = cobyla.minimize(cost, start);
                }
                distances.push_back(symmetryAwareDistance(
                    run_interp.bestParams, run_circ.bestParams));
            }
            double within = 0.0;
            for (double d : distances)
                within += d < 0.1;
            within /= static_cast<double>(distances.size());
            bench::row(std::string(scenario.name) + " " + opt_name,
                       {stats::median(distances),
                        stats::quantile(distances, 0.75), within});
        }
    }
    std::printf("\npaper reference: distances concentrated near zero "
                "(parameter ranges span ~1.6-3.1)\n");
    return 0;
}
